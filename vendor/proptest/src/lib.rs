//! Offline shim for [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no registry access, so this crate reimplements
//! the subset of proptest the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges
//!   and tuples,
//! - [`collection::vec`] and [`array::uniform4`],
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Each generated test runs `cases` iterations with freshly sampled inputs
//! from a deterministic per-test RNG. Unlike real proptest there is no
//! shrinking: a failing case reports the assertion message and case index
//! only. That is a diagnostics regression, not a coverage one — the same
//! input space is exercised.

#![forbid(unsafe_code)]

/// Test-runner configuration and driver.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the suite fast while
            // still exploring the space. Tests that need more pass
            // `with_cases` explicitly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives the per-case loop for one property test.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: SmallRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed seed: property tests are
        /// deterministic across runs (no persistence file like real
        /// proptest's `proptest-regressions`).
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: SmallRng::seed_from_u64(0x50524F50_54455354),
            }
        }

        /// Runs `f` once per configured case, panicking on the first `Err`.
        pub fn run<F>(&mut self, mut f: F)
        where
            F: FnMut(&mut SmallRng) -> Result<(), String>,
        {
            for case in 0..self.config.cases {
                if let Err(msg) = f(&mut self.rng) {
                    panic!("proptest case {case} failed: {msg}");
                }
            }
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Stand-in for `proptest::strategy::Strategy`: a recipe for sampling
    /// values of `Self::Value`.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value. (Real proptest builds a shrinkable value tree;
        /// this shim samples directly.)
        fn sample_once(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample_once(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.sample_once(rng))
        }
    }

    /// Strategy producing a constant (stand-in for `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_once(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_once(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_once(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample_once(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample_once(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`](fn@vec): an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec strategy: empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "vec strategy: empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Stand-in for `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_once(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample_once(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (stand-in for `proptest::array`).
pub mod array {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;

    /// Strategy for `[S::Value; N]` sampling each slot independently.
    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn sample_once(&self, rng: &mut SmallRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample_once(rng))
        }
    }

    /// Stand-in for `proptest::array::uniform4`.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArrayStrategy<S, 4> {
        UniformArrayStrategy { element }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Stand-in for `proptest::prop_assert!`: fails the current case (without
/// aborting the whole test binary) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // Bound to a named bool so clippy lints on the caller's expression
        // (e.g. `neg_cmp_op_on_partial_ord`) don't fire on the expansion.
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Stand-in for `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Stand-in for the `proptest!` macro.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(x in 0.0f64..1.0, mut v in prop::collection::vec(0u32..4, 1..10)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($cfg);
            __runner.run(|__rng| {
                $(let $pat = $crate::strategy::Strategy::sample_once(&($strategy), __rng);)*
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..1.0, 0.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_sample_within_bounds(x in 0.0f64..1.0, n in 1u32..40, i in 0usize..6) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..40).contains(&n));
            prop_assert!(i < 6);
        }

        #[test]
        fn vec_strategy_respects_size(mut v in prop::collection::vec(0.0f32..1.0, 1..200)) {
            prop_assert!(!v.is_empty() && v.len() < 200);
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn tuple_and_map_compose(p in arb_pair(), arr in prop::array::uniform4(0.0f64..1000.0)) {
            prop_assert!(p.0 < 1.0 && p.1 < 1.0);
            prop_assert_eq!(arr.len(), 4);
        }

        #[test]
        fn exact_vec_len(v in prop::collection::vec(0.05f64..1.0, 6)) {
            prop_assert_eq!(v.len(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0, "x was {}", x);
            }
        }
        always_fails();
    }
}

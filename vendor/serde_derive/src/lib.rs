//! Offline shim for `serde_derive`.
//!
//! The companion `serde` shim blanket-implements its marker traits for every
//! type, so these derive macros only need to exist for name resolution —
//! they expand to an empty token stream. The `serde` helper attribute is
//! still registered so `#[serde(...)]` field attributes, should any appear,
//! do not break the build.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline shim for [`rand` 0.8](https://docs.rs/rand/0.8).
//!
//! The build environment has no registry access, so this crate provides the
//! exact API subset the workspace uses — `rngs::SmallRng`, the [`Rng`] and
//! [`SeedableRng`] traits (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom` (`shuffle`, `choose`) — backed by a splitmix64
//! generator. Splitmix64 is a real, statistically sound 64-bit PRNG (it is
//! what rand itself uses to seed its small RNGs from a `u64`), so the
//! deterministic traces and property tests built on top of this shim exercise
//! the same kind of randomness the real crate would provide. Sequences differ
//! from genuine rand 0.8, which only matters if golden values were recorded
//! against it (none are).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words (stand-in for `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods (stand-in for `rand::Rng`).
///
/// Blanket-implemented for every [`RngCore`], mirroring the real crate.
pub trait Rng: RngCore {
    /// Samples a value of a standard-distributable type (`f64` in `[0, 1)`,
    /// uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// The element type is a type parameter (as in real rand 0.8) so that
    /// inference can flow from the surrounding expression into the range
    /// literal. Panics if the range is empty, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`] (stand-in for the `Standard` distribution).
pub trait Standard {
    /// Draws one value from the generator.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element types uniformly samplable from a range
/// (stand-in for `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`] (stand-in for `SampleRange`).
///
/// Blanket-implemented over [`SampleUniform`] exactly like the real crate so
/// that type inference unifies the range's element type with the call site's
/// expected type (and unsuffixed float/int literals still fall back).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                let x = lo + (hi - lo) * u;
                // `lo + (hi - lo) * u` can round up to exactly `hi`; keep the
                // half-open contract.
                if x < hi {
                    x
                } else {
                    hi.next_down()
                }
            }

            fn sample_inclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

sample_uniform_float!(f32, f64);

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire's multiply-shift maps 64 random bits onto the span
                // without the low-bit modulo bias.
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + offset) as $t
            }

            fn sample_inclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Small, fast generators (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, cheap-to-seed PRNG (stand-in for `rand::rngs::SmallRng`),
    /// implemented as a splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna): a Weyl sequence passed through a 64-bit
            // finalizer. Equidistributed, period 2^64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

/// Sequence-related helpers (stand-in for `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type of the sequence.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5..10);
            assert!((5..10).contains(&x));
            let y = rng.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g = rng.gen_range(-0.5..=0.5f64);
            assert!((-0.5..=0.5).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some bucket never sampled: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice sorted");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

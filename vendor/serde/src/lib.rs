//! Offline shim for [`serde`](https://serde.rs).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the external dependencies the sources assume are vendored as minimal
//! API-compatible shims. The workspace uses serde exclusively through
//! `#[derive(Serialize, Deserialize)]` markers — no code path ever calls a
//! serializer — so the traits here are empty markers with blanket impls and
//! the derive macros (see `serde_derive`) expand to nothing. Swapping this
//! shim for the real crate is a one-line change in `[workspace.dependencies]`
//! once a registry is reachable.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
///
/// Blanket-implemented for every type so that `T: Serialize` bounds and
/// `#[derive(Serialize)]` annotations compile unchanged against the shim.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
///
/// Keeps the real trait's `'de` lifetime parameter so bounds written against
/// genuine serde keep compiling; blanket-implemented for every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

/// Stand-in for serde's `de` module (trait re-exports only).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for serde's `ser` module (trait re-exports only).
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

//! Offline shim for [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no registry access, so this crate provides the
//! API subset the workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs a short warm-up
//! followed by a fixed measurement window and prints mean wall-clock
//! time per iteration. That is enough to compare the workspace's own
//! before/after numbers; absolute rigor requires the real crate.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_TARGET: Duration = Duration::from_millis(200);
const MAX_MEASURE_ITERS: u64 = 10_000;
// Iterations per clock read in `iter`: keeps Instant::now() overhead out of
// the measurement for nanosecond-scale routines.
const BATCH: u64 = 64;

/// Benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named benchmark group (stand-in for `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finishes the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter
/// (stand-in for `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `place/6w`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim treats every
/// variant as per-iteration setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Timing loop driver passed to benchmark closures
/// (stand-in for `criterion::Bencher`).
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut iters = 0;
        let start = Instant::now();
        while start.elapsed() < MEASURE_TARGET && iters < MAX_MEASURE_ITERS {
            for _ in 0..BATCH {
                black_box(routine());
            }
            iters += BATCH;
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters = 0;
        let window = Instant::now();
        while window.elapsed() < MEASURE_TARGET && iters < MAX_MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.total = measured;
        self.iters = iters;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<40} (no measurement recorded)");
        } else {
            let per_iter = self.total.as_nanos() / u128::from(self.iters);
            println!("{id:<40} {per_iter:>12} ns/iter ({} iters)", self.iters);
        }
    }
}

/// Stand-in for `criterion::criterion_group!`: bundles benchmark functions
/// into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Stand-in for `criterion::criterion_main!`: generates `fn main` running the
/// given groups (bench targets must set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sum", "4"), &4u64, |b, &n| {
            b.iter_batched(
                || (0..n).collect::<Vec<u64>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("place", "6w").to_string(), "place/6w");
        assert_eq!(BenchmarkId::from_parameter(24).to_string(), "24");
    }
}

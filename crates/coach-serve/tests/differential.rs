//! Differential tests: the online controller must reproduce the batch
//! replay exactly — same placements, same rejection count, same probe
//! capacity, same occupancy peak, same violation rates — across seeds,
//! policies, trace scales, shard counts, and random arrival/departure
//! interleavings.

use coach_serve::{
    serve_trace, serve_trace_sharded, Controller, Request, RequestSource, Response, ServeConfig,
    ShardedController,
};
use coach_sim::{packing_experiment, Oracle, PolicyConfig, ProbeMode};
use coach_trace::{generate, BehaviorTemplate, Cluster, Trace, TraceConfig, VmRecord};
use coach_types::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Full-strict equality of every `PackingResult` field, with a precise
/// failure message.
fn assert_results_equal(
    label: &str,
    online: &coach_sim::PackingResult,
    batch: &coach_sim::PackingResult,
) {
    assert_eq!(online, batch, "{label}: online != batch");
}

/// Small traces: every policy × several seeds, bit-exact.
#[test]
fn online_matches_batch_small_all_policies() {
    for seed in [101u64, 202, 303] {
        let trace = generate(&TraceConfig::small(seed));
        for policy in PolicyConfig::paper_set() {
            let online = serve_trace(
                &trace,
                &Oracle::new(TimeWindows::paper_default()),
                policy,
                0.6,
            );
            let batch = packing_experiment(
                &trace,
                &Oracle::new(TimeWindows::paper_default()),
                policy,
                0.6,
            );
            assert_results_equal(
                &format!("seed {seed} policy {}", policy.label),
                &online,
                &batch,
            );
        }
    }
}

/// A medium-trace slice (denser clusters, real rejections) stays bit-exact.
#[test]
fn online_matches_batch_medium_slice() {
    let mut trace = generate(&TraceConfig::medium(7));
    trace.vms.truncate(8_000);
    for policy in [
        PolicyConfig::paper_set().remove(2), // Coach
        PolicyConfig::paper_set().remove(0), // None
    ] {
        let online = serve_trace(
            &trace,
            &Oracle::new(TimeWindows::paper_default()),
            policy,
            0.9,
        );
        let batch = packing_experiment(
            &trace,
            &Oracle::new(TimeWindows::paper_default()),
            policy,
            0.9,
        );
        assert_results_equal(
            &format!("medium slice policy {}", policy.label),
            &online,
            &batch,
        );
    }
}

/// Sharded replay on the persistent worker runtime: integer-exact
/// everywhere, ulp-tolerant only on the cross-shard floating-point
/// capacity sums.
#[test]
fn sharded_matches_batch() {
    // Four clusters so every shard count in 1..=4 is genuinely distinct.
    let trace = generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(404)
    });
    let coach = PolicyConfig::paper_set().remove(2);
    let batch = packing_experiment(
        &trace,
        &Oracle::new(TimeWindows::paper_default()),
        coach,
        0.7,
    );
    for shards in [1, 2, 3, 4] {
        let online = serve_trace_sharded(
            &trace,
            &Oracle::new(TimeWindows::paper_default()),
            coach,
            0.7,
            shards,
        );
        assert_eq!(online.accepted, batch.accepted, "{shards} shards");
        assert_eq!(online.rejected, batch.rejected, "{shards} shards");
        assert_eq!(
            online.probe_capacity, batch.probe_capacity,
            "{shards} shards"
        );
        assert_eq!(
            online.peak_servers_in_use, batch.peak_servers_in_use,
            "{shards} shards: merged-timeline peak"
        );
        assert_eq!(
            online.cpu_violation_rate, batch.cpu_violation_rate,
            "{shards} shards"
        );
        assert_eq!(
            online.mem_violation_rate, batch.mem_violation_rate,
            "{shards} shards"
        );
        let rel = (online.accepted_core_hours - batch.accepted_core_hours).abs()
            / batch.accepted_core_hours.max(1.0);
        assert!(rel < 1e-9, "{shards} shards: core-hours rel err {rel}");
        let rel = (online.accepted_gb_hours - batch.accepted_gb_hours).abs()
            / batch.accepted_gb_hours.max(1.0);
        assert!(rel < 1e-9, "{shards} shards: gb-hours rel err {rel}");
    }
}

/// `handle_batch` + `finalize` (two worker sessions) and `run` (one
/// session, responses discarded) produce the same merged result — and both
/// match the batch experiment.
#[test]
fn batch_and_streaming_sessions_agree() {
    let trace = generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(505)
    });
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let batch = packing_experiment(&trace, &oracle, coach, 0.7);
    for shards in [2, 4] {
        let mut batched = ShardedController::replaying(&trace, &oracle, coach, 0.7, shards);
        let requests: Vec<Request> = RequestSource::replaying(&trace).collect();
        let responses = batched.handle_batch(&requests);
        assert_eq!(responses.len(), requests.len());
        let batched_result = batched.finalize();

        let mut streamed = ShardedController::replaying(&trace, &oracle, coach, 0.7, shards);
        let streamed_result = streamed.run(RequestSource::replaying(&trace));

        assert_eq!(batched_result, streamed_result, "{shards} shards");
        assert_eq!(streamed_result.accepted, batch.accepted, "{shards} shards");
        assert_eq!(streamed_result.rejected, batch.rejected, "{shards} shards");
        assert_eq!(
            streamed_result.peak_servers_in_use, batch.peak_servers_in_use,
            "{shards} shards"
        );
        assert_eq!(
            streamed_result.probe_capacity, batch.probe_capacity,
            "{shards} shards"
        );
    }
}

/// The probe estimator agrees with the exhaustive fill at every
/// measurement of the differential replay (`ProbeMode::Differential`
/// asserts equality inside the controller), and the replay stays
/// bit-identical to the batch experiment.
#[test]
fn probe_estimator_matches_exhaustive_in_replay() {
    let oracle = Oracle::new(TimeWindows::paper_default());
    for seed in [101u64, 202] {
        let trace = generate(&TraceConfig::small(seed));
        for policy in PolicyConfig::paper_set() {
            let mut config = ServeConfig::replaying(policy, 0.6, trace.horizon);
            config.probe_mode = ProbeMode::Differential;
            let mut controller = Controller::new(&trace.clusters, &oracle, config);
            for request in RequestSource::replaying(&trace) {
                controller.handle(request);
            }
            let online = controller.finalize();
            let batch = packing_experiment(&trace, &oracle, policy, 0.6);
            assert_results_equal(
                &format!("differential probes, seed {seed} policy {}", policy.label),
                &online,
                &batch,
            );
        }
    }
}

/// Estimated-mode probes (read-only, no fill) report the same capacities
/// as the exhaustive batch measurement.
#[test]
fn estimated_probes_report_batch_capacities() {
    let trace = generate(&TraceConfig::small(707));
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let batch = packing_experiment(&trace, &oracle, coach, 0.6);
    let mut config = ServeConfig::replaying(coach, 0.6, trace.horizon);
    config.probe_mode = ProbeMode::Estimated;
    let mut controller = Controller::new(&trace.clusters, &oracle, config);
    let mut capacities = Vec::new();
    for request in RequestSource::replaying(&trace) {
        if let Response::ProbeCapacity(n) = controller.handle(request) {
            capacities.push(n);
        }
    }
    let online = controller.finalize();
    assert_eq!(capacities.len(), 3);
    assert_eq!(online.probe_capacity, batch.probe_capacity);
}

/// Mid-stream stats barriers through the worker runtime: merged reports
/// reconcile monotonically and the final result is unchanged by the extra
/// broadcasts.
#[test]
fn midstream_stats_merge_reconciles() {
    let trace = generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(606)
    });
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let batch = packing_experiment(&trace, &oracle, coach, 0.7);

    let mut sharded = ShardedController::replaying(&trace, &oracle, coach, 0.7, 3);
    let requests: Vec<Request> = RequestSource::replaying(&trace)
        .with_stats_every(SimDuration::from_hours(12))
        .collect();
    let responses = sharded.handle_batch(&requests);
    let stats: Vec<_> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Stats(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert!(stats.len() > 3, "cadence produced merged reports");
    for pair in stats.windows(2) {
        assert!(pair[0].now < pair[1].now, "reports advance in time");
        assert!(
            pair[0].accepted + pair[0].rejected <= pair[1].accepted + pair[1].rejected,
            "admission totals are monotone"
        );
        assert!(
            pair[0].peak_servers_in_use <= pair[1].peak_servers_in_use,
            "merged peak is monotone"
        );
    }
    let result = sharded.finalize();
    assert_eq!(result.accepted, batch.accepted);
    assert_eq!(result.rejected, batch.rejected);
    assert_eq!(result.peak_servers_in_use, batch.peak_servers_in_use);
    assert_eq!(result.probe_capacity, batch.probe_capacity);
}

/// Lane choice and worker placement are pure mechanics: ring lanes,
/// the mutex reference lane, and compact/spread pinning all produce the
/// identical merged result on the same stream.
#[test]
fn lanes_and_placement_do_not_change_decisions() {
    let trace = generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(808)
    });
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let base = ServeConfig::replaying(coach, 0.7, trace.horizon);
    let variants = [
        (LaneKind::Ring, PlacementPolicy::None),
        (LaneKind::MutexRef, PlacementPolicy::None),
        (LaneKind::Ring, PlacementPolicy::Compact),
        (LaneKind::MutexRef, PlacementPolicy::Spread),
    ];
    for shards in [2, 4] {
        let mut results = Vec::new();
        for (lanes, placement) in variants {
            let config = ServeConfig {
                lanes,
                placement,
                ..base
            };
            let mut controller = ShardedController::new(&trace.clusters, &oracle, config, shards);
            let result = controller.run(RequestSource::replaying(&trace));
            let totals = controller.lane_totals();
            assert!(
                totals.sends > 0,
                "{shards} shards {lanes:?}: lanes carried traffic"
            );
            assert!(
                totals.batched_sends > 0,
                "{shards} shards {lanes:?}: dispatcher batched handoffs"
            );
            results.push(result);
        }
        for pair in results.windows(2) {
            assert_eq!(pair[0], pair[1], "{shards} shards: variants agree");
        }
    }
}

/// Lane telemetry survives the sharded stats merge: the merged reports
/// carry non-zero, monotone lane counters, with batched handoffs bounded
/// by total sends, and reconcile with the controller's cumulative totals.
#[test]
fn lane_telemetry_survives_sharded_merge() {
    let trace = generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(909)
    });
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let mut sharded = ShardedController::replaying(&trace, &oracle, coach, 0.7, 3);
    let requests: Vec<Request> = RequestSource::replaying(&trace)
        .with_stats_every(SimDuration::from_hours(12))
        .collect();
    let responses = sharded.handle_batch(&requests);
    let stats: Vec<_> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Stats(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert!(stats.len() > 3, "cadence produced merged reports");
    for report in &stats {
        assert!(
            report.lane_batched_sends <= report.lane_sends,
            "a batched handoff carries at least one item"
        );
    }
    let last = stats.last().expect("at least one report");
    assert!(last.lane_sends > 0, "merged report carries lane traffic");
    assert!(
        last.lane_batched_sends > 0,
        "merged report saw batched handoffs"
    );
    for pair in stats.windows(2) {
        assert!(
            pair[0].lane_sends <= pair[1].lane_sends,
            "lane sends are monotone across merges"
        );
        assert!(
            pair[0].lane_batched_sends <= pair[1].lane_batched_sends,
            "batched handoffs are monotone across merges"
        );
        assert!(
            pair[0].lane_wakeups <= pair[1].lane_wakeups,
            "wakeups are monotone across merges"
        );
    }
    sharded.finalize();
    let totals = sharded.lane_totals();
    assert!(
        totals.sends >= last.lane_sends,
        "cumulative totals cover every merged report"
    );

    // A single-shard controller runs inline: no lanes, all-zero telemetry.
    let mut single = ShardedController::replaying(&trace, &oracle, coach, 0.7, 1);
    single.run(RequestSource::replaying(&trace));
    assert_eq!(single.lane_totals(), LaneStats::default());
    assert_eq!(single.workers_pinned(), 0);
}

/// Streaming responses agree with the final counters: every arrival gets an
/// admission answer and the accept/reject tally reconciles.
#[test]
fn per_request_responses_reconcile() {
    let trace = generate(&TraceConfig::small(55));
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let mut controller = Controller::replaying(&trace, &oracle, coach, 0.6);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut probes = 0u64;
    for req in RequestSource::replaying(&trace) {
        match controller.handle(req) {
            Response::Admission { outcome, .. } => match outcome {
                coach_sched::PlacementOutcome::Placed(_) => accepted += 1,
                coach_sched::PlacementOutcome::Rejected => rejected += 1,
            },
            Response::ProbeCapacity(_) => probes += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    let result = controller.finalize();
    assert_eq!(result.accepted, accepted);
    assert_eq!(result.rejected, rejected);
    assert_eq!(probes, 3);
    assert_eq!(accepted + rejected, trace.vms.len() as u64);
}

/// Build a synthetic trace from raw (arrival, lifetime, size) triples: the
/// proptest harness for heap-driven event ordering, including simultaneous
/// arrivals/departures and zero-length VMs.
fn trace_from_spans(spans: &[(u64, u64, u32)], horizon_days: u64) -> Trace {
    let horizon = Timestamp::from_days(horizon_days);
    let clusters: Vec<Cluster> = (0..2)
        .map(|c| Cluster {
            id: ClusterId::new(c),
            hardware: HardwareConfig::general_purpose_gen4(),
            servers: (c * 4..c * 4 + 4).map(ServerId::new).collect(),
        })
        .collect();
    let mut vms: Vec<VmRecord> = spans
        .iter()
        .enumerate()
        .map(|(i, &(arrival_h, lifetime_h, cores_sel))| {
            let mut rng = SmallRng::seed_from_u64(900 + i as u64);
            let profile = BehaviorTemplate::sample(&mut rng).instantiate(i as u64);
            let arrival = Timestamp::from_hours(arrival_h % (horizon_days * 24));
            VmRecord {
                id: VmId::new(i as u64),
                subscription: SubscriptionId::new(i as u64 % 7),
                subscription_type: SubscriptionType::External,
                offering: Offering::Iaas,
                config: VmConfig::general_purpose(1 + cores_sel % 8),
                cluster: ClusterId::new(i as u64 % 2),
                server: ServerId::new(0),
                arrival,
                departure: arrival + SimDuration::from_hours(lifetime_h),
                profile,
            }
        })
        .collect();
    // The online stream contract: arrival-sorted records (ties keep index
    // order, matching the batch sort's tie-break).
    vms.sort_by_key(|vm| vm.arrival);
    for (i, vm) in vms.iter_mut().enumerate() {
        vm.id = VmId::new(i as u64);
    }
    Trace {
        clusters,
        vms,
        horizon,
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Random arrival/departure interleavings — including equal-time
        /// arrival+departure collisions and zero-length VMs — replay
        /// identically through the heap-driven online controller and the
        /// pre-sorted batch experiment.
        #[test]
        fn prop_heap_event_order_matches_batch(
            spans in prop::collection::vec((0u64..96, 0u64..200, 0u32..8), 1..60),
            policy_sel in 0usize..4,
            fraction_sel in 0usize..2,
        ) {
            let trace = trace_from_spans(&spans, 6);
            let policy = PolicyConfig::paper_set()[policy_sel];
            let fraction = [0.5, 1.0][fraction_sel];
            let online = serve_trace(
                &trace,
                &Oracle::new(TimeWindows::paper_default()),
                policy,
                fraction,
            );
            let batch = packing_experiment(
                &trace,
                &Oracle::new(TimeWindows::paper_default()),
                policy,
                fraction,
            );
            prop_assert_eq!(online, batch);
        }

        /// The worker runtime stays integer-exact against the batch replay
        /// for every shard count in 1..=4 under random interleavings.
        #[test]
        fn prop_sharded_runtime_matches_batch(
            spans in prop::collection::vec((0u64..96, 0u64..200, 0u32..8), 1..40),
            policy_sel in 0usize..4,
            shards in 1usize..=4,
        ) {
            let trace = trace_from_spans(&spans, 6);
            let policy = PolicyConfig::paper_set()[policy_sel];
            let sharded = serve_trace_sharded(
                &trace,
                &Oracle::new(TimeWindows::paper_default()),
                policy,
                0.7,
                shards,
            );
            let batch = packing_experiment(
                &trace,
                &Oracle::new(TimeWindows::paper_default()),
                policy,
                0.7,
            );
            prop_assert_eq!(sharded.accepted, batch.accepted);
            prop_assert_eq!(sharded.rejected, batch.rejected);
            prop_assert_eq!(sharded.probe_capacity, batch.probe_capacity);
            prop_assert_eq!(sharded.peak_servers_in_use, batch.peak_servers_in_use);
            prop_assert_eq!(sharded.cpu_violation_rate, batch.cpu_violation_rate);
            prop_assert_eq!(sharded.mem_violation_rate, batch.mem_violation_rate);
        }
    }
}

//! Differential tests: the online controller must reproduce the batch
//! replay exactly — same placements, same rejection count, same probe
//! capacity, same occupancy peak, same violation rates — across seeds,
//! policies, trace scales, shard counts, and random arrival/departure
//! interleavings.

use coach_serve::{serve_trace, serve_trace_sharded, Controller, RequestSource, Response};
use coach_sim::{packing_experiment, Oracle, PolicyConfig};
use coach_trace::{generate, BehaviorTemplate, Cluster, Trace, TraceConfig, VmRecord};
use coach_types::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Full-strict equality of every `PackingResult` field, with a precise
/// failure message.
fn assert_results_equal(
    label: &str,
    online: &coach_sim::PackingResult,
    batch: &coach_sim::PackingResult,
) {
    assert_eq!(online, batch, "{label}: online != batch");
}

/// Small traces: every policy × several seeds, bit-exact.
#[test]
fn online_matches_batch_small_all_policies() {
    for seed in [101u64, 202, 303] {
        let trace = generate(&TraceConfig::small(seed));
        for policy in PolicyConfig::paper_set() {
            let online = serve_trace(
                &trace,
                &Oracle::new(TimeWindows::paper_default()),
                policy,
                0.6,
            );
            let batch = packing_experiment(
                &trace,
                &Oracle::new(TimeWindows::paper_default()),
                policy,
                0.6,
            );
            assert_results_equal(
                &format!("seed {seed} policy {}", policy.label),
                &online,
                &batch,
            );
        }
    }
}

/// A medium-trace slice (denser clusters, real rejections) stays bit-exact.
#[test]
fn online_matches_batch_medium_slice() {
    let mut trace = generate(&TraceConfig::medium(7));
    trace.vms.truncate(8_000);
    for policy in [
        PolicyConfig::paper_set().remove(2), // Coach
        PolicyConfig::paper_set().remove(0), // None
    ] {
        let online = serve_trace(
            &trace,
            &Oracle::new(TimeWindows::paper_default()),
            policy,
            0.9,
        );
        let batch = packing_experiment(
            &trace,
            &Oracle::new(TimeWindows::paper_default()),
            policy,
            0.9,
        );
        assert_results_equal(
            &format!("medium slice policy {}", policy.label),
            &online,
            &batch,
        );
    }
}

/// Sharded replay: integer-exact everywhere, ulp-tolerant only on the
/// cross-shard floating-point capacity sums.
#[test]
fn sharded_matches_batch() {
    let trace = generate(&TraceConfig::small(404));
    let coach = PolicyConfig::paper_set().remove(2);
    let batch = packing_experiment(
        &trace,
        &Oracle::new(TimeWindows::paper_default()),
        coach,
        0.7,
    );
    for shards in [1, 2, 3] {
        let online = serve_trace_sharded(
            &trace,
            &Oracle::new(TimeWindows::paper_default()),
            coach,
            0.7,
            shards,
        );
        assert_eq!(online.accepted, batch.accepted, "{shards} shards");
        assert_eq!(online.rejected, batch.rejected, "{shards} shards");
        assert_eq!(
            online.probe_capacity, batch.probe_capacity,
            "{shards} shards"
        );
        assert_eq!(
            online.peak_servers_in_use, batch.peak_servers_in_use,
            "{shards} shards: merged-timeline peak"
        );
        assert_eq!(
            online.cpu_violation_rate, batch.cpu_violation_rate,
            "{shards} shards"
        );
        assert_eq!(
            online.mem_violation_rate, batch.mem_violation_rate,
            "{shards} shards"
        );
        let rel = (online.accepted_core_hours - batch.accepted_core_hours).abs()
            / batch.accepted_core_hours.max(1.0);
        assert!(rel < 1e-9, "{shards} shards: core-hours rel err {rel}");
        let rel = (online.accepted_gb_hours - batch.accepted_gb_hours).abs()
            / batch.accepted_gb_hours.max(1.0);
        assert!(rel < 1e-9, "{shards} shards: gb-hours rel err {rel}");
    }
}

/// Streaming responses agree with the final counters: every arrival gets an
/// admission answer and the accept/reject tally reconciles.
#[test]
fn per_request_responses_reconcile() {
    let trace = generate(&TraceConfig::small(55));
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let mut controller = Controller::replaying(&trace, &oracle, coach, 0.6);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut probes = 0u64;
    for req in RequestSource::replaying(&trace) {
        match controller.handle(req) {
            Response::Admission { outcome, .. } => match outcome {
                coach_sched::PlacementOutcome::Placed(_) => accepted += 1,
                coach_sched::PlacementOutcome::Rejected => rejected += 1,
            },
            Response::ProbeCapacity(_) => probes += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    let result = controller.finalize();
    assert_eq!(result.accepted, accepted);
    assert_eq!(result.rejected, rejected);
    assert_eq!(probes, 3);
    assert_eq!(accepted + rejected, trace.vms.len() as u64);
}

/// Build a synthetic trace from raw (arrival, lifetime, size) triples: the
/// proptest harness for heap-driven event ordering, including simultaneous
/// arrivals/departures and zero-length VMs.
fn trace_from_spans(spans: &[(u64, u64, u32)], horizon_days: u64) -> Trace {
    let horizon = Timestamp::from_days(horizon_days);
    let clusters: Vec<Cluster> = (0..2)
        .map(|c| Cluster {
            id: ClusterId::new(c),
            hardware: HardwareConfig::general_purpose_gen4(),
            servers: (c * 4..c * 4 + 4).map(ServerId::new).collect(),
        })
        .collect();
    let mut vms: Vec<VmRecord> = spans
        .iter()
        .enumerate()
        .map(|(i, &(arrival_h, lifetime_h, cores_sel))| {
            let mut rng = SmallRng::seed_from_u64(900 + i as u64);
            let profile = BehaviorTemplate::sample(&mut rng).instantiate(i as u64);
            let arrival = Timestamp::from_hours(arrival_h % (horizon_days * 24));
            VmRecord {
                id: VmId::new(i as u64),
                subscription: SubscriptionId::new(i as u64 % 7),
                subscription_type: SubscriptionType::External,
                offering: Offering::Iaas,
                config: VmConfig::general_purpose(1 + cores_sel % 8),
                cluster: ClusterId::new(i as u64 % 2),
                server: ServerId::new(0),
                arrival,
                departure: arrival + SimDuration::from_hours(lifetime_h),
                profile,
            }
        })
        .collect();
    // The online stream contract: arrival-sorted records (ties keep index
    // order, matching the batch sort's tie-break).
    vms.sort_by_key(|vm| vm.arrival);
    for (i, vm) in vms.iter_mut().enumerate() {
        vm.id = VmId::new(i as u64);
    }
    Trace {
        clusters,
        vms,
        horizon,
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Random arrival/departure interleavings — including equal-time
        /// arrival+departure collisions and zero-length VMs — replay
        /// identically through the heap-driven online controller and the
        /// pre-sorted batch experiment.
        #[test]
        fn prop_heap_event_order_matches_batch(
            spans in prop::collection::vec((0u64..96, 0u64..200, 0u32..8), 1..60),
            policy_sel in 0usize..4,
            fraction_sel in 0usize..2,
        ) {
            let trace = trace_from_spans(&spans, 6);
            let policy = PolicyConfig::paper_set()[policy_sel];
            let fraction = [0.5, 1.0][fraction_sel];
            let online = serve_trace(
                &trace,
                &Oracle::new(TimeWindows::paper_default()),
                policy,
                fraction,
            );
            let batch = packing_experiment(
                &trace,
                &Oracle::new(TimeWindows::paper_default()),
                policy,
                fraction,
            );
            prop_assert_eq!(online, batch);
        }
    }
}

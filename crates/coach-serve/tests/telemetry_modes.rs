//! Telemetry-mode differential tests: arming the registry (and the span
//! rings) must never change a decision, the registry's counters must agree
//! with the `StatsReport` views the serving layer already exposes, and the
//! exports must be well-formed.

use coach_serve::{
    Request, RequestSource, Response, ServeConfig, ShardedController, TelemetryConfig,
};
use coach_sim::{Oracle, PolicyConfig};
use coach_telemetry::chrome_trace;
use coach_trace::{generate, Trace, TraceConfig};
use coach_types::prelude::*;

fn small_trace(seed: u64) -> Trace {
    generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(seed)
    })
}

fn sharded<'a>(
    trace: &'a Trace,
    oracle: &'a Oracle,
    mode: TelemetryConfig,
    shards: usize,
) -> ShardedController<'a> {
    let coach = PolicyConfig::paper_set().remove(2);
    let config = ServeConfig {
        telemetry: mode,
        ..ServeConfig::replaying(coach, 0.7, trace.horizon)
    };
    ShardedController::new(&trace.clusters, oracle, config, shards)
}

/// Off / CountersOnly / Full produce bit-identical decisions — the whole
/// telemetry subsystem is observation, never a participant.
#[test]
fn modes_are_decision_bit_identical() {
    let trace = small_trace(7001);
    let oracle = Oracle::new(TimeWindows::paper_default());
    let requests: Vec<Request> = RequestSource::replaying(&trace).collect();
    let mut baseline = None;
    for mode in [
        TelemetryConfig::Off,
        TelemetryConfig::CountersOnly,
        TelemetryConfig::Full,
    ] {
        let mut controller = sharded(&trace, &oracle, mode, 3);
        let responses = controller.handle_batch(&requests);
        let result = controller.finalize();
        match &baseline {
            None => baseline = Some((responses, result)),
            Some((expect_responses, expect_result)) => {
                assert_eq!(
                    &responses, expect_responses,
                    "{mode:?}: responses identical"
                );
                assert_eq!(&result, expect_result, "{mode:?}: merged result identical");
            }
        }
    }
}

/// `Off` arms nothing: no registry, no rings.
#[test]
fn off_mode_exposes_no_registry() {
    let trace = small_trace(7002);
    let oracle = Oracle::new(TimeWindows::paper_default());
    let mut controller = sharded(&trace, &oracle, TelemetryConfig::Off, 2);
    controller.run(RequestSource::replaying(&trace));
    assert!(controller.telemetry_registry().is_none());
    assert!(controller.telemetry_span_rings().is_empty());
}

/// The registry's decision-derived counters are views over the same state
/// `StatsReport` already reports: summed across shard labels they must
/// equal the merged report's fields exactly.
#[test]
fn registry_counters_match_stats_report() {
    let trace = small_trace(7003);
    let oracle = Oracle::new(TimeWindows::paper_default());
    let mut controller = sharded(&trace, &oracle, TelemetryConfig::CountersOnly, 2);
    let mut requests: Vec<Request> = RequestSource::replaying(&trace).collect();
    requests.push(Request::Stats { now: trace.horizon });
    let responses = controller.handle_batch(&requests);
    let Some(Response::Stats(report)) = responses.last() else {
        panic!("trailing stats request answered");
    };

    let registry = controller.telemetry_registry().expect("telemetry armed");
    let snapshot = registry.snapshot();
    let sum = |name: &str| -> u64 {
        snapshot
            .counters_with_prefix(name)
            .into_iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, _, v)| v)
            .sum()
    };
    assert_eq!(sum("coach_serve_accepted_total"), report.accepted);
    assert_eq!(sum("coach_serve_rejected_total"), report.rejected);
    assert_eq!(sum("coach_serve_departed_total"), report.departed);
    assert_eq!(
        sum("coach_serve_probe_capacity_total"),
        report.probe_capacity_total
    );
    // Ticks are broadcast: every shard absorbs every tick, the report
    // takes the max.
    assert_eq!(sum("coach_serve_ticks_total"), report.ticks * 2);
    // Lane counters migrated from `LaneStats` mirror the report fields.
    assert_eq!(sum("coach_serve_lane_sends_total"), report.lane_sends);
    assert_eq!(
        sum("coach_serve_lane_batched_sends_total"),
        report.lane_batched_sends
    );
    assert_eq!(sum("coach_serve_worker_restarts_total"), 0);
}

/// Full mode records spans and every export renders: Prometheus text with
/// HELP/TYPE headers, JSONL one-object-per-line, and a Chrome trace that
/// is a single JSON object with complete-phase events.
#[test]
fn full_mode_spans_and_exports_render() {
    let trace = small_trace(7004);
    let oracle = Oracle::new(TimeWindows::paper_default());
    let mut controller = sharded(&trace, &oracle, TelemetryConfig::Full, 2);
    let mut requests: Vec<Request> = RequestSource::replaying(&trace).collect();
    requests.push(Request::Stats { now: trace.horizon });
    controller.handle_batch(&requests);

    let registry = controller.telemetry_registry().expect("telemetry armed");
    let text = registry.render_text();
    assert!(text.contains("# HELP coach_serve_accepted_total"));
    assert!(text.contains("# TYPE coach_serve_admission_latency_ns histogram"));
    assert!(text.contains("policy=\""));
    let jsonl = registry.render_jsonl();
    assert!(jsonl.lines().count() >= 10, "one JSON object per series");
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line {line}"
        );
    }

    // 2 shard rings + the dispatcher ring, with barrier spans recorded.
    let rings = controller.telemetry_span_rings();
    assert_eq!(rings.len(), 3);
    let dispatcher_ring = rings.last().expect("dispatcher ring present");
    assert!(dispatcher_ring.count("dispatch.stage") > 0);
    assert!(dispatcher_ring.count("dispatch.drain") > 0);
    assert!(dispatcher_ring.count("dispatch.merge") > 0);
    assert!(
        rings[0].count("serve.stats") > 0,
        "shard rings hold broadcast-token spans"
    );

    let json = chrome_trace(rings.iter().copied());
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\""));
    assert!(json.ends_with("]}"));
    assert!(json.contains("\"name\":\"dispatch.drain\""));
    assert!(json.contains("\"ph\":\"X\""));
}

//! Streaming ingestion differential tests: the constant-memory stream path
//! (`StreamingTrace` → `StreamSource` → `ShardedController::run_stream`)
//! must be decision-identical to the materialized replay, and every
//! scenario combinator must match its hand-materialized equivalent when
//! served — at one shard and at four.

use coach_serve::scenario::{sku_mix, stream_arrivals, Evacuate, GroupFailure, Surge};
use coach_serve::{RequestSource, ServeConfig, ShardedController, StreamRequest, StreamSource};
use coach_sim::{Oracle, PolicyConfig, Predictor};
use coach_trace::{generate, Cluster, StreamingTrace, TraceConfig};
use coach_types::prelude::*;

/// Four clusters so shard counts up to 4 are genuinely distinct.
fn four_cluster_config(seed: u64) -> TraceConfig {
    TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(seed)
    }
}

/// Serve an owning request sequence at `shards`, both streamed (owned
/// segments) and materialized (borrowed segments over the same sequence);
/// the two must agree exactly — same segmentation, same float order.
fn assert_stream_equals_materialized(
    label: &str,
    clusters: &[Cluster],
    predictor: &dyn Predictor,
    config: ServeConfig,
    shards: usize,
    requests: &[StreamRequest],
) {
    let mut streamed = ShardedController::new(clusters, predictor, config, shards);
    let streamed_result = streamed.run_stream(requests.to_vec());
    let mut materialized = ShardedController::new(clusters, predictor, config, shards);
    let materialized_result = materialized.run(requests.iter().map(StreamRequest::as_request));
    assert_eq!(
        streamed_result, materialized_result,
        "{label}: {shards} shards"
    );
}

/// The full stream path over a `StreamingTrace` reproduces the materialized
/// replay exactly for every paper policy at shards {1, 2, 4}.
#[test]
fn stream_replay_matches_materialized_all_policies() {
    let config = four_cluster_config(31);
    let trace = generate(&config);
    let streaming = StreamingTrace::with_chunk_budget(&config, 64);
    assert_eq!(streaming.clusters(), &trace.clusters[..]);
    let oracle = Oracle::new(TimeWindows::paper_default());
    for policy in PolicyConfig::paper_set() {
        for shards in [1usize, 2, 4] {
            let mut materialized =
                ShardedController::replaying(&trace, &oracle, policy, 0.7, shards);
            let expected = materialized.run(RequestSource::replaying(&trace));
            let mut streamed = ShardedController::new(
                streaming.clusters(),
                &oracle,
                ServeConfig::replaying(policy, 0.7, trace.horizon),
                shards,
            );
            let got = streamed.run_stream(StreamSource::streaming(&streaming));
            assert_eq!(got, expected, "policy {} shards {shards}", policy.label);
        }
    }
}

/// Surge scenario: live combinator chain over the streaming generator,
/// decision-identical to its materialized equivalent at shards {1, 4}.
#[test]
fn surge_scenario_decision_identity() {
    let config = four_cluster_config(33);
    let streaming = StreamingTrace::new(&config);
    let horizon = config.horizon;
    let mid = Timestamp::from_ticks(horizon.ticks() / 2);
    let make = || {
        Surge::new(
            stream_arrivals(streaming.records()),
            2,
            mid,
            horizon,
            1 << 32,
        )
    };
    let requests: Vec<StreamRequest> = make().collect();
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let serve = ServeConfig::replaying(coach, 0.7, horizon);
    for shards in [1usize, 4] {
        assert_stream_equals_materialized(
            "surge",
            streaming.clusters(),
            &oracle,
            serve,
            shards,
            &requests,
        );
    }
    // And the live (uncollected) combinator agrees with its own
    // materialization end-to-end.
    let mut live = ShardedController::new(streaming.clusters(), &oracle, serve, 4);
    let live_result = live.run_stream(make());
    let mut collected = ShardedController::new(streaming.clusters(), &oracle, serve, 4);
    let collected_result = collected.run_stream(requests);
    assert_eq!(live_result, collected_result);
}

/// Evacuation scenario at shards {1, 4}: the drained cluster's VMs depart
/// at the evacuation time and re-routed arrivals land on the target.
#[test]
fn evacuation_scenario_decision_identity() {
    let config = four_cluster_config(35);
    let streaming = StreamingTrace::new(&config);
    let clusters = streaming.clusters().to_vec();
    let at = Timestamp::from_ticks(config.horizon.ticks() / 2);
    let requests: Vec<StreamRequest> = Evacuate::new(
        stream_arrivals(streaming.records()),
        clusters[0].id,
        at,
        clusters[1].id,
    )
    .collect();
    assert!(
        requests
            .iter()
            .any(|r| matches!(r, StreamRequest::Depart { .. })),
        "evacuation storm fired"
    );
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let serve = ServeConfig::replaying(coach, 0.7, config.horizon);
    for shards in [1usize, 4] {
        assert_stream_equals_materialized("evac", &clusters, &oracle, serve, shards, &requests);
    }
}

/// Correlated-group failure at shards {1, 4}: the re-placement storm (all
/// departs, then all re-arrivals at the failure time) serves identically
/// streamed and materialized.
#[test]
fn group_failure_scenario_decision_identity() {
    let config = four_cluster_config(37);
    let trace = generate(&config);
    let streaming = StreamingTrace::new(&config);
    // The busiest subscription makes the biggest storm.
    let mut counts = std::collections::HashMap::new();
    for rec in &trace.vms {
        *counts.entry(rec.subscription).or_insert(0usize) += 1;
    }
    let (&sub, _) = counts.iter().max_by_key(|(_, n)| **n).unwrap();
    let at = Timestamp::from_ticks(config.horizon.ticks() / 3);
    let requests: Vec<StreamRequest> =
        GroupFailure::new(stream_arrivals(streaming.records()), sub, at, 1 << 40).collect();
    assert!(
        requests
            .iter()
            .any(|r| matches!(r, StreamRequest::Depart { .. })),
        "failure storm fired"
    );
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let serve = ServeConfig::replaying(coach, 0.7, config.horizon);
    for shards in [1usize, 4] {
        assert_stream_equals_materialized(
            "group-fail",
            streaming.clusters(),
            &oracle,
            serve,
            shards,
            &requests,
        );
    }
}

/// Heterogeneous-SKU scenario at shards {1, 4}: the same stream served on
/// the rotated fleet, streamed vs materialized.
#[test]
fn sku_mix_scenario_decision_identity() {
    let config = four_cluster_config(39);
    let streaming = StreamingTrace::new(&config);
    let rotated = sku_mix(streaming.clusters());
    for (before, after) in streaming.clusters().iter().zip(&rotated) {
        assert_ne!(before.hardware.capacity, after.hardware.capacity);
    }
    let requests: Vec<StreamRequest> = stream_arrivals(streaming.records()).collect();
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let serve = ServeConfig::replaying(coach, 0.7, config.horizon);
    for shards in [1usize, 4] {
        assert_stream_equals_materialized("sku-mix", &rotated, &oracle, serve, shards, &requests);
    }
}

/// The `serve.stream_*` counters land in the registry after a streaming
/// session.
#[test]
fn stream_counters_reach_registry() {
    let config = four_cluster_config(41);
    let streaming = StreamingTrace::new(&config);
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let serve = ServeConfig {
        telemetry: coach_serve::TelemetryConfig::CountersOnly,
        ..ServeConfig::replaying(coach, 0.7, config.horizon)
    };
    let mut controller = ShardedController::new(streaming.clusters(), &oracle, serve, 2);
    controller.run_stream(StreamSource::streaming(&streaming));
    let registry = controller.telemetry_registry().expect("telemetry armed");
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("coach_serve_stream_records_total", &[]),
        Some(streaming.len() as u64)
    );
    assert!(
        snapshot
            .counter("coach_serve_stream_segments_total", &[])
            .expect("segments counter registered")
            >= 1
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Random chunk budgets: the chunked stream replay is bit-identical
        /// to the whole-slice `RequestSource` replay across the four paper
        /// policies and shard counts {1, 2, 4}.
        #[test]
        fn prop_chunked_stream_matches_whole_slice(
            budget in 1usize..4096,
            seed in 0u64..4,
            policy_sel in 0usize..4,
            shards_sel in 0usize..3,
        ) {
            let config = four_cluster_config(4300 + seed);
            let trace = generate(&config);
            let streaming = StreamingTrace::with_chunk_budget(&config, budget);
            prop_assert_eq!(streaming.clusters(), &trace.clusters[..]);
            let policy = PolicyConfig::paper_set()[policy_sel];
            let shards = [1usize, 2, 4][shards_sel];
            let oracle = Oracle::new(TimeWindows::paper_default());
            let mut materialized =
                ShardedController::replaying(&trace, &oracle, policy, 0.7, shards);
            let expected = materialized.run(RequestSource::replaying(&trace));
            let mut streamed = ShardedController::new(
                streaming.clusters(),
                &oracle,
                ServeConfig::replaying(policy, 0.7, trace.horizon),
                shards,
            );
            let got = streamed.run_stream(StreamSource::streaming(&streaming));
            prop_assert_eq!(got, expected);
        }
    }
}

//! Snapshot/restore live servicing: draining a shard mid-stream, restoring
//! it into a freshly constructed controller, and resuming the stream must
//! be invisible — the final `PackingResult` is bit-identical to the
//! uninterrupted replay (and therefore to the batch experiment), at every
//! snapshot point, shard count, and policy.

use coach_serve::{
    serve_trace_sharded, Controller, Request, RequestSource, ShardedController, Snapshot,
};
use coach_sim::{packing_experiment, Oracle, PolicyConfig};
use coach_trace::{generate, BehaviorTemplate, Cluster, Trace, TraceConfig, VmRecord};
use coach_types::prelude::*;
use coach_wire::WireError;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Record-resolution table for restores: snapshots carry accounting state
/// that references trace records by id.
fn record_table(trace: &Trace) -> HashMap<VmId, &VmRecord> {
    trace.vms.iter().map(|rec| (rec.id, rec)).collect()
}

/// Drain every shard at `split`, restore into a brand-new controller, and
/// finish the stream there; return the merged final result.
fn interrupted_replay(
    trace: &Trace,
    oracle: &Oracle,
    policy: PolicyConfig,
    fraction: f64,
    shards: usize,
    split: usize,
) -> coach_sim::PackingResult {
    let requests: Vec<Request> = RequestSource::replaying(trace).collect();
    let split = split.min(requests.len());
    let table = record_table(trace);

    let mut first = ShardedController::replaying(trace, oracle, policy, fraction, shards);
    first.handle_batch(&requests[..split]);
    let snapshots: Vec<Snapshot> = (0..first.shard_count())
        .map(|shard| first.drain_shard(shard))
        .collect();
    drop(first);

    // The upgrade: a fresh deployment of the same shape, seeded from the
    // drained snapshots, picks up the stream where the old one stopped.
    let mut second = ShardedController::replaying(trace, oracle, policy, fraction, shards);
    for (shard, snapshot) in snapshots.iter().enumerate() {
        second
            .resume_shard(shard, snapshot, |vm| table.get(&vm).copied())
            .expect("drained snapshot restores");
    }
    second.handle_batch(&requests[split..]);
    second.finalize()
}

/// Snapshot→restore mid-stream equals the uninterrupted replay — across
/// shard counts {1, 2, 4}, all four paper policies, and three cut points
/// (early, middle, late).
#[test]
fn restore_mid_stream_matches_uninterrupted() {
    let trace = generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(4242)
    });
    let oracle = Oracle::new(TimeWindows::paper_default());
    let stream_len = RequestSource::replaying(&trace).count();
    for policy in PolicyConfig::paper_set() {
        let batch = packing_experiment(&trace, &oracle, policy, 0.7);
        for shards in [1usize, 2, 4] {
            let uninterrupted = serve_trace_sharded(&trace, &oracle, policy, 0.7, shards);
            assert_eq!(
                uninterrupted.accepted, batch.accepted,
                "{shards} shards {}: baseline anchors to batch",
                policy.label
            );
            for split in [1, stream_len / 2, stream_len - 1] {
                let resumed = interrupted_replay(&trace, &oracle, policy, 0.7, shards, split);
                assert_eq!(
                    resumed, uninterrupted,
                    "{shards} shards {} split {split}: restore is invisible",
                    policy.label
                );
            }
        }
    }
}

/// Snapshots are pure reads: taking one twice yields identical bytes, the
/// shard keeps serving afterwards, and restore→re-snapshot is a byte-level
/// fixed point.
#[test]
fn snapshot_is_nondestructive_and_roundtrips_bytes() {
    let trace = generate(&TraceConfig::small(777));
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let table = record_table(&trace);
    let requests: Vec<Request> = RequestSource::replaying(&trace).collect();
    let split = requests.len() / 2;

    let mut controller = Controller::replaying(&trace, &oracle, coach, 0.6);
    for request in &requests[..split] {
        controller.handle(*request);
    }
    let s1 = controller.snapshot();
    let s2 = controller.snapshot();
    assert_eq!(s1, s2, "snapshot is a pure read");
    assert!(!s1.is_empty());

    let mut restored =
        Controller::restore(&oracle, &s1, |vm| table.get(&vm).copied()).expect("snapshot restores");
    assert_eq!(
        restored.snapshot(),
        s1,
        "restore→re-snapshot is byte-identical"
    );

    // Both copies finish the stream and agree — and the original was not
    // perturbed by being snapshotted.
    for request in &requests[split..] {
        controller.handle(*request);
        restored.handle(*request);
    }
    assert_eq!(controller.finalize(), restored.finalize());
}

/// Restore validates before it builds: a predictor with a different window
/// partition is rejected, as are truncated and corrupted snapshot bytes.
#[test]
fn restore_rejects_mismatched_or_corrupt_snapshots() {
    let trace = generate(&TraceConfig::small(31));
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let table = record_table(&trace);
    let mut controller = Controller::replaying(&trace, &oracle, coach, 0.6);
    let requests: Vec<Request> = RequestSource::replaying(&trace).collect();
    for request in &requests[..requests.len() / 2] {
        controller.handle(*request);
    }
    let snapshot = controller.snapshot();

    // Wrong predictor shape: the dump's window partition must match.
    let other = Oracle::new(TimeWindows::new(
        TimeWindows::paper_default().count() as u32 * 2,
    ));
    let Err(err) = Controller::restore(&other, &snapshot, |vm| table.get(&vm).copied()) else {
        panic!("window mismatch rejected");
    };
    assert!(
        matches!(err, WireError::Invalid { .. }),
        "got {err:?}, want Invalid"
    );

    // Truncated bytes fail structurally, never panic.
    let truncated = Snapshot::from_bytes(snapshot.bytes()[..snapshot.len() / 2].to_vec());
    assert!(Controller::restore(&oracle, &truncated, |vm| table.get(&vm).copied()).is_err());

    // A corrupted magic is rejected before any field decodes.
    let mut garbled = snapshot.bytes().to_vec();
    garbled[0] ^= 0xff;
    let garbled = Snapshot::from_bytes(garbled);
    assert!(matches!(
        Controller::restore(&oracle, &garbled, |vm| table.get(&vm).copied()).err(),
        Some(WireError::Magic { .. })
    ));

    // An unresolvable record reference is a caller bug and panics with a
    // named VM (resolve returning None means the record table is stale).
    let resolves_nothing = std::panic::catch_unwind(|| {
        let _ = Controller::restore(&oracle, &snapshot, |_| None);
    });
    assert!(
        resolves_nothing.is_err(),
        "restore with an empty record table panics"
    );
}

/// Build a synthetic trace from raw (arrival, lifetime, size) triples —
/// the same harness the differential suite uses for heap-driven orderings.
fn trace_from_spans(spans: &[(u64, u64, u32)], horizon_days: u64) -> Trace {
    let horizon = Timestamp::from_days(horizon_days);
    let clusters: Vec<Cluster> = (0..2)
        .map(|c| Cluster {
            id: ClusterId::new(c),
            hardware: HardwareConfig::general_purpose_gen4(),
            servers: (c * 4..c * 4 + 4).map(ServerId::new).collect(),
        })
        .collect();
    let mut vms: Vec<VmRecord> = spans
        .iter()
        .enumerate()
        .map(|(i, &(arrival_h, lifetime_h, cores_sel))| {
            let mut rng = SmallRng::seed_from_u64(1300 + i as u64);
            let profile = BehaviorTemplate::sample(&mut rng).instantiate(i as u64);
            let arrival = Timestamp::from_hours(arrival_h % (horizon_days * 24));
            VmRecord {
                id: VmId::new(i as u64),
                subscription: SubscriptionId::new(i as u64 % 7),
                subscription_type: SubscriptionType::External,
                offering: Offering::Iaas,
                config: VmConfig::general_purpose(1 + cores_sel % 8),
                cluster: ClusterId::new(i as u64 % 2),
                server: ServerId::new(0),
                arrival,
                departure: arrival + SimDuration::from_hours(lifetime_h),
                profile,
            }
        })
        .collect();
    vms.sort_by_key(|vm| vm.arrival);
    for (i, vm) in vms.iter_mut().enumerate() {
        vm.id = VmId::new(i as u64);
    }
    Trace {
        clusters,
        vms,
        horizon,
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// A snapshot taken at a *random* stream position, restored into a
        /// fresh controller, finishes to the identical merged result —
        /// under random interleavings, every policy, and 1–2 shards.
        #[test]
        fn prop_restore_at_random_point_is_invisible(
            spans in prop::collection::vec((0u64..96, 0u64..200, 0u32..8), 1..40),
            policy_sel in 0usize..4,
            shards in 1usize..=2,
            cut in 0.0f64..1.0,
        ) {
            let trace = trace_from_spans(&spans, 6);
            let policy = PolicyConfig::paper_set()[policy_sel];
            let oracle = Oracle::new(TimeWindows::paper_default());
            let stream_len = RequestSource::replaying(&trace).count();
            let split = ((stream_len as f64) * cut) as usize;
            let uninterrupted =
                serve_trace_sharded(&trace, &oracle, policy, 0.7, shards);
            let resumed =
                interrupted_replay(&trace, &oracle, policy, 0.7, shards, split);
            prop_assert_eq!(resumed, uninterrupted);
        }
    }
}

//! Cross-process telemetry equality: a process-backed deployment's merged
//! registry must report the same decision-derived counter series — name,
//! labels, and value — as the thread-backed deployment on the same stream.
//! Transport-dependent series (lanes, wire bytes, span drops, restarts)
//! legitimately differ between backends and are excluded.
//!
//! `harness = false`: the pool re-execs this binary as its shard workers.

use coach_serve::{Request, RequestSource, ServeConfig, ShardedController, TelemetryConfig};
use coach_sim::{Oracle, PolicyConfig};
use coach_telemetry::CounterSeries;
use coach_trace::{generate, Trace, TraceConfig};
use coach_types::prelude::*;

/// The counter families both backends must agree on exactly: pure
/// functions of the (bit-identical) decision stream.
const DECISION_COUNTERS: &[&str] = &[
    "coach_serve_accepted_total",
    "coach_serve_rejected_total",
    "coach_serve_departed_total",
    "coach_serve_ticks_total",
    "coach_serve_probe_measurements_total",
    "coach_serve_probe_capacity_total",
];

fn run_backend(trace: &Trace, backend: WorkerBackend, shards: usize) -> Vec<CounterSeries> {
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let config = ServeConfig {
        backend,
        telemetry: TelemetryConfig::CountersOnly,
        ..ServeConfig::replaying(coach, 0.7, trace.horizon)
    };
    let mut controller = ShardedController::new(&trace.clusters, &oracle, config, shards);
    let requests: Vec<Request> = RequestSource::replaying(trace).collect();
    controller.handle_batch(&requests);
    controller.finalize();
    let snapshot = controller
        .telemetry_registry()
        .expect("telemetry armed")
        .snapshot();
    let mut series: Vec<CounterSeries> = DECISION_COUNTERS
        .iter()
        .flat_map(|name| {
            snapshot
                .counters_with_prefix(name)
                .into_iter()
                .filter(move |(n, _, _)| n == name)
        })
        .collect();
    series.sort();
    series
}

fn thread_and_process_registries_agree() {
    let trace = generate(&TraceConfig {
        cluster_count: 8,
        ..TraceConfig::small(4242)
    });
    let shards = 4usize;
    let threaded = run_backend(&trace, WorkerBackend::Thread, shards);
    let processed = run_backend(&trace, WorkerBackend::Process, shards);
    assert!(
        threaded.iter().any(|(_, _, v)| *v > 0),
        "the stream produced nonzero decision counters"
    );
    assert_eq!(
        processed, threaded,
        "process-merged registry == thread registry, series for series"
    );
}

fn main() {
    // Children re-exec this binary: route them into the worker loop first.
    coach_serve::maybe_run_shard_worker();

    match std::panic::catch_unwind(thread_and_process_registries_agree) {
        Ok(()) => println!("test thread_and_process_registries_agree ... ok"),
        Err(_) => {
            println!("test thread_and_process_registries_agree ... FAILED");
            std::process::exit(1);
        }
    }
}

//! Process-backend differential tests: supervised shard-worker *processes*
//! speaking coach-wire frames must be decision-identical to the in-process
//! thread backend — through clean replays, SIGKILL mid-stream, and
//! drain/resume live servicing.
//!
//! `harness = false`: the pool re-execs this very binary as its shard
//! workers, so `main` must call [`coach_serve::maybe_run_shard_worker`]
//! before any test logic.

use coach_serve::{
    serve_trace_sharded, Request, RequestSource, Response, ServeConfig, ShardedController, Snapshot,
};
use coach_sim::{packing_experiment, Oracle, PolicyConfig};
use coach_trace::{generate, Trace, TraceConfig, VmRecord};
use coach_types::prelude::*;
use std::collections::HashMap;

fn record_table(trace: &Trace) -> HashMap<VmId, &VmRecord> {
    trace.vms.iter().map(|rec| (rec.id, rec)).collect()
}

/// A process-backed sharded controller replaying the batch semantics.
fn process_controller<'a>(
    trace: &'a Trace,
    oracle: &'a Oracle,
    policy: PolicyConfig,
    fraction: f64,
    shards: usize,
) -> ShardedController<'a> {
    let config = ServeConfig {
        backend: WorkerBackend::Process,
        ..ServeConfig::replaying(policy, fraction, trace.horizon)
    };
    ShardedController::new(&trace.clusters, oracle, config, shards)
}

/// Thread vs process: the same stream through supervised child processes
/// produces the identical merged `PackingResult` — every paper policy,
/// shard counts {1, 2, 4} — and both anchor to the batch experiment.
fn thread_vs_process_identity() {
    let trace = generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(2025)
    });
    let oracle = Oracle::new(TimeWindows::paper_default());
    for policy in PolicyConfig::paper_set() {
        let batch = packing_experiment(&trace, &oracle, policy, 0.7);
        for shards in [1usize, 2, 4] {
            let threaded = serve_trace_sharded(&trace, &oracle, policy, 0.7, shards);
            let mut controller = process_controller(&trace, &oracle, policy, 0.7, shards);
            let processed = controller.run(RequestSource::replaying(&trace));
            assert_eq!(
                processed, threaded,
                "{shards} shards {}: process == thread",
                policy.label
            );
            assert_eq!(
                processed.accepted, batch.accepted,
                "{shards} shards {}: anchors to batch",
                policy.label
            );
            assert_eq!(
                controller.worker_restarts(),
                0,
                "clean replay never recovers"
            );
        }
    }
}

/// SIGKILL a live worker between sessions: checkpoint recovery respawns it
/// with its exact exported state, the stream finishes bit-identically to
/// the uninterrupted replay, and the restart is visible in the merged
/// stats report.
fn sigkill_recovery_is_exact() {
    let trace = generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(911)
    });
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let shards = 2usize;
    let expected = serve_trace_sharded(&trace, &oracle, coach, 0.7, shards);

    let requests: Vec<Request> = RequestSource::replaying(&trace).collect();
    let split = requests.len() / 2;
    let mut controller = process_controller(&trace, &oracle, coach, 0.7, shards);
    controller.handle_batch(&requests[..split]);

    // Murder shard 0's worker outright — no chance to flush or exit.
    let pid = controller.worker_pid(0).expect("process pool is live");
    let status = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("send SIGKILL");
    assert!(status.success(), "kill -9 {pid}");
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Finish the stream, asking for a merged report on the way out.
    let mut tail: Vec<Request> = requests[split..].to_vec();
    tail.push(Request::Stats { now: trace.horizon });
    let responses = controller.handle_batch(&tail);
    let Some(Response::Stats(report)) = responses.last() else {
        panic!("trailing stats request answered");
    };
    assert!(
        report.worker_restarts >= 1,
        "merged report surfaces the recovery (got {})",
        report.worker_restarts
    );
    assert!(controller.worker_restarts() >= 1);
    assert_ne!(
        controller.worker_pid(0),
        Some(pid),
        "recovery respawned a new child"
    );

    let result = controller.finalize();
    assert_eq!(result, expected, "recovery is decision-exact");
}

/// Drain/resume under the process backend: snapshots exported by live
/// children restore into a fresh process-backed deployment (seeding the
/// children it spawns), and the finished stream matches the uninterrupted
/// thread replay.
fn process_drain_resume_roundtrip() {
    let trace = generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(606)
    });
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let shards = 2usize;
    let table = record_table(&trace);
    let expected = serve_trace_sharded(&trace, &oracle, coach, 0.7, shards);

    let requests: Vec<Request> = RequestSource::replaying(&trace).collect();
    let split = requests.len() / 2;
    let mut first = process_controller(&trace, &oracle, coach, 0.7, shards);
    first.handle_batch(&requests[..split]);
    let snapshots: Vec<Snapshot> = (0..first.shard_count())
        .map(|shard| first.drain_shard(shard))
        .collect();
    drop(first);

    let mut second = process_controller(&trace, &oracle, coach, 0.7, shards);
    for (shard, snapshot) in snapshots.iter().enumerate() {
        second
            .resume_shard(shard, snapshot, |vm| table.get(&vm).copied())
            .expect("exported snapshot restores");
    }
    second.handle_batch(&requests[split..]);
    assert_eq!(second.finalize(), expected, "process drain/resume is exact");
}

fn run(name: &str, test: fn(), failures: &mut u32) {
    // One child may die mid-`recv` when its half of a killed pipe closes;
    // catch_unwind keeps the runner going and reports per-test.
    match std::panic::catch_unwind(test) {
        Ok(()) => println!("test {name} ... ok"),
        Err(_) => {
            println!("test {name} ... FAILED");
            *failures += 1;
        }
    }
}

fn main() {
    // Children re-exec this binary: route them into the worker loop before
    // anything else (never returns for a worker).
    coach_serve::maybe_run_shard_worker();

    let mut failures = 0u32;
    run(
        "thread_vs_process_identity",
        thread_vs_process_identity,
        &mut failures,
    );
    run(
        "sigkill_recovery_is_exact",
        sigkill_recovery_is_exact,
        &mut failures,
    );
    run(
        "process_drain_resume_roundtrip",
        process_drain_resume_roundtrip,
        &mut failures,
    );
    if failures > 0 {
        println!("{failures} process-backend test(s) FAILED");
        std::process::exit(1);
    }
    println!("process-backend tests: all ok");
}

//! Golden pin for the snapshot frame format.
//!
//! A committed snapshot of a deterministic mid-stream controller must keep
//! encoding to the identical bytes — and restoring from the committed
//! bytes must keep producing the identical controller. If either drifts,
//! the snapshot wire format changed and [`coach_wire::VERSION`] needs a
//! bump, not a silent re-interpretation of deployed checkpoints.
//! Regenerate deliberately with
//! `COACH_WIRE_BLESS=1 cargo test -p coach-serve --test wire_golden`.

use coach_serve::{Controller, Request, RequestSource, ServeConfig, Snapshot};
use coach_sim::{Oracle, PolicyConfig};
use coach_trace::{generate, TraceConfig};
use coach_types::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn load_or_bless(name: &str, expected: &[u8]) -> Vec<u8> {
    let path = fixture_path(name);
    if std::env::var_os("COACH_WIRE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, expected).unwrap();
    }
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing golden fixture {name}: {e}"))
}

/// The reference controller: a fixed trace, halted halfway through its
/// stream, with latency sampling off (`latency_stride: 0`) — wall-clock
/// reads are the only nondeterminism in a snapshot, so disabling them
/// makes the frame a pure function of the trace.
fn golden_snapshot() -> (coach_trace::Trace, Snapshot) {
    let trace = generate(&TraceConfig::small(23));
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let config = ServeConfig {
        latency_stride: 0,
        ..ServeConfig::replaying(coach, 0.6, trace.horizon)
    };
    let mut controller = Controller::new(&trace.clusters, &oracle, config);
    let requests: Vec<Request> = RequestSource::replaying(&trace).collect();
    for request in &requests[..requests.len() / 2] {
        controller.handle(*request);
    }
    let snapshot = controller.snapshot();
    (trace, snapshot)
}

#[test]
fn golden_snapshot_bytes_are_pinned() {
    let (_trace, snapshot) = golden_snapshot();
    let fixture = load_or_bless("snapshot_v1.bin", snapshot.bytes());
    assert_eq!(
        snapshot.bytes(),
        &fixture[..],
        "snapshot encoding drifted from the committed v1 fixture — \
         this is a wire format change and needs a VERSION bump"
    );
}

#[test]
fn golden_snapshot_restores_and_resumes() {
    let (trace, live) = golden_snapshot();
    let fixture = load_or_bless("snapshot_v1.bin", live.bytes());
    let committed = Snapshot::from_bytes(fixture);

    // The committed bytes restore, re-snapshot to themselves, and finish
    // the stream to the same result as the freshly taken snapshot.
    let oracle = Oracle::new(TimeWindows::paper_default());
    let table: HashMap<VmId, &coach_trace::VmRecord> =
        trace.vms.iter().map(|rec| (rec.id, rec)).collect();
    let mut from_fixture = Controller::restore(&oracle, &committed, |vm| table.get(&vm).copied())
        .expect("committed snapshot restores");
    assert_eq!(from_fixture.snapshot(), committed);

    let mut from_live = Controller::restore(&oracle, &live, |vm| table.get(&vm).copied())
        .expect("fresh snapshot restores");
    let requests: Vec<Request> = RequestSource::replaying(&trace).collect();
    for request in &requests[requests.len() / 2..] {
        from_fixture.handle(*request);
        from_live.handle(*request);
    }
    assert_eq!(from_fixture.finalize(), from_live.finalize());
}

//! The controller's wire vocabulary: requests in, responses and stats out.

use coach_sched::PlacementOutcome;
use coach_sim::PackingResult;
use coach_trace::VmRecord;
use coach_types::prelude::*;

/// One unit of work for the [`Controller`](crate::Controller).
///
/// Requests must be fed in non-decreasing time order (the order a real
/// control plane receives them); the controller's departure heap supplies
/// every event *between* requests, so the caller never pre-sorts a batch.
#[derive(Debug, Clone, Copy)]
pub enum Request<'a> {
    /// A VM allocation request. The controller predicts its per-window
    /// demand, attempts placement, and (on success) schedules its departure
    /// from the record's deallocation time.
    Arrive(&'a VmRecord),
    /// An explicit early deallocation (ahead of the scheduled departure).
    Depart {
        /// The VM to deallocate.
        vm: VmId,
        /// Request time.
        now: Timestamp,
    },
    /// Advance the clock: retire due departures and let the violation
    /// accountant sample up to (but excluding) `now`.
    Tick {
        /// The new current time.
        now: Timestamp,
    },
    /// Measure spare capacity by probe-filling every cluster (the Fig 20a
    /// "additional sellable capacity" measurement).
    Probe {
        /// Measurement time: state reflects every event strictly before it.
        now: Timestamp,
    },
    /// Snapshot the controller's counters. Like [`Request::Tick`], the
    /// query advances the clock to `now` first (due departures retire, the
    /// accountant samples up to but excluding `now`), so the report is
    /// consistent with that time.
    Stats {
        /// Query time.
        now: Timestamp,
    },
}

impl Request<'_> {
    /// The simulated time this request is for.
    pub fn time(&self) -> Timestamp {
        match self {
            Request::Arrive(vm) => vm.arrival,
            Request::Depart { now, .. }
            | Request::Tick { now }
            | Request::Probe { now }
            | Request::Stats { now } => *now,
        }
    }

    /// Whether a sharded deployment must deliver this request to every
    /// shard (an ordering token on each worker lane) rather than route it
    /// to one. Arrivals route by cluster; everything else touches — or may
    /// touch — every shard.
    pub fn is_broadcast(&self) -> bool {
        !matches!(self, Request::Arrive(_))
    }
}

/// An *owning* request: the streaming counterpart of [`Request`].
///
/// [`Request`] borrows its arrival record from a materialized slice, which
/// pins the whole trace in memory for the stream's lifetime. A
/// `StreamRequest` owns its record instead (a [`VmRecord`] is a flat value
/// — cloning is a memcpy, no heap graph), so request streams can be derived
/// from bounded-memory generators ([`coach_trace::StreamingTrace`]) or
/// synthesized by scenario combinators ([`crate::scenario`]) without any
/// backing storage. The sharded dispatcher moves owned records into routed
/// segments; the controller copies what it keeps, so nothing outlives the
/// segment.
///
/// Broadcast variants are identical to [`Request`]'s; use
/// [`StreamRequest::as_request`] to view any variant as a borrowed request.
// Arrive dwarfs the broadcast variants, but boxing it would put a heap
// allocation on every record in the streaming hot path — the whole point
// of the flat by-value record is that moving one is a memcpy. Streams are
// overwhelmingly Arrive anyway, so the broadcast variants' padding is
// noise.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum StreamRequest {
    /// A VM allocation request carrying its record by value.
    Arrive(VmRecord),
    /// An explicit early deallocation (ahead of the scheduled departure).
    Depart {
        /// The VM to deallocate.
        vm: VmId,
        /// Request time.
        now: Timestamp,
    },
    /// Advance the clock (see [`Request::Tick`]).
    Tick {
        /// The new current time.
        now: Timestamp,
    },
    /// Measure spare capacity (see [`Request::Probe`]).
    Probe {
        /// Measurement time.
        now: Timestamp,
    },
    /// Snapshot the controller's counters (see [`Request::Stats`]).
    Stats {
        /// Query time.
        now: Timestamp,
    },
}

impl StreamRequest {
    /// The simulated time this request is for.
    pub fn time(&self) -> Timestamp {
        match self {
            StreamRequest::Arrive(vm) => vm.arrival,
            StreamRequest::Depart { now, .. }
            | StreamRequest::Tick { now }
            | StreamRequest::Probe { now }
            | StreamRequest::Stats { now } => *now,
        }
    }

    /// Whether a sharded deployment must deliver this request to every
    /// shard (see [`Request::is_broadcast`]).
    pub fn is_broadcast(&self) -> bool {
        !matches!(self, StreamRequest::Arrive(_))
    }

    /// View as a borrowed [`Request`] (e.g. to feed a single-shard
    /// [`Controller::handle`](crate::Controller::handle)).
    pub fn as_request(&self) -> Request<'_> {
        match self {
            StreamRequest::Arrive(vm) => Request::Arrive(vm),
            StreamRequest::Depart { vm, now } => Request::Depart { vm: *vm, now: *now },
            StreamRequest::Tick { now } => Request::Tick { now: *now },
            StreamRequest::Probe { now } => Request::Probe { now: *now },
            StreamRequest::Stats { now } => Request::Stats { now: *now },
        }
    }

    /// Lift a borrowed [`Request`] into an owning one (arrival records are
    /// cloned).
    pub fn from_request(req: Request<'_>) -> StreamRequest {
        match req {
            Request::Arrive(vm) => StreamRequest::Arrive(vm.clone()),
            Request::Depart { vm, now } => StreamRequest::Depart { vm, now },
            Request::Tick { now } => StreamRequest::Tick { now },
            Request::Probe { now } => StreamRequest::Probe { now },
            Request::Stats { now } => StreamRequest::Stats { now },
        }
    }
}

/// What the controller answered.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Outcome of an arrival.
    Admission {
        /// The VM that asked.
        vm: VmId,
        /// Placed (where) or rejected.
        outcome: PlacementOutcome,
    },
    /// Outcome of an explicit departure.
    Departed {
        /// The VM.
        vm: VmId,
        /// Whether it was resident.
        found: bool,
    },
    /// A clock tick was absorbed.
    Ticked,
    /// Probe capacity measured: additional typical VMs that fit right now.
    ProbeCapacity(u64),
    /// A stats snapshot.
    Stats(StatsReport),
}

/// O(1) counters snapshotted by a [`Request::Stats`] query.
///
/// Everything a Fig 20-style consumer needs — occupancy, probe-capacity
/// counters, violation counters, admission latency — without touching
/// scheduler internals: occupancy is the controller's incrementally
/// maintained total (each [`coach_sched::ClusterScheduler::servers_in_use`]
/// is itself O(1)), and the violation counters come from the incremental
/// accountant, not a rescan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    /// Query time.
    pub now: Timestamp,
    /// Arrivals admitted.
    pub accepted: u64,
    /// Arrivals rejected.
    pub rejected: u64,
    /// Departures processed (scheduled or explicit).
    pub departed: u64,
    /// VMs currently resident.
    pub resident_vms: usize,
    /// Servers currently hosting at least one VM (O(1), incremental).
    pub servers_in_use: usize,
    /// Peak of `servers_in_use` over the event history.
    pub peak_servers_in_use: usize,
    /// Accepted capacity in core-hours.
    pub accepted_core_hours: f64,
    /// Accepted capacity in GB-hours.
    pub accepted_gb_hours: f64,
    /// Probe measurements taken.
    pub probe_measurements: u64,
    /// Total probe VMs placed across all measurements.
    pub probe_capacity_total: u64,
    /// Violation samples accumulated by the accountant (< `now`).
    pub violation_samples: u64,
    /// Samples with CPU contention.
    pub cpu_violations: u64,
    /// Samples with memory contention.
    pub mem_violations: u64,
    /// Clock ticks absorbed.
    pub ticks: u64,
    /// Median admission latency, microseconds (log-bucket resolution).
    pub admission_p50_us: f64,
    /// P99 admission latency, microseconds (log-bucket resolution).
    pub admission_p99_us: f64,
    /// Items sent over the sharded runtime's worker lanes (commands +
    /// replies), cumulative across sessions. Zero for a single-shard
    /// controller, whose inline pool has no lanes.
    pub lane_sends: u64,
    /// `send_batch` handoffs on those lanes — `lane_sends /
    /// lane_batched_sends` is the mean burst the dispatcher delivered.
    pub lane_batched_sends: u64,
    /// Condvar wakeups the lanes actually issued: how often a handoff
    /// found its peer parked instead of running
    /// ([`coach_types::runtime::LaneStats::wakeups`]).
    pub lane_wakeups: u64,
    /// Producer stalls on a full command ring (backpressure events;
    /// always zero on the unbounded mutex reference lane).
    pub lane_full_stalls: u64,
    /// Process-backed shard workers respawned after an unexpected death
    /// (checkpoint + journal replay recoveries —
    /// [`coach_types::runtime::ProcessPool::restarts`]). Always zero for
    /// thread-backed workers. Telemetry only: recovery is exact, so this
    /// never feeds [`StatsReport::to_packing_result`].
    pub worker_restarts: u64,
}

impl StatsReport {
    /// Mean probe capacity per measurement (Fig 20a's y-axis input).
    pub fn probe_capacity(&self) -> f64 {
        if self.probe_measurements == 0 {
            0.0
        } else {
            self.probe_capacity_total as f64 / self.probe_measurements as f64
        }
    }

    /// Fraction of violation samples with CPU contention.
    pub fn cpu_violation_rate(&self) -> f64 {
        if self.violation_samples == 0 {
            0.0
        } else {
            self.cpu_violations as f64 / self.violation_samples as f64
        }
    }

    /// Fraction of violation samples with memory contention.
    pub fn mem_violation_rate(&self) -> f64 {
        if self.violation_samples == 0 {
            0.0
        } else {
            self.mem_violations as f64 / self.violation_samples as f64
        }
    }

    /// Assemble the batch experiment's result struct from online counters —
    /// how `fig20`-style consumers plug the serving path into existing
    /// reporting.
    pub fn to_packing_result(&self, label: &'static str) -> PackingResult {
        PackingResult {
            label,
            accepted: self.accepted,
            rejected: self.rejected,
            accepted_core_hours: self.accepted_core_hours,
            accepted_gb_hours: self.accepted_gb_hours,
            probe_capacity: self.probe_capacity(),
            peak_servers_in_use: self.peak_servers_in_use,
            cpu_violation_rate: self.cpu_violation_rate(),
            mem_violation_rate: self.mem_violation_rate(),
        }
    }
}

/// A log-scale (power-of-two nanosecond buckets) latency histogram: O(1)
/// record, O(1) memory, mergeable across shards.
///
/// Since PR 9 this is the shared [`coach_telemetry::Histogram`] — the
/// serving layer's former private implementation moved there verbatim
/// (same bucketing, same geometric-midpoint quantiles), so admission
/// latency and every other duration metric share one mergeable shape.
/// The alias keeps existing `coach_serve::LatencyHistogram` users
/// compiling unchanged.
pub use coach_telemetry::Histogram as LatencyHistogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_log_bucket_accurate() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_ns(1_000); // bucket [512, 1024): ~724 ns midpoint
        }
        for _ in 0..10 {
            h.record_ns(100_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.50);
        assert!((512.0..2048.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 > 60_000.0, "p99 {p99}");
        assert!((h.mean_ns() - (90.0 * 1_000.0 + 10.0 * 100_000.0) / 100.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_merge_and_edges() {
        let mut a = LatencyHistogram::new();
        assert_eq!(a.quantile_ns(0.5), 0.0);
        a.record_ns(0);
        assert_eq!(a.quantile_ns(0.5), 0.0);
        let mut b = LatencyHistogram::new();
        b.record_ns(u64::MAX); // lands in the top bucket, no overflow
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile_ns(1.0) > 0.0);
    }

    #[test]
    fn stats_report_rates() {
        let s = StatsReport {
            probe_measurements: 4,
            probe_capacity_total: 100,
            violation_samples: 200,
            cpu_violations: 20,
            mem_violations: 2,
            ..StatsReport::default()
        };
        assert_eq!(s.probe_capacity(), 25.0);
        assert_eq!(s.cpu_violation_rate(), 0.1);
        assert_eq!(s.mem_violation_rate(), 0.01);
        let pr = s.to_packing_result("Coach");
        assert_eq!(pr.probe_capacity, 25.0);
        assert_eq!(StatsReport::default().probe_capacity(), 0.0);
    }
}

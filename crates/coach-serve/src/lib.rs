//! **coach-serve** — the online, sharded cluster-controller subsystem.
//!
//! Coach is deployed as a *control plane*: allocation requests arrive
//! continuously and the scheduler must admit, place, and account for them
//! online. This crate turns the repository's batch replay
//! ([`coach_sim::packing_experiment`], which pre-sorts a whole trace into
//! one event vector) into a long-running, event-driven engine that
//! processes an unbounded [`Request`] stream with bounded per-event work:
//!
//! * [`Controller`] — the single-shard event loop. Arrivals are predicted
//!   (via any [`coach_sim::Predictor`]) and placed through the indexed
//!   [`coach_sched::ClusterScheduler`]; departures live in a binary
//!   min-heap keyed by the batch replay's event-sort order, so each event
//!   costs O(log resident). Decisions are **bit-identical** to the batch
//!   replay on the same workload. [`Controller::handle_arrivals`] admits a
//!   whole arrival segment through one
//!   [`coach_sim::Predictor::predict_batch`] call — the cold-path batched
//!   derivation the sharded dispatcher uses per segment.
//! * [`ResidentStore`] — the arena-backed struct-of-arrays record of every
//!   hosted VM. Scheduled departures carry generational [`Handle`]s, so a
//!   stale (already-departed) heap entry cancels with one integer compare
//!   instead of a hash probe; aggregate gauges fold contiguous columns.
//! * [`ViolationAccountant`] — per-server Formula 3/4 running sums and
//!   CPU/memory violation counters maintained at event granularity,
//!   replacing the batch experiment's post-replay sweep (the large-scale
//!   Fig 20 bottleneck) while producing the same counts to the bit.
//! * [`ShardedController`] — one controller per cluster group with
//!   deterministic request routing, run on **persistent worker threads**
//!   ([`coach_types::with_shard_workers`]): each shard's controller lives
//!   in a long-lived worker fed over SPSC lanes with pipelined request
//!   segments and broadcast/barrier tokens, so multi-core scale-out never
//!   pays a per-segment fork-join; the global occupancy peak is
//!   reconstructed exactly by merging per-shard delta timelines.
//! * **The distributed control plane** — shard workers can run as
//!   supervised child *processes* instead of threads
//!   ([`ServeConfig::backend`] = [`coach_types::WorkerBackend::Process`];
//!   binaries opt in by calling [`maybe_run_shard_worker`] first thing in
//!   `main`). The parent speaks `coach-wire` frames over pipes, keeps a
//!   per-session checkpoint plus a command journal per child, and
//!   recovers crashed workers (SIGKILL included) decision-exactly; the
//!   [`wire`] module holds the protocol and the versioned [`Snapshot`]
//!   frame behind [`Controller::snapshot`] / [`Controller::restore`] and
//!   [`ShardedController::drain_shard`] /
//!   [`ShardedController::resume_shard`] for drain-upgrade-resume live
//!   servicing.
//! * [`RequestSource`] — derives the request stream lazily from
//!   arrival-sorted [`coach_trace::VmRecord`]s: no event vector, no sort,
//!   no utilization-series materialization.
//! * [`LatencyHistogram`] / [`StatsReport`] — O(1) admission-latency and
//!   occupancy/probe/violation telemetry, queryable mid-stream through
//!   [`Request::Stats`] without touching scheduler internals.
//!
//! # Example
//!
//! ```
//! use coach_serve::{serve_trace, Controller, Request, RequestSource, Response};
//! use coach_sim::{packing_experiment, Oracle, PolicyConfig};
//! use coach_trace::{generate, TraceConfig};
//! use coach_types::TimeWindows;
//!
//! let trace = generate(&TraceConfig::small(17));
//! let oracle = Oracle::new(TimeWindows::paper_default());
//! let coach = PolicyConfig::paper_set().remove(2);
//!
//! // Online replay: stream requests through the controller...
//! let online = serve_trace(&trace, &oracle, coach, 0.8);
//!
//! // ...and the decisions match the pre-sorted batch replay exactly.
//! let batch = packing_experiment(&trace, &Oracle::new(TimeWindows::paper_default()), coach, 0.8);
//! assert_eq!(online, batch);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod controller;
pub mod request;
pub mod scenario;
pub mod shard;
pub mod source;
pub mod store;
pub mod telemetry;
pub mod wire;

pub use account::ViolationAccountant;
pub use coach_telemetry::TelemetryConfig;
pub use controller::{serve_trace, Controller, ServeConfig};
pub use request::{LatencyHistogram, Request, Response, StatsReport, StreamRequest};
pub use shard::{maybe_run_shard_worker, serve_trace_sharded, ShardedController, SHARD_WORKER_ENV};
pub use source::{RequestSource, StreamSource};
pub use store::{Handle, Resident, ResidentStore};
pub use wire::{PredictorSpec, Snapshot};

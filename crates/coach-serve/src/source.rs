//! Lazy request-stream derivation from trace records.

use crate::request::Request;
use coach_sim::paper_probe_times;
use coach_trace::{Trace, VmRecord};
use coach_types::prelude::*;

/// An iterator deriving a [`Request`] stream lazily from arrival-sorted
/// [`VmRecord`]s — no event vector, no sort, no series materialization.
/// Arrivals are borrowed straight from the slice; departures are *not*
/// emitted at all (the controller's heap schedules them); probe requests
/// are interleaved at the first arrival at-or-after each probe time, which
/// the controller's strictly-before drain turns into exactly the batch
/// replay's probe semantics.
#[derive(Debug, Clone)]
pub struct RequestSource<'a> {
    vms: &'a [VmRecord],
    idx: usize,
    probes: Vec<Timestamp>,
    probe_idx: usize,
    stats_every: Option<SimDuration>,
    next_stats: Timestamp,
}

impl<'a> RequestSource<'a> {
    /// A stream over arrival-sorted records with explicit probe times
    /// (which must be sorted ascending).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `vms` is not sorted by arrival or
    /// `probes` is not sorted.
    pub fn new(vms: &'a [VmRecord], probes: Vec<Timestamp>) -> Self {
        debug_assert!(
            vms.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "records must be sorted by arrival"
        );
        debug_assert!(
            probes.windows(2).all(|w| w[0] <= w[1]),
            "probe times must be sorted"
        );
        RequestSource {
            vms,
            idx: 0,
            probes,
            probe_idx: 0,
            stats_every: None,
            next_stats: Timestamp::ZERO,
        }
    }

    /// The stream replaying a trace with the paper's probe schedule — the
    /// online equivalent of what [`coach_sim::packing_experiment`] builds
    /// its sorted event vector for.
    pub fn replaying(trace: &'a Trace) -> Self {
        RequestSource::new(&trace.vms, paper_probe_times(trace.horizon))
    }

    /// Also interleave a [`Request::Stats`] query every `every` of
    /// simulated time (the first at `every`), each emitted — like probes —
    /// just before the first arrival at-or-after its scheduled time. In a
    /// sharded deployment every such query is a broadcast barrier token,
    /// so a cadence here exercises (and telemeters) the worker runtime's
    /// merge path mid-stream. Queries stop with the arrival stream; they
    /// are *not* counted by [`Self::remaining`].
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_stats_every(mut self, every: SimDuration) -> Self {
        assert!(every.ticks() > 0, "stats cadence must be positive");
        self.stats_every = Some(every);
        self.next_stats = Timestamp::ZERO + every;
        self
    }

    /// Requests remaining (arrivals + probes; scheduled stats queries are
    /// open-ended and not counted).
    pub fn remaining(&self) -> usize {
        (self.vms.len() - self.idx) + (self.probes.len() - self.probe_idx)
    }
}

impl<'a> Iterator for RequestSource<'a> {
    type Item = Request<'a>;

    fn next(&mut self) -> Option<Request<'a>> {
        // The next arrival's time gates the scheduled events: a scheduled
        // probe is due when the next arrival is at-or-after it (or no
        // arrivals remain — probes drain, stats stop).
        let gate = self.vms.get(self.idx).map(|vm| vm.arrival);
        let probe_due = self.probe_idx < self.probes.len()
            && gate.is_none_or(|t| t >= self.probes[self.probe_idx]);
        let stats_due = self.stats_every.is_some() && gate.is_some_and(|t| t >= self.next_stats);
        if probe_due && (!stats_due || self.probes[self.probe_idx] <= self.next_stats) {
            let now = self.probes[self.probe_idx];
            self.probe_idx += 1;
            return Some(Request::Probe { now });
        }
        if stats_due {
            let now = self.next_stats;
            self.next_stats = now + self.stats_every.expect("stats cadence set");
            return Some(Request::Stats { now });
        }
        let vm = self.vms.get(self.idx)?;
        self.idx += 1;
        Some(Request::Arrive(vm))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (
            n,
            if self.stats_every.is_none() {
                Some(n)
            } else {
                None
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_trace::{generate, TraceConfig};

    #[test]
    fn interleaves_probes_at_crossings() {
        let trace = generate(&TraceConfig::small(11));
        let source = RequestSource::replaying(&trace);
        assert_eq!(source.remaining(), trace.vms.len() + 3);
        let reqs: Vec<Request> = source.collect();
        assert_eq!(reqs.len(), trace.vms.len() + 3);

        // Probes appear in schedule order, each before the first arrival
        // at-or-after its time.
        let probes = paper_probe_times(trace.horizon);
        let mut probe_iter = probes.iter();
        let mut last_arrival = Timestamp::ZERO;
        for req in &reqs {
            match req {
                Request::Probe { now } => {
                    assert_eq!(now, probe_iter.next().expect("within schedule"));
                    assert!(last_arrival <= *now, "probe emitted late");
                }
                Request::Arrive(vm) => {
                    assert!(vm.arrival >= last_arrival, "arrivals out of order");
                    last_arrival = vm.arrival;
                }
                other => panic!("unexpected request {other:?}"),
            }
        }
        assert!(probe_iter.next().is_none(), "all probes emitted");
    }

    #[test]
    fn stats_cadence_interleaves_in_time_order() {
        let trace = generate(&TraceConfig::small(13));
        let every = SimDuration::from_hours(24);
        let reqs: Vec<Request> = RequestSource::replaying(&trace)
            .with_stats_every(every)
            .collect();
        let mut stats_seen = 0u64;
        let mut expected_next = Timestamp::ZERO + every;
        let mut last_arrival = Timestamp::ZERO;
        for req in &reqs {
            match req {
                Request::Stats { now } => {
                    assert_eq!(*now, expected_next, "cadence in order");
                    assert!(last_arrival <= *now, "stats emitted late");
                    expected_next = *now + every;
                    stats_seen += 1;
                }
                Request::Arrive(vm) => last_arrival = vm.arrival,
                Request::Probe { .. } => {}
                other => panic!("unexpected request {other:?}"),
            }
        }
        assert!(stats_seen > 1, "cadence fired repeatedly");
        // The probe schedule is unaffected by the cadence.
        let probes = reqs
            .iter()
            .filter(|r| matches!(r, Request::Probe { .. }))
            .count();
        assert_eq!(probes, 3);
    }

    #[test]
    fn arrivals_are_borrowed_not_copied() {
        let trace = generate(&TraceConfig::small(12));
        let mut source = RequestSource::replaying(&trace);
        let first = loop {
            match source.next().expect("non-empty") {
                Request::Arrive(vm) => break vm,
                _ => continue,
            }
        };
        assert!(std::ptr::eq(first, &trace.vms[0]));
    }
}

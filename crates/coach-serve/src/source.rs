//! Lazy request-stream derivation from trace records.

use crate::request::Request;
use coach_sim::paper_probe_times;
use coach_trace::{Trace, VmRecord};
use coach_types::prelude::*;

/// An iterator deriving a [`Request`] stream lazily from arrival-sorted
/// [`VmRecord`]s — no event vector, no sort, no series materialization.
/// Arrivals are borrowed straight from the slice; departures are *not*
/// emitted at all (the controller's heap schedules them); probe requests
/// are interleaved at the first arrival at-or-after each probe time, which
/// the controller's strictly-before drain turns into exactly the batch
/// replay's probe semantics.
#[derive(Debug, Clone)]
pub struct RequestSource<'a> {
    vms: &'a [VmRecord],
    idx: usize,
    probes: Vec<Timestamp>,
    probe_idx: usize,
}

impl<'a> RequestSource<'a> {
    /// A stream over arrival-sorted records with explicit probe times
    /// (which must be sorted ascending).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `vms` is not sorted by arrival or
    /// `probes` is not sorted.
    pub fn new(vms: &'a [VmRecord], probes: Vec<Timestamp>) -> Self {
        debug_assert!(
            vms.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "records must be sorted by arrival"
        );
        debug_assert!(
            probes.windows(2).all(|w| w[0] <= w[1]),
            "probe times must be sorted"
        );
        RequestSource {
            vms,
            idx: 0,
            probes,
            probe_idx: 0,
        }
    }

    /// The stream replaying a trace with the paper's probe schedule — the
    /// online equivalent of what [`coach_sim::packing_experiment`] builds
    /// its sorted event vector for.
    pub fn replaying(trace: &'a Trace) -> Self {
        RequestSource::new(&trace.vms, paper_probe_times(trace.horizon))
    }

    /// Requests remaining (arrivals + probes).
    pub fn remaining(&self) -> usize {
        (self.vms.len() - self.idx) + (self.probes.len() - self.probe_idx)
    }
}

impl<'a> Iterator for RequestSource<'a> {
    type Item = Request<'a>;

    fn next(&mut self) -> Option<Request<'a>> {
        if self.probe_idx < self.probes.len() {
            let due = match self.vms.get(self.idx) {
                // Crossed: the next arrival is at or after the probe time.
                Some(vm) => vm.arrival >= self.probes[self.probe_idx],
                // Trailing: no arrivals left; drain the probe schedule.
                None => true,
            };
            if due {
                let now = self.probes[self.probe_idx];
                self.probe_idx += 1;
                return Some(Request::Probe { now });
            }
        }
        let vm = self.vms.get(self.idx)?;
        self.idx += 1;
        Some(Request::Arrive(vm))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_trace::{generate, TraceConfig};

    #[test]
    fn interleaves_probes_at_crossings() {
        let trace = generate(&TraceConfig::small(11));
        let source = RequestSource::replaying(&trace);
        assert_eq!(source.remaining(), trace.vms.len() + 3);
        let reqs: Vec<Request> = source.collect();
        assert_eq!(reqs.len(), trace.vms.len() + 3);

        // Probes appear in schedule order, each before the first arrival
        // at-or-after its time.
        let probes = paper_probe_times(trace.horizon);
        let mut probe_iter = probes.iter();
        let mut last_arrival = Timestamp::ZERO;
        for req in &reqs {
            match req {
                Request::Probe { now } => {
                    assert_eq!(now, probe_iter.next().expect("within schedule"));
                    assert!(last_arrival <= *now, "probe emitted late");
                }
                Request::Arrive(vm) => {
                    assert!(vm.arrival >= last_arrival, "arrivals out of order");
                    last_arrival = vm.arrival;
                }
                other => panic!("unexpected request {other:?}"),
            }
        }
        assert!(probe_iter.next().is_none(), "all probes emitted");
    }

    #[test]
    fn arrivals_are_borrowed_not_copied() {
        let trace = generate(&TraceConfig::small(12));
        let mut source = RequestSource::replaying(&trace);
        let first = loop {
            match source.next().expect("non-empty") {
                Request::Arrive(vm) => break vm,
                _ => continue,
            }
        };
        assert!(std::ptr::eq(first, &trace.vms[0]));
    }
}

//! Lazy request-stream derivation from trace records.
//!
//! Two sources share the probe/stats interleaving contract:
//!
//! * [`RequestSource`] borrows arrival records from a materialized slice —
//!   zero copies, but the whole trace must be resident.
//! * [`StreamSource`] pulls owned records from any
//!   `Iterator<Item = VmRecord>` (e.g.
//!   [`coach_trace::StreamingTrace::records`]), emitting owning
//!   [`StreamRequest`]s — bounded memory regardless of trace length, and
//!   the entry point for the [`crate::scenario`] combinators.

use crate::request::{Request, StreamRequest};
use coach_sim::paper_probe_times;
use coach_trace::{StreamingTrace, Trace, VmRecord};
use coach_types::prelude::*;

/// An iterator deriving a [`Request`] stream lazily from arrival-sorted
/// [`VmRecord`]s — no event vector, no sort, no series materialization.
/// Arrivals are borrowed straight from the slice; departures are *not*
/// emitted at all (the controller's heap schedules them); probe requests
/// are interleaved at the first arrival at-or-after each probe time, which
/// the controller's strictly-before drain turns into exactly the batch
/// replay's probe semantics.
#[derive(Debug, Clone)]
pub struct RequestSource<'a> {
    vms: &'a [VmRecord],
    idx: usize,
    probes: Vec<Timestamp>,
    probe_idx: usize,
    stats_every: Option<SimDuration>,
    next_stats: Timestamp,
}

impl<'a> RequestSource<'a> {
    /// A stream over arrival-sorted records with explicit probe times
    /// (which must be sorted ascending).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `vms` is not sorted by arrival or
    /// `probes` is not sorted.
    pub fn new(vms: &'a [VmRecord], probes: Vec<Timestamp>) -> Self {
        debug_assert!(
            vms.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "records must be sorted by arrival"
        );
        debug_assert!(
            probes.windows(2).all(|w| w[0] <= w[1]),
            "probe times must be sorted"
        );
        RequestSource {
            vms,
            idx: 0,
            probes,
            probe_idx: 0,
            stats_every: None,
            next_stats: Timestamp::ZERO,
        }
    }

    /// The stream replaying a trace with the paper's probe schedule — the
    /// online equivalent of what [`coach_sim::packing_experiment`] builds
    /// its sorted event vector for.
    pub fn replaying(trace: &'a Trace) -> Self {
        RequestSource::new(&trace.vms, paper_probe_times(trace.horizon))
    }

    /// Also interleave a [`Request::Stats`] query every `every` of
    /// simulated time (the first at `every`), each emitted — like probes —
    /// just before the first arrival at-or-after its scheduled time. In a
    /// sharded deployment every such query is a broadcast barrier token,
    /// so a cadence here exercises (and telemeters) the worker runtime's
    /// merge path mid-stream. Queries are *not* counted by
    /// [`Self::remaining`].
    ///
    /// # Cadence semantics at the end of the stream
    ///
    /// A query is *due* when the **next arrival's** time is at-or-after its
    /// scheduled time; arrivals gate the cadence, so queries stop with the
    /// arrival stream. Precisely:
    ///
    /// * a barrier scheduled at exactly the final arrival's time is
    ///   emitted, and it precedes that arrival (barrier at `t`, then the
    ///   arrival at `t`);
    /// * no trailing barrier follows the last arrival, even when the next
    ///   scheduled time lands before the trace horizon — callers that need
    ///   an end-of-stream report finalize the controller instead;
    /// * scheduled probes still take precedence over a stats barrier due at
    ///   the same gate when the probe time is at-or-before the barrier
    ///   time.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_stats_every(mut self, every: SimDuration) -> Self {
        assert!(every.ticks() > 0, "stats cadence must be positive");
        self.stats_every = Some(every);
        self.next_stats = Timestamp::ZERO + every;
        self
    }

    /// Requests remaining (arrivals + probes; scheduled stats queries are
    /// open-ended and not counted).
    pub fn remaining(&self) -> usize {
        (self.vms.len() - self.idx) + (self.probes.len() - self.probe_idx)
    }
}

impl<'a> Iterator for RequestSource<'a> {
    type Item = Request<'a>;

    fn next(&mut self) -> Option<Request<'a>> {
        // The next arrival's time gates the scheduled events: a scheduled
        // probe is due when the next arrival is at-or-after it (or no
        // arrivals remain — probes drain, stats stop).
        let gate = self.vms.get(self.idx).map(|vm| vm.arrival);
        let probe_due = self.probe_idx < self.probes.len()
            && gate.is_none_or(|t| t >= self.probes[self.probe_idx]);
        let stats_due = self.stats_every.is_some() && gate.is_some_and(|t| t >= self.next_stats);
        if probe_due && (!stats_due || self.probes[self.probe_idx] <= self.next_stats) {
            let now = self.probes[self.probe_idx];
            self.probe_idx += 1;
            return Some(Request::Probe { now });
        }
        if stats_due {
            let now = self.next_stats;
            self.next_stats = now + self.stats_every.expect("stats cadence set");
            return Some(Request::Stats { now });
        }
        let vm = self.vms.get(self.idx)?;
        self.idx += 1;
        Some(Request::Arrive(vm))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (
            n,
            if self.stats_every.is_none() {
                Some(n)
            } else {
                None
            },
        )
    }
}

/// The owning counterpart of [`RequestSource`]: derives a
/// [`StreamRequest`] stream from any arrival-ordered record iterator.
///
/// Probe and stats interleaving is identical to [`RequestSource`]
/// (including the end-of-stream cadence semantics documented on
/// [`RequestSource::with_stats_every`]); the next arrival is held in a
/// one-record peek buffer, so memory stays O(1) over the underlying
/// iterator. Feed the result to
/// [`ShardedController::run_stream`](crate::ShardedController::run_stream)
/// or adapt it through the [`crate::scenario`] combinators first.
#[derive(Debug, Clone)]
pub struct StreamSource<I: Iterator<Item = VmRecord>> {
    vms: std::iter::Peekable<I>,
    probes: Vec<Timestamp>,
    probe_idx: usize,
    stats_every: Option<SimDuration>,
    next_stats: Timestamp,
}

impl<I: Iterator<Item = VmRecord>> StreamSource<I> {
    /// A stream over arrival-ordered records with explicit probe times
    /// (which must be sorted ascending). Record order is the caller's
    /// contract — it cannot be checked up front on a lazy iterator.
    pub fn new(vms: I, probes: Vec<Timestamp>) -> Self {
        debug_assert!(
            probes.windows(2).all(|w| w[0] <= w[1]),
            "probe times must be sorted"
        );
        StreamSource {
            vms: vms.peekable(),
            probes,
            probe_idx: 0,
            stats_every: None,
            next_stats: Timestamp::ZERO,
        }
    }

    /// Interleave a stats cadence; semantics exactly as
    /// [`RequestSource::with_stats_every`].
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_stats_every(mut self, every: SimDuration) -> Self {
        assert!(every.ticks() > 0, "stats cadence must be positive");
        self.stats_every = Some(every);
        self.next_stats = Timestamp::ZERO + every;
        self
    }
}

impl StreamSource<coach_trace::StreamingRecords<'_>> {
    /// The stream replaying a [`StreamingTrace`] with the paper's probe
    /// schedule — the constant-memory equivalent of
    /// [`RequestSource::replaying`].
    pub fn streaming(trace: &StreamingTrace) -> StreamSource<coach_trace::StreamingRecords<'_>> {
        StreamSource::new(trace.records(), paper_probe_times(trace.horizon()))
    }
}

impl<I: Iterator<Item = VmRecord>> Iterator for StreamSource<I> {
    type Item = StreamRequest;

    fn next(&mut self) -> Option<StreamRequest> {
        // Same gating as `RequestSource::next`, against the peeked arrival.
        let gate = self.vms.peek().map(|vm| vm.arrival);
        let probe_due = self.probe_idx < self.probes.len()
            && gate.is_none_or(|t| t >= self.probes[self.probe_idx]);
        let stats_due = self.stats_every.is_some() && gate.is_some_and(|t| t >= self.next_stats);
        if probe_due && (!stats_due || self.probes[self.probe_idx] <= self.next_stats) {
            let now = self.probes[self.probe_idx];
            self.probe_idx += 1;
            return Some(StreamRequest::Probe { now });
        }
        if stats_due {
            let now = self.next_stats;
            self.next_stats = now + self.stats_every.expect("stats cadence set");
            return Some(StreamRequest::Stats { now });
        }
        self.vms.next().map(StreamRequest::Arrive)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.vms.size_hint();
        let probes = self.probes.len() - self.probe_idx;
        (
            lo + probes,
            if self.stats_every.is_none() {
                hi.map(|h| h + probes)
            } else {
                None
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_trace::{generate, TraceConfig};

    #[test]
    fn interleaves_probes_at_crossings() {
        let trace = generate(&TraceConfig::small(11));
        let source = RequestSource::replaying(&trace);
        assert_eq!(source.remaining(), trace.vms.len() + 3);
        let reqs: Vec<Request> = source.collect();
        assert_eq!(reqs.len(), trace.vms.len() + 3);

        // Probes appear in schedule order, each before the first arrival
        // at-or-after its time.
        let probes = paper_probe_times(trace.horizon);
        let mut probe_iter = probes.iter();
        let mut last_arrival = Timestamp::ZERO;
        for req in &reqs {
            match req {
                Request::Probe { now } => {
                    assert_eq!(now, probe_iter.next().expect("within schedule"));
                    assert!(last_arrival <= *now, "probe emitted late");
                }
                Request::Arrive(vm) => {
                    assert!(vm.arrival >= last_arrival, "arrivals out of order");
                    last_arrival = vm.arrival;
                }
                other => panic!("unexpected request {other:?}"),
            }
        }
        assert!(probe_iter.next().is_none(), "all probes emitted");
    }

    #[test]
    fn stats_cadence_interleaves_in_time_order() {
        let trace = generate(&TraceConfig::small(13));
        let every = SimDuration::from_hours(24);
        let reqs: Vec<Request> = RequestSource::replaying(&trace)
            .with_stats_every(every)
            .collect();
        let mut stats_seen = 0u64;
        let mut expected_next = Timestamp::ZERO + every;
        let mut last_arrival = Timestamp::ZERO;
        for req in &reqs {
            match req {
                Request::Stats { now } => {
                    assert_eq!(*now, expected_next, "cadence in order");
                    assert!(last_arrival <= *now, "stats emitted late");
                    expected_next = *now + every;
                    stats_seen += 1;
                }
                Request::Arrive(vm) => last_arrival = vm.arrival,
                Request::Probe { .. } => {}
                other => panic!("unexpected request {other:?}"),
            }
        }
        assert!(stats_seen > 1, "cadence fired repeatedly");
        // The probe schedule is unaffected by the cadence.
        let probes = reqs
            .iter()
            .filter(|r| matches!(r, Request::Probe { .. }))
            .count();
        assert_eq!(probes, 3);
    }

    /// A minimal arrival-only record at `t` (placement fields are dummies;
    /// only the times matter to the source's interleaving).
    fn record_at(id: u64, t: Timestamp) -> VmRecord {
        let trace = generate(&TraceConfig::small(1));
        let mut rec = trace.vms[0].clone();
        rec.id = VmId::new(id);
        rec.arrival = t;
        rec.departure = t + SimDuration::from_hours(1);
        rec
    }

    #[test]
    fn stats_barrier_exactly_at_final_arrival() {
        // Stream ends exactly on a stats barrier: last arrival at t = 2h
        // with a 1h cadence. The barrier due at 2h fires *before* the
        // final arrival; no trailing barrier follows it.
        let every = SimDuration::from_hours(1);
        let vms = vec![
            record_at(0, Timestamp::ZERO),
            record_at(1, Timestamp::ZERO + every + every),
        ];
        let reqs: Vec<Request> = RequestSource::new(&vms, Vec::new())
            .with_stats_every(every)
            .collect();
        let shape: Vec<String> = reqs
            .iter()
            .map(|r| match r {
                Request::Arrive(vm) => format!("arrive@{}", vm.arrival.ticks()),
                Request::Stats { now } => format!("stats@{}", now.ticks()),
                other => panic!("unexpected request {other:?}"),
            })
            .collect();
        let h = every.ticks();
        assert_eq!(
            shape,
            vec![
                "arrive@0".to_string(),
                format!("stats@{h}"),
                format!("stats@{}", 2 * h), // due at the final arrival: fires first
                format!("arrive@{}", 2 * h),
                // and nothing after the last arrival.
            ]
        );

        // The owning source agrees request-for-request.
        let streamed: Vec<StreamRequest> = StreamSource::new(vms.iter().cloned(), Vec::new())
            .with_stats_every(every)
            .collect();
        let borrowed: Vec<StreamRequest> =
            reqs.into_iter().map(StreamRequest::from_request).collect();
        assert_eq!(streamed, borrowed);
    }

    #[test]
    fn stream_source_matches_request_source() {
        let trace = generate(&TraceConfig::small(19));
        let every = SimDuration::from_hours(36);
        let borrowed: Vec<StreamRequest> = RequestSource::replaying(&trace)
            .with_stats_every(every)
            .map(StreamRequest::from_request)
            .collect();
        let owned: Vec<StreamRequest> =
            StreamSource::new(trace.vms.iter().cloned(), paper_probe_times(trace.horizon))
                .with_stats_every(every)
                .collect();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn arrivals_are_borrowed_not_copied() {
        let trace = generate(&TraceConfig::small(12));
        let mut source = RequestSource::replaying(&trace);
        let first = loop {
            match source.next().expect("non-empty") {
                Request::Arrive(vm) => break vm,
                _ => continue,
            }
        };
        assert!(std::ptr::eq(first, &trace.vms[0]));
    }
}

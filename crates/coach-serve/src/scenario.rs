//! The scenario catalog: composable combinators over owning request
//! streams.
//!
//! Each combinator is an iterator adapter from one
//! `Iterator<Item = StreamRequest>` to another, so scenarios chain like any
//! iterator pipeline and feed straight into
//! [`ShardedController::run_stream`](crate::ShardedController::run_stream):
//!
//! ```
//! use coach_serve::scenario::{stream_arrivals, Surge};
//! use coach_trace::{StreamingTrace, TraceConfig};
//! use coach_types::prelude::*;
//!
//! let config = TraceConfig::small(7);
//! let trace = StreamingTrace::new(&config);
//! let horizon = trace.horizon();
//! // Double every arrival in the second half of the horizon.
//! let surged = Surge::new(
//!     stream_arrivals(trace.records()),
//!     2,
//!     Timestamp::from_ticks(horizon.ticks() / 2),
//!     horizon,
//!     1 << 32,
//! );
//! assert!(surged.count() > trace.len());
//! ```
//!
//! Every combinator preserves the stream's time order, and each is pinned
//! by a differential test against a hand-materialized equivalent stream —
//! the small-scale references the CI scenario matrix replays at shard
//! counts {1, 4} to prove decision identity.

use crate::request::StreamRequest;
use coach_trace::{Cluster, VmRecord};
use coach_types::prelude::*;
use std::collections::VecDeque;

/// Lift a record iterator into an arrival-only request stream — the usual
/// head of a combinator chain (probe/stats interleaving, when wanted,
/// comes from [`StreamSource`](crate::StreamSource) instead).
pub fn stream_arrivals<I>(records: I) -> impl Iterator<Item = StreamRequest>
where
    I: Iterator<Item = VmRecord>,
{
    records.map(StreamRequest::Arrive)
}

/// Arrival surge: multiply every arrival inside a time window by `factor`.
///
/// Each in-window arrival is followed by `factor - 1` clones of its record
/// with remapped VM ids — same subscription, configuration, cluster, and
/// lifetime, so the surge scales the diurnal baseline shape itself rather
/// than injecting an unrelated synthetic load. Clones carry ids
/// `id_base + original_id * (factor - 1) + j` (`j` in
/// `0..factor - 1`); pick `id_base` above every id in the underlying
/// stream to keep ids unique.
#[derive(Debug)]
pub struct Surge<I> {
    inner: I,
    factor: u64,
    /// Surge window `[from, to)` over arrival times.
    from: Timestamp,
    to: Timestamp,
    id_base: u64,
    /// Clones of the arrival just emitted, drained before the next pull.
    pending: VecDeque<StreamRequest>,
}

impl<I: Iterator<Item = StreamRequest>> Surge<I> {
    /// Multiply arrivals in `[from, to)` by `factor` (≥ 1; 1 is the
    /// identity). Clone ids start at `id_base`.
    pub fn new(inner: I, factor: u64, from: Timestamp, to: Timestamp, id_base: u64) -> Self {
        assert!(factor >= 1, "surge factor must be at least 1");
        Surge {
            inner,
            factor,
            from,
            to,
            id_base,
            pending: VecDeque::new(),
        }
    }
}

impl<I: Iterator<Item = StreamRequest>> Iterator for Surge<I> {
    type Item = StreamRequest;

    fn next(&mut self) -> Option<StreamRequest> {
        if let Some(clone) = self.pending.pop_front() {
            return Some(clone);
        }
        let request = self.inner.next()?;
        if let StreamRequest::Arrive(rec) = &request {
            if rec.arrival >= self.from && rec.arrival < self.to {
                for j in 0..self.factor - 1 {
                    let mut dup = rec.clone();
                    dup.id = VmId::new(self.id_base + rec.id.raw() * (self.factor - 1) + j);
                    self.pending.push_back(StreamRequest::Arrive(dup));
                }
            }
        }
        Some(request)
    }
}

/// Cluster evacuation: at time `at`, every VM resident on `cluster`
/// departs, and all later arrivals destined for it are re-routed to
/// `target`.
///
/// The combinator tracks arrivals it has passed through for `cluster`; at
/// the first request timed at-or-after `at` (or at end of stream) it
/// injects one explicit [`StreamRequest::Depart`] per still-alive tracked
/// VM, in arrival order, before releasing the gating request. Arrivals for
/// `cluster` from then on have their record's cluster rewritten to
/// `target` — the re-routed demand lands on the target's scheduler exactly
/// as if the trace had been generated that way.
#[derive(Debug)]
pub struct Evacuate<I> {
    inner: I,
    cluster: ClusterId,
    at: Timestamp,
    target: ClusterId,
    /// Arrivals seen for `cluster`, with departure times, in stream order.
    tracked: Vec<(VmId, Timestamp)>,
    fired: bool,
    /// Injection queue: departs, then the request that triggered them.
    pending: VecDeque<StreamRequest>,
}

impl<I: Iterator<Item = StreamRequest>> Evacuate<I> {
    /// Evacuate `cluster` at `at`, re-routing later arrivals to `target`.
    pub fn new(inner: I, cluster: ClusterId, at: Timestamp, target: ClusterId) -> Self {
        assert_ne!(cluster, target, "evacuation target must differ");
        Evacuate {
            inner,
            cluster,
            at,
            target,
            tracked: Vec::new(),
            fired: false,
            pending: VecDeque::new(),
        }
    }

    /// Queue the evacuation storm: one depart per alive tracked VM.
    fn fire(&mut self) {
        self.fired = true;
        for &(vm, departure) in &self.tracked {
            if departure > self.at {
                self.pending
                    .push_back(StreamRequest::Depart { vm, now: self.at });
            }
        }
        self.tracked.clear();
    }
}

impl<I: Iterator<Item = StreamRequest>> Iterator for Evacuate<I> {
    type Item = StreamRequest;

    fn next(&mut self) -> Option<StreamRequest> {
        loop {
            if let Some(queued) = self.pending.pop_front() {
                return Some(queued);
            }
            let Some(mut request) = self.inner.next() else {
                if !self.fired {
                    // Stream ended before `at`: evacuate at end of stream.
                    self.fire();
                    continue;
                }
                return None;
            };
            if !self.fired && request.time() >= self.at {
                self.fire();
                self.pending.push_back(self.reroute(request));
                continue;
            }
            if let StreamRequest::Arrive(rec) = &request {
                if rec.cluster == self.cluster {
                    if self.fired {
                        request = self.reroute(request);
                    } else {
                        self.tracked.push((rec.id, rec.departure));
                    }
                }
            }
            return Some(request);
        }
    }
}

impl<I: Iterator<Item = StreamRequest>> Evacuate<I> {
    /// Rewrite a post-evacuation arrival for the drained cluster.
    fn reroute(&self, request: StreamRequest) -> StreamRequest {
        match request {
            StreamRequest::Arrive(mut rec) if rec.cluster == self.cluster => {
                rec.cluster = self.target;
                StreamRequest::Arrive(rec)
            }
            other => other,
        }
    }
}

/// Correlated-group failure: at time `at`, every alive VM of one
/// subscription fails and immediately re-arrives — a re-placement storm.
///
/// At the first request timed at-or-after `at` (or at end of stream) the
/// combinator injects, for each alive tracked member in arrival order, an
/// explicit depart at `at` followed — after *all* departs — by a re-arrival
/// clone: remapped id (`id_base + k` for the `k`-th storm member), arrival
/// `at`, original departure and configuration, same home cluster. The
/// scheduler must re-place the whole group at once against whatever else
/// is resident — the correlated-failure stress the batch replay cannot
/// express.
#[derive(Debug)]
pub struct GroupFailure<I> {
    inner: I,
    subscription: SubscriptionId,
    at: Timestamp,
    id_base: u64,
    /// Members seen, with their records kept for re-arrival cloning.
    tracked: Vec<VmRecord>,
    fired: bool,
    pending: VecDeque<StreamRequest>,
}

impl<I: Iterator<Item = StreamRequest>> GroupFailure<I> {
    /// Fail `subscription`'s alive VMs at `at`; re-arrival clones take ids
    /// from `id_base` up.
    pub fn new(inner: I, subscription: SubscriptionId, at: Timestamp, id_base: u64) -> Self {
        GroupFailure {
            inner,
            subscription,
            at,
            id_base,
            tracked: Vec::new(),
            fired: false,
            pending: VecDeque::new(),
        }
    }

    /// Queue the failure storm: all departs, then all re-arrivals.
    fn fire(&mut self) {
        self.fired = true;
        let members: Vec<VmRecord> = self
            .tracked
            .drain(..)
            .filter(|rec| rec.departure > self.at)
            .collect();
        for rec in &members {
            self.pending.push_back(StreamRequest::Depart {
                vm: rec.id,
                now: self.at,
            });
        }
        for (k, rec) in members.into_iter().enumerate() {
            let mut revived = rec;
            revived.id = VmId::new(self.id_base + k as u64);
            revived.arrival = self.at;
            self.pending.push_back(StreamRequest::Arrive(revived));
        }
    }
}

impl<I: Iterator<Item = StreamRequest>> Iterator for GroupFailure<I> {
    type Item = StreamRequest;

    fn next(&mut self) -> Option<StreamRequest> {
        loop {
            if let Some(queued) = self.pending.pop_front() {
                return Some(queued);
            }
            let Some(request) = self.inner.next() else {
                if !self.fired {
                    self.fire();
                    continue;
                }
                return None;
            };
            if !self.fired && request.time() >= self.at {
                self.fire();
                self.pending.push_back(request);
                continue;
            }
            if let StreamRequest::Arrive(rec) = &request {
                if !self.fired && rec.subscription == self.subscription {
                    self.tracked.push(rec.clone());
                }
            }
            return Some(request);
        }
    }
}

/// Heterogeneous server SKUs: rotate every cluster's hardware to the next
/// SKU in the standard catalog (gen4 → gen5 → memory-lean → memory-rich →
/// gen4).
///
/// This scenario changes the *deployment*, not the stream: serve the same
/// request sequence against the rotated clusters to measure how placement
/// and violation behavior shift when the fleet's SKU mix turns over.
/// Rotation is deterministic, so the streaming and materialized sides of a
/// differential test construct identical deployments.
pub fn sku_mix(clusters: &[Cluster]) -> Vec<Cluster> {
    let catalog = [
        HardwareConfig::general_purpose_gen4(),
        HardwareConfig::general_purpose_gen5(),
        HardwareConfig::memory_lean(),
        HardwareConfig::memory_rich(),
    ];
    clusters
        .iter()
        .map(|cluster| {
            let current = catalog
                .iter()
                .position(|hw| hw.capacity == cluster.hardware.capacity)
                .unwrap_or(0);
            Cluster {
                id: cluster.id,
                hardware: catalog[(current + 1) % catalog.len()].clone(),
                servers: cluster.servers.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_trace::{generate, TraceConfig};

    fn arrivals(trace: &coach_trace::Trace) -> impl Iterator<Item = StreamRequest> + '_ {
        stream_arrivals(trace.vms.iter().cloned())
    }

    #[test]
    fn surge_matches_hand_materialized() {
        let trace = generate(&TraceConfig::small(21));
        let mid = Timestamp::from_ticks(trace.horizon.ticks() / 2);
        let base = 1 << 32;
        let surged: Vec<StreamRequest> =
            Surge::new(arrivals(&trace), 3, mid, trace.horizon, base).collect();

        // Hand-materialized equivalent: every in-window arrival appears
        // three times (original + two remapped clones, adjacent).
        let mut expected = Vec::new();
        for rec in &trace.vms {
            expected.push(StreamRequest::Arrive(rec.clone()));
            if rec.arrival >= mid && rec.arrival < trace.horizon {
                for j in 0..2u64 {
                    let mut dup = rec.clone();
                    dup.id = VmId::new(base + rec.id.raw() * 2 + j);
                    expected.push(StreamRequest::Arrive(dup.clone()));
                }
            }
        }
        assert_eq!(surged, expected);
        assert!(surged.len() > trace.vms.len(), "window was non-empty");
    }

    #[test]
    fn surge_factor_one_is_identity() {
        let trace = generate(&TraceConfig::small(23));
        let out: Vec<StreamRequest> =
            Surge::new(arrivals(&trace), 1, Timestamp::ZERO, trace.horizon, 0).collect();
        let plain: Vec<StreamRequest> = arrivals(&trace).collect();
        assert_eq!(out, plain);
    }

    #[test]
    fn evacuation_departs_alive_vms_and_reroutes() {
        let trace = generate(&TraceConfig::small(25));
        let evac_cluster = trace.clusters[0].id;
        let target = trace.clusters[1].id;
        let at = Timestamp::from_ticks(trace.horizon.ticks() / 2);
        let out: Vec<StreamRequest> =
            Evacuate::new(arrivals(&trace), evac_cluster, at, target).collect();

        // Hand-materialized equivalent.
        let mut expected = Vec::new();
        let mut alive: Vec<(VmId, Timestamp)> = Vec::new();
        let mut fired = false;
        for rec in &trace.vms {
            if !fired && rec.arrival >= at {
                for &(vm, dep) in &alive {
                    if dep > at {
                        expected.push(StreamRequest::Depart { vm, now: at });
                    }
                }
                fired = true;
            }
            let mut rec = rec.clone();
            if rec.cluster == evac_cluster {
                if fired {
                    rec.cluster = target;
                } else {
                    alive.push((rec.id, rec.departure));
                }
            }
            expected.push(StreamRequest::Arrive(rec));
        }
        if !fired {
            for &(vm, dep) in &alive {
                if dep > at {
                    expected.push(StreamRequest::Depart { vm, now: at });
                }
            }
        }
        assert_eq!(out, expected);
        // The storm actually happened and re-routing actually rewrote.
        assert!(out
            .iter()
            .any(|r| matches!(r, StreamRequest::Depart { .. })));
        assert!(out
            .iter()
            .all(|r| !matches!(r, StreamRequest::Arrive(rec) if rec.cluster == evac_cluster && rec.arrival >= at)));
    }

    #[test]
    fn group_failure_matches_hand_materialized() {
        let trace = generate(&TraceConfig::small(27));
        // Pick the subscription with the most VMs for a non-trivial storm.
        let mut counts = std::collections::HashMap::new();
        for rec in &trace.vms {
            *counts.entry(rec.subscription).or_insert(0usize) += 1;
        }
        let (&sub, _) = counts.iter().max_by_key(|(_, n)| **n).unwrap();
        let at = Timestamp::from_ticks(trace.horizon.ticks() / 3);
        let base = 1 << 40;
        let out: Vec<StreamRequest> = GroupFailure::new(arrivals(&trace), sub, at, base).collect();

        let mut expected = Vec::new();
        let mut members: Vec<VmRecord> = Vec::new();
        let mut fired = false;
        for rec in &trace.vms {
            if !fired && rec.arrival >= at {
                let storm: Vec<VmRecord> = members
                    .iter()
                    .filter(|m| m.departure > at)
                    .cloned()
                    .collect();
                for m in &storm {
                    expected.push(StreamRequest::Depart { vm: m.id, now: at });
                }
                for (k, m) in storm.into_iter().enumerate() {
                    let mut revived = m;
                    revived.id = VmId::new(base + k as u64);
                    revived.arrival = at;
                    expected.push(StreamRequest::Arrive(revived));
                }
                fired = true;
            }
            if !fired && rec.subscription == sub {
                members.push(rec.clone());
            }
            expected.push(StreamRequest::Arrive(rec.clone()));
        }
        assert_eq!(out, expected);
        assert!(
            out.iter()
                .any(|r| matches!(r, StreamRequest::Depart { .. })),
            "the storm fired mid-stream"
        );
    }

    #[test]
    fn sku_mix_rotates_every_cluster() {
        let trace = generate(&TraceConfig::small(29));
        let rotated = sku_mix(&trace.clusters);
        assert_eq!(rotated.len(), trace.clusters.len());
        for (before, after) in trace.clusters.iter().zip(&rotated) {
            assert_eq!(before.id, after.id);
            assert_eq!(before.servers, after.servers);
            assert_ne!(
                before.hardware.capacity, after.hardware.capacity,
                "rotation changed the SKU"
            );
        }
        // Rotating four times returns to the original mix.
        let four = sku_mix(&sku_mix(&sku_mix(&rotated)));
        for (before, after) in trace.clusters.iter().zip(&four) {
            assert_eq!(before.hardware.capacity, after.hardware.capacity);
        }
    }
}

//! The sharded controller: one [`Controller`] per cluster group, each owned
//! by a **persistent worker thread** for the duration of a session.
//!
//! The PR 4 implementation forked one thread per shard per event *segment*
//! (every broadcast request was a fork-join boundary), so on multi-core
//! hardware the dispatch overhead was paid thousands of times per replay.
//! This version keeps the workers alive: at session start each shard's
//! controller moves into a long-lived thread
//! ([`coach_types::with_shard_workers_configured`]); the dispatcher then
//! streams commands to it over a bounded lock-free SPSC ring lane (or the
//! mutex reference lane, per [`ServeConfig::lanes`]) — routed-request
//! segments interleaved with broadcast/barrier tokens — and collects FIFO
//! replies. Workers chew on segment *k* while the dispatcher routes
//! segment *k + 1*; a barrier hands each shard its staged segment *and*
//! the token in one `send_batch` burst, so it costs at most one worker
//! wakeup per lane instead of a join + respawn. Worker threads are
//! optionally pinned by a [`PlacementPolicy`] over the detected CPU
//! topology ([`ServeConfig::placement`]), and every lane exports telemetry
//! (sends, batched handoffs, wakeups, full-ring stalls) through
//! [`StatsReport`] and [`ShardedController::lane_totals`].
//!
//! Ordering and exactness are unchanged from the fork-join version:
//!
//! * within a shard, channel FIFO preserves the stream order around every
//!   token, so each shard is decision-identical to a single-shard
//!   controller over its clusters;
//! * placements, rejections, probe counts, violation counters, and the
//!   occupancy peak (reconstructed by merging the shards' delta timelines
//!   in the global event order) are **bit-identical** to the single-shard
//!   controller — and therefore to the batch experiment;
//! * the accepted core/GB-hour sums are accumulated per shard and added at
//!   merge time, so they can differ from the single-shard sums in the last
//!   ulp (floating-point addition is not associative).

use crate::controller::{Controller, OccDelta, ServeConfig};
use crate::request::{LatencyHistogram, Request, Response, StatsReport, StreamRequest};
use crate::telemetry::{metric, ShardTelemetry, WireTelemetry};
use crate::wire::{PredictorSpec, Snapshot, TokenCmd, WireCmd, WireReply};
use coach_sim::{Oracle, PackingResult, PolicyConfig, Predictor};
use coach_telemetry::{
    LabelValue, Registry, RegistrySnapshot, SpanRing, SpanStart, TelemetryConfig,
};
use coach_trace::{Cluster, Trace, VmRecord};
use coach_types::prelude::*;
use coach_wire::{open_frame, seal_frame, WireError};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Environment variable that re-routes an embedding binary into the shard
/// worker loop (see [`maybe_run_shard_worker`]). The value is the shard
/// index, for diagnostics only — state arrives via `WireCmd::Init`.
pub const SHARD_WORKER_ENV: &str = "COACH_SHARD_WORKER";

/// Routed requests per channel command: large enough to amortize a channel
/// hop over many events (and to give [`Controller::handle_arrivals`] a
/// whole segment of cold derivations per predictor batch), small enough
/// that workers start while the dispatcher is still routing the rest of
/// the stream.
const SEGMENT: usize = 1024;

/// One command on a shard worker's SPSC lane.
enum ShardCmd<'a> {
    /// A segment of shard-routed requests with their stream positions; the
    /// worker answers each (a [`Self::handle_batch`] session collects the
    /// per-request responses).
    Batch(Vec<(usize, Request<'a>)>),
    /// A segment whose per-request responses nobody will read
    /// ([`Self::run`]): the worker processes and drops them, replying with
    /// a bare acknowledgement — reply-lane memory stays O(segments), not
    /// O(requests), over a million-VM stream.
    Run(Vec<Request<'a>>),
    /// [`Self::Run`]'s owning form ([`Self::run_stream`]): the records
    /// moved in from a streaming source, so nothing borrows the (possibly
    /// never-materialized) trace. The segment is dropped worker-side after
    /// admission — the controller copies what it keeps — so in-flight
    /// memory is O(segments in the ring), the lanes' backpressure bound.
    RunOwned(Vec<VmRecord>),
    /// A broadcast/barrier token: every worker receives it at the same
    /// stream position (channel FIFO orders it against that shard's
    /// segments — no stop-the-world join).
    Token(Request<'a>),
    /// Retire remaining departures, flush accounting, report the final
    /// result and snapshot.
    Finalize,
}

/// One reply per command, in command order.
enum ShardReply {
    Answers(Vec<(usize, Response)>),
    /// A [`ShardCmd::Run`] segment was processed.
    Ran,
    Token(Response),
    Stats(Box<ShardSnapshot>),
    Finalized(Box<(PackingResult, ShardSnapshot)>),
}

/// A shard's contribution to a merged stats report — the state the
/// dispatcher can no longer read directly once the controller lives inside
/// a worker thread (or a child process, where it additionally crosses the
/// pipe as part of a [`WireReply`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ShardSnapshot {
    pub(crate) stats: StatsReport,
    pub(crate) latency: LatencyHistogram,
    pub(crate) probe_counts: Vec<u64>,
    /// Occupancy deltas recorded since the previous snapshot (the
    /// dispatcher accumulates them per shard).
    pub(crate) timeline_delta: Vec<OccDelta>,
}

/// The worker loop body: apply one command to the owned controller.
fn worker_step<'a>(
    _shard: usize,
    controller: &mut Controller<'a>,
    cmd: ShardCmd<'a>,
) -> ShardReply {
    match cmd {
        ShardCmd::Batch(batch) => {
            let (idxs, recs): (Vec<usize>, Vec<&VmRecord>) = batch
                .into_iter()
                .map(|(idx, req)| (idx, arrival(req)))
                .unzip();
            let responses = controller.handle_arrivals(&recs);
            ShardReply::Answers(idxs.into_iter().zip(responses).collect())
        }
        ShardCmd::Run(batch) => {
            let recs: Vec<&VmRecord> = batch.into_iter().map(arrival).collect();
            controller.handle_arrivals(&recs);
            ShardReply::Ran
        }
        ShardCmd::RunOwned(batch) => {
            let recs: Vec<&VmRecord> = batch.iter().collect();
            controller.handle_arrivals(&recs);
            ShardReply::Ran
        }
        ShardCmd::Token(req) => match req {
            Request::Stats { .. } => {
                let Response::Stats(stats) = controller.handle(req) else {
                    unreachable!("stats request answered with stats");
                };
                ShardReply::Stats(Box::new(snapshot_of(controller, stats)))
            }
            _ => ShardReply::Token(controller.handle(req)),
        },
        ShardCmd::Finalize => {
            let result = controller.finalize();
            let stats = controller.stats(controller.config().horizon);
            ShardReply::Finalized(Box::new((result, snapshot_of(controller, stats))))
        }
    }
}

/// Routed segments carry only arrivals (broadcasts travel as tokens).
fn arrival<'a>(req: Request<'a>) -> &'a VmRecord {
    let Request::Arrive(rec) = req else {
        unreachable!("routed segments carry only arrivals")
    };
    rec
}

fn snapshot_of(controller: &mut Controller<'_>, stats: StatsReport) -> ShardSnapshot {
    ShardSnapshot {
        stats,
        latency: controller.latency().clone(),
        probe_counts: controller.probe_counts().to_vec(),
        timeline_delta: controller.take_timeline(),
    }
}

/// A cluster controller sharded by cluster group.
///
/// Clusters are assigned to shards round-robin in sorted-id order, so
/// routing is deterministic: an arrival for cluster *c* always lands on
/// the same shard, and two runs of the same stream produce identical
/// decisions. Processing happens inside worker *sessions*: each public
/// entry point ([`Self::handle_batch`], [`Self::run`], [`Self::finalize`])
/// opens one session, so the per-shard worker threads persist across every
/// segment and barrier of that call.
pub struct ShardedController<'a> {
    shards: Vec<Controller<'a>>,
    /// The shared prediction source — kept for restores and the process
    /// backend's `Init` frames.
    predictor: &'a dyn Predictor,
    /// Where worker sessions execute (threads or supervised processes).
    backend: WorkerBackend,
    /// The process backend's supervised children, spawned lazily at the
    /// first session (or restore) and kept alive across sessions so their
    /// controllers persist exactly like the thread backend's do between
    /// calls. `None` under [`WorkerBackend::Thread`].
    process: Option<ProcessPool>,
    /// Cluster → shard routing table, sorted by cluster id (arrivals
    /// resolve their shard by binary search).
    route: Vec<(ClusterId, u32)>,
    label: &'static str,
    horizon: Timestamp,
    /// Per-shard accumulated occupancy-delta timelines (extended by each
    /// snapshot's drain; spans sessions).
    timelines: Vec<Vec<OccDelta>>,
    /// Streaming k-way-merge state over `timelines` (spans sessions), so a
    /// stats cadence pays O(new deltas) per query instead of re-merging
    /// from t = 0.
    peak: PeakMerge,
    /// Command-lane implementation for worker sessions.
    lanes: LaneKind,
    /// Per-worker CPU assignment, computed once from the config's
    /// placement policy over the detected topology.
    pins: Vec<Option<usize>>,
    /// Lane telemetry accumulated from completed sessions (the open
    /// session's live counters are added on top at merge time).
    lane_base: LaneStats,
    /// Workers that successfully pinned in the most recent session.
    workers_pinned: usize,
    /// Deployment-wide metrics registry + dispatcher span ring, `None`
    /// when [`ServeConfig::telemetry`] is `Off`. Thread-backed shards
    /// share its registry; process-backed shards ship drained deltas
    /// into it at session barriers.
    telemetry: Option<Box<ShardTelemetry>>,
}

impl<'a> ShardedController<'a> {
    /// Shard `clusters` round-robin (sorted by id) into `shard_count`
    /// controllers.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero, `clusters` is empty, or the config
    /// rejects (see [`Controller::new`]).
    pub fn new(
        clusters: &[Cluster],
        predictor: &'a dyn Predictor,
        config: ServeConfig,
        shard_count: usize,
    ) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        assert!(!clusters.is_empty(), "need at least one cluster");
        let shard_count = shard_count.min(clusters.len());
        let mut sorted: Vec<&Cluster> = clusters.iter().collect();
        sorted.sort_by_key(|c| c.id);

        let mut groups: Vec<Vec<Cluster>> = vec![Vec::new(); shard_count];
        // Pushed in sorted-id order, so the routing table is born sorted.
        let mut route = Vec::with_capacity(sorted.len());
        for (i, cluster) in sorted.iter().enumerate() {
            groups[i % shard_count].push((*cluster).clone());
            route.push((cluster.id, (i % shard_count) as u32));
        }
        let config = ServeConfig {
            // Shard-local peaks cannot be summed; the delta timelines are
            // merged instead.
            occupancy_timeline: true,
            ..config
        };
        // Constructed un-armed, then re-armed below onto the deployment's
        // shared registry (so per-shard construction never registers a
        // private registry that would immediately be thrown away).
        let shard_config = ServeConfig {
            telemetry: TelemetryConfig::Off,
            ..config
        };
        let mut shards: Vec<Controller<'a>> = groups
            .into_iter()
            .map(|group| Controller::new(&group, predictor, shard_config))
            .collect();
        let telemetry = (!config.telemetry.is_off()).then(|| {
            let origin = Instant::now();
            let t = ShardTelemetry::new(config.telemetry, shards.len(), config.lanes, origin);
            for (shard, controller) in shards.iter_mut().enumerate() {
                controller.enable_telemetry(
                    config.telemetry,
                    Arc::clone(&t.registry),
                    shard as u32,
                    origin,
                );
            }
            t
        });
        let pins = config
            .placement
            .assign(&CpuTopology::detect(), shards.len());
        ShardedController {
            timelines: vec![Vec::new(); shards.len()],
            peak: PeakMerge::new(shards.len()),
            lanes: config.lanes,
            pins,
            lane_base: LaneStats::default(),
            workers_pinned: 0,
            telemetry,
            predictor,
            backend: config.backend,
            process: None,
            shards,
            route,
            label: config.policy.label,
            horizon: config.horizon,
        }
    }

    /// A sharded controller replaying a trace with the batch experiment's
    /// semantics.
    pub fn replaying(
        trace: &Trace,
        predictor: &'a dyn Predictor,
        policy: PolicyConfig,
        server_fraction: f64,
        shard_count: usize,
    ) -> Self {
        ShardedController::new(
            &trace.clusters,
            predictor,
            ServeConfig::replaying(policy, server_fraction, trace.horizon),
            shard_count,
        )
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Open one worker session and drive it through a [`Dispatcher`].
    /// `collect` decides whether routed segments carry per-request
    /// responses back. Under the thread backend the controllers move into
    /// persistent worker threads and back; under the process backend the
    /// same command stream is encoded into `coach-wire` frames and routed
    /// through the supervised child processes instead.
    fn with_session<R>(
        &mut self,
        collect: bool,
        body: impl FnOnce(&mut Dispatcher<'_, '_, 'a>) -> R,
    ) -> R {
        match self.backend {
            WorkerBackend::Thread => self.with_thread_session(collect, body),
            WorkerBackend::Process => self.with_process_session(collect, body),
        }
    }

    fn with_thread_session<R>(
        &mut self,
        collect: bool,
        body: impl FnOnce(&mut Dispatcher<'_, '_, 'a>) -> R,
    ) -> R {
        let ShardedController {
            shards,
            route,
            label,
            horizon,
            timelines,
            peak,
            lanes,
            pins,
            lane_base,
            workers_pinned,
            telemetry,
            ..
        } = self;
        let n = shards.len();
        let owned = std::mem::take(shards);
        let config = WorkerConfig {
            backend: WorkerBackend::Thread,
            lanes: *lanes,
            ring_capacity: 0,
            pins: pins.clone(),
        };
        let session_base = *lane_base;
        let spans = telemetry.as_deref_mut().and_then(|t| t.spans.as_mut());
        let (owned, (out, session_lanes, session_pinned)) =
            with_shard_workers_configured(&config, owned, worker_step, |workers| {
                let mut dispatcher = Dispatcher {
                    link: Link::Threads(workers),
                    route,
                    timelines,
                    peak,
                    pending: (0..n).map(|_| Vec::new()).collect(),
                    pending_owned: (0..n).map(|_| Vec::new()).collect(),
                    stream_records: 0,
                    stream_segments: 0,
                    log: Vec::new(),
                    next_idx: 0,
                    collect,
                    label,
                    horizon: *horizon,
                    lane_base: session_base,
                    spans,
                };
                let out = body(&mut dispatcher);
                (
                    out,
                    dispatcher.link.lane_stats(),
                    dispatcher.link.workers_pinned(),
                )
            });
        *shards = owned;
        lane_base.merge(&session_lanes);
        *workers_pinned = session_pinned;
        self.sync_session_telemetry();
        out
    }

    fn with_process_session<R>(
        &mut self,
        collect: bool,
        body: impl FnOnce(&mut Dispatcher<'_, '_, 'a>) -> R,
    ) -> R {
        self.ensure_process_pool();
        // Arm the children before the session's commands flow (idempotent
        // after the first session; the arm frame rides the journal, so a
        // mid-session crash replays it before the replayed commands and
        // the recovered child recounts exactly what the dead one had).
        self.exchange_process_telemetry();
        let out = {
            let ShardedController {
                route,
                label,
                horizon,
                timelines,
                peak,
                lane_base,
                process,
                telemetry,
                ..
            } = self;
            let pool = process.as_mut().expect("process pool spawned above");
            let n = pool.len();
            let session_base = *lane_base;
            let (spans, wire) = match telemetry.as_deref_mut() {
                Some(t) => (t.spans.as_mut(), Some(t.wire.clone())),
                None => (None, None),
            };
            let mut dispatcher = Dispatcher {
                link: Link::Process(pool, wire),
                route,
                timelines,
                peak,
                pending: (0..n).map(|_| Vec::new()).collect(),
                pending_owned: (0..n).map(|_| Vec::new()).collect(),
                stream_records: 0,
                stream_segments: 0,
                log: Vec::new(),
                next_idx: 0,
                collect,
                label,
                horizon: *horizon,
                lane_base: session_base,
                spans,
            };
            body(&mut dispatcher)
        };
        // Fold the session into each child's checkpoint: export the
        // child's (unchanged) state and re-anchor recovery there, so a
        // crash replays at most one session's journal, not the lifetime's.
        self.refresh_process_checkpoints();
        // Telemetry barrier: drain each child's registry delta into the
        // parent's, then mirror pool-level recovery totals.
        self.exchange_process_telemetry();
        self.sync_session_telemetry();
        out
    }

    /// Send each child a `WireCmd::Telemetry` frame — arming it on first
    /// contact — and merge the drained registry delta it replies with.
    /// No-op when telemetry is off.
    fn exchange_process_telemetry(&mut self) {
        let Some(t) = self.telemetry.as_deref() else {
            return;
        };
        let Some(pool) = self.process.as_mut() else {
            return;
        };
        for shard in 0..pool.len() {
            let frame = seal_frame(&WireCmd::Telemetry { mode: t.mode });
            t.wire.sent(frame.len());
            pool.send(shard, frame);
            let reply = pool.recv(shard);
            t.wire.received(reply.len());
            let reply: WireReply = open_frame(&reply).expect("decode shard telemetry reply");
            let WireReply::Telemetry(delta) = reply else {
                unreachable!("telemetry frame answered with a delta, got {reply:?}");
            };
            t.registry.merge(&delta);
        }
    }

    /// Mirror the parent-side cumulative totals (lane stats, process-pool
    /// restarts and replay time, dispatcher span drops) into the registry
    /// as deltas. Called at the end of every session.
    fn sync_session_telemetry(&mut self) {
        let lanes = self.lane_base;
        let (restarts, replay_ns) = self
            .process
            .as_ref()
            .map_or((0, 0), |pool| (pool.restarts(), pool.replay_ns()));
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.sync_session(&lanes, restarts, replay_ns);
        }
        // Thread-backed shard rings overflow silently between barriers;
        // fold their drop counts in here too.
        for shard in &mut self.shards {
            shard.sync_telemetry();
        }
    }

    /// The process backend's predictor recipe (see [`PredictorSpec`]).
    fn predictor_spec(&self) -> PredictorSpec {
        PredictorSpec::Oracle {
            windows_per_day: self.predictor.time_windows().count() as u32,
        }
    }

    /// Spawn the supervised children on first use and install each
    /// shard's current controller state as its checkpoint.
    fn ensure_process_pool(&mut self) {
        if self.process.is_some() {
            return;
        }
        let exe = std::env::current_exe().expect("resolve current executable for shard workers");
        let pool = ProcessPool::spawn(self.shards.len(), move |shard| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.env(SHARD_WORKER_ENV, shard.to_string());
            cmd
        })
        .expect("spawn shard worker processes");
        self.process = Some(pool);
        let spec = self.predictor_spec();
        for shard in 0..self.shards.len() {
            let frame = seal_frame(&WireCmd::Init {
                spec,
                snapshot: self.shards[shard].snapshot().into_bytes(),
            });
            self.process
                .as_mut()
                .expect("pool just spawned")
                .install_checkpoint(shard, frame);
        }
    }

    /// Export every child's state and record it as the new checkpoint
    /// (without touching the child — its live state already equals the
    /// export), bounding journal replay to one session.
    fn refresh_process_checkpoints(&mut self) {
        let spec = self.predictor_spec();
        let wire = self.telemetry.as_deref().map(|t| &t.wire);
        let pool = self.process.as_mut().expect("process session open");
        for shard in 0..pool.len() {
            let frame = seal_frame(&WireCmd::Export);
            if let Some(w) = wire {
                w.sent(frame.len());
            }
            pool.send(shard, frame);
            let reply = pool.recv(shard);
            if let Some(w) = wire {
                w.received(reply.len());
            }
            let reply: WireReply = open_frame(&reply).expect("decode shard worker export reply");
            let WireReply::Exported(snapshot) = reply else {
                unreachable!("export answered with a snapshot, got {reply:?}");
            };
            pool.refresh_checkpoint(shard, seal_frame(&WireCmd::Init { spec, snapshot }));
        }
    }

    /// Process a batch of time-ordered requests, returning responses in
    /// request order. The shard workers persist across the whole batch:
    /// routed spans stream to them in pipelined segments, and broadcast
    /// requests (tick / probe / stats / depart) are ordering tokens on
    /// every lane rather than fork-join barriers.
    pub fn handle_batch(&mut self, requests: &[Request<'a>]) -> Vec<Response> {
        self.with_session(true, |dispatcher| {
            for request in requests {
                dispatcher.submit(*request);
            }
            let (responses, _) = dispatcher.drain();
            responses
                .into_iter()
                .map(|r| r.expect("every request answered"))
                .collect()
        })
    }

    /// Stream an entire request sequence and finalize, all in a single
    /// worker session — the scale-out serving loop. Per-request responses
    /// are never materialized (workers acknowledge whole segments), so
    /// memory stays O(segments) over a million-VM stream; the merged final
    /// [`PackingResult`] is returned.
    pub fn run(&mut self, requests: impl IntoIterator<Item = Request<'a>>) -> PackingResult {
        self.with_session(false, |dispatcher| {
            for request in requests {
                dispatcher.submit(request);
            }
            dispatcher.send_finalize();
            let (_, result) = dispatcher.drain();
            result.expect("finalize merged")
        })
    }

    /// [`Self::run`] for *owning* request streams: drive the controller
    /// from any `Iterator<Item = StreamRequest>` — e.g. a
    /// [`StreamSource`](crate::StreamSource) over
    /// [`coach_trace::StreamingTrace::records`], or a
    /// [`crate::scenario`] combinator chain — with no materialized trace
    /// behind it. Records move into routed segments and are dropped
    /// worker-side after admission; the bounded ring lanes provide
    /// backpressure (a producer stalls when a worker falls a full ring
    /// behind), so in-flight memory is O(shards × segment) regardless of
    /// stream length. Decisions are bit-identical to [`Self::run`] over
    /// the materialized equivalent of the same stream.
    ///
    /// Two `serve.stream_*` counters land in the telemetry registry per
    /// call (when armed): `stream_records` (owned arrivals submitted) and
    /// `stream_segments` (owned segments shipped).
    pub fn run_stream(
        &mut self,
        requests: impl IntoIterator<Item = StreamRequest>,
    ) -> PackingResult {
        let (result, records, segments) = self.with_session(false, |dispatcher| {
            for request in requests {
                dispatcher.submit_owned(request);
            }
            dispatcher.send_finalize();
            let counts = (dispatcher.stream_records, dispatcher.stream_segments);
            let (_, result) = dispatcher.drain();
            (result.expect("finalize merged"), counts.0, counts.1)
        });
        if let Some(t) = self.telemetry.as_deref() {
            t.registry.counter(metric::STREAM_RECORDS, &[]).add(records);
            t.registry
                .counter(metric::STREAM_SEGMENTS, &[])
                .add(segments);
        }
        result
    }

    /// Finalize every shard and merge into the batch experiment's result
    /// struct. Idempotent; [`Self::run`] already finalizes inline.
    pub fn finalize(&mut self) -> PackingResult {
        self.with_session(false, |dispatcher| {
            dispatcher.send_finalize();
            let (_, result) = dispatcher.drain();
            result.expect("finalize merged")
        })
    }

    /// Cumulative worker-lane telemetry (commands + replies) across every
    /// completed session. Zero for single-shard controllers, whose inline
    /// pool has no lanes.
    pub fn lane_totals(&self) -> LaneStats {
        self.lane_base
    }

    /// Workers that successfully pinned to their assigned CPU in the most
    /// recent session (zero under [`PlacementPolicy::None`] or when
    /// pinning is unsupported).
    pub fn workers_pinned(&self) -> usize {
        self.workers_pinned
    }

    /// Checkpoint-recovery respawns the process backend has performed so
    /// far (always zero under [`WorkerBackend::Thread`]). Also surfaced as
    /// [`StatsReport::worker_restarts`] on every merged report.
    pub fn worker_restarts(&self) -> u64 {
        self.process.as_ref().map_or(0, |pool| pool.restarts())
    }

    /// OS process id of shard `shard`'s current child worker, if the
    /// process backend is active and its pool has been spawned. Changes
    /// after a recovery respawn; `None` under the thread backend.
    pub fn worker_pid(&self, shard: usize) -> Option<u32> {
        self.process.as_ref().map(|pool| pool.pid(shard))
    }

    /// The deployment-wide metrics registry, when
    /// [`ServeConfig::telemetry`] is not `Off`. Thread-backed shards
    /// record into it directly; process-backed shards' deltas are merged
    /// into it at every session barrier, so a snapshot taken between
    /// public calls is complete for both backends.
    pub fn telemetry_registry(&self) -> Option<Arc<Registry>> {
        self.telemetry.as_deref().map(|t| Arc::clone(&t.registry))
    }

    /// Every span ring this deployment recorded into (`Full` mode only):
    /// one per thread-backed shard controller plus the dispatcher's
    /// barrier ring (tid = shard count). Feed them to
    /// [`coach_telemetry::chrome_trace`]. Process-backed shards keep
    /// their rings child-side (spans never cross the wire), so only the
    /// dispatcher ring appears under that backend.
    pub fn telemetry_span_rings(&self) -> Vec<&SpanRing> {
        let mut rings: Vec<&SpanRing> = self
            .shards
            .iter()
            .filter_map(Controller::telemetry_spans)
            .collect();
        if let Some(ring) = self.telemetry.as_deref().and_then(|t| t.spans.as_ref()) {
            rings.push(ring);
        }
        rings
    }

    /// Serialize one shard's full decision-bearing state into a
    /// [`Snapshot`] — the drain half of live servicing. Valid between
    /// sessions (i.e. between public entry-point calls); the shard keeps
    /// serving afterwards. Under the process backend the snapshot is
    /// exported by the live child over its pipe.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn drain_shard(&mut self, shard: usize) -> Snapshot {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        match self.backend {
            WorkerBackend::Thread => self.shards[shard].snapshot(),
            WorkerBackend::Process => {
                self.ensure_process_pool();
                let t0 = Instant::now();
                let wire = self.telemetry.as_deref().map(|t| &t.wire);
                let pool = self.process.as_mut().expect("process pool spawned above");
                let frame = seal_frame(&WireCmd::Export);
                if let Some(w) = wire {
                    w.sent(frame.len());
                }
                pool.send(shard, frame);
                let reply = pool.recv(shard);
                if let Some(w) = wire {
                    w.received(reply.len());
                }
                let reply: WireReply =
                    open_frame(&reply).expect("decode shard worker export reply");
                let WireReply::Exported(bytes) = reply else {
                    unreachable!("export answered with a snapshot, got {reply:?}");
                };
                let snapshot = Snapshot::from_bytes(bytes);
                if let Some(t) = self.telemetry.as_deref() {
                    // Includes the pipe round trip: the observable cost of
                    // draining a live child.
                    let secs = t0.elapsed().as_secs_f64();
                    if secs > 0.0 {
                        t.registry
                            .gauge(
                                metric::SNAPSHOT_ENCODE_BPS,
                                &[("shard", LabelValue::U64(shard as u64))],
                            )
                            .set(snapshot.bytes().len() as f64 / secs);
                    }
                }
                snapshot
            }
        }
    }

    /// Replace one shard's state with a restored [`Snapshot`] — the resume
    /// half of live servicing (e.g. into a freshly constructed controller
    /// after an upgrade, or to roll a shard back). `resolve` re-resolves
    /// the accounting state's record references, exactly as in
    /// [`Controller::restore`]. Under the process backend the snapshot is
    /// additionally installed as the child's checkpoint, replacing its
    /// live state.
    ///
    /// The restored shard must cover the same clusters the slot covered
    /// (routing is deterministic, so snapshots from the same shard index
    /// of an identically configured deployment always do).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, or on a semantically
    /// inconsistent dump (see [`Controller::restore`]).
    pub fn resume_shard(
        &mut self,
        shard: usize,
        snapshot: &Snapshot,
        resolve: impl Fn(VmId) -> Option<&'a VmRecord>,
    ) -> Result<(), WireError> {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        // Restoring parent-side first validates the bytes (and keeps the
        // parent copy authoritative for the next pool spawn).
        let t0 = Instant::now();
        self.shards[shard] = Controller::restore(self.predictor, snapshot, resolve)?;
        if let Some(t) = self.telemetry.as_deref() {
            let secs = t0.elapsed().as_secs_f64();
            if secs > 0.0 {
                t.registry
                    .gauge(
                        metric::SNAPSHOT_RESTORE_BPS,
                        &[("shard", LabelValue::U64(shard as u64))],
                    )
                    .set(snapshot.bytes().len() as f64 / secs);
            }
            // A restored controller comes back un-armed; re-arm it onto
            // the deployment registry under its old shard label.
            self.shards[shard].enable_telemetry(
                t.mode,
                Arc::clone(&t.registry),
                shard as u32,
                t.origin,
            );
        }
        if self.backend == WorkerBackend::Process {
            if let Some(pool) = self.process.as_mut() {
                let frame = seal_frame(&WireCmd::Init {
                    spec: PredictorSpec::Oracle {
                        windows_per_day: self.predictor.time_windows().count() as u32,
                    },
                    snapshot: snapshot.bytes().to_vec(),
                });
                pool.install_checkpoint(shard, frame);
            }
            // No pool yet: the next session's `ensure_process_pool` seeds
            // the child from the just-restored parent controller.
        }
        Ok(())
    }
}

/// Re-route this binary into the shard worker loop if
/// [`SHARD_WORKER_ENV`] is set, never returning in that case. Binaries
/// that embed a process-backed [`ShardedController`] **must** call this
/// first thing in `main` — the pool re-execs `current_exe()`, and without
/// this check each child would run the embedding program instead of a
/// worker.
///
/// The worker speaks the frame protocol on stdin/stdout
/// ([`coach_types::runtime::serve_child_frames`]): an `WireCmd::Init`
/// frame builds its controller from a [`Snapshot`] (leaking the embedded
/// record table and an [`Oracle`] — a worker process serves exactly one
/// controller for its lifetime, so the leaks are bounded and deliberate),
/// then segments, tokens, finalize, and export frames each produce exactly
/// one reply. Clean stdin EOF exits 0.
pub fn maybe_run_shard_worker() {
    let Some(value) = std::env::var_os(SHARD_WORKER_ENV) else {
        return;
    };
    // The env value is the shard index — the label the child's telemetry
    // series carry so the parent-side merge lines them up with the thread
    // backend's.
    let shard: u32 = value.to_string_lossy().parse().unwrap_or(0);
    let mut state: Option<Controller<'static>> = None;
    serve_child_frames(|frame| {
        let cmd: WireCmd = open_frame(&frame).expect("decode shard worker command frame");
        seal_frame(&child_step(shard, &mut state, cmd))
    });
    std::process::exit(0);
}

/// Apply one command frame to the worker's controller.
fn child_step(shard: u32, state: &mut Option<Controller<'static>>, cmd: WireCmd) -> WireReply {
    if let WireCmd::Init { spec, snapshot } = cmd {
        let PredictorSpec::Oracle { windows_per_day } = spec;
        let predictor: &'static Oracle =
            Box::leak(Box::new(Oracle::new(TimeWindows::new(windows_per_day))));
        let snapshot = Snapshot::from_bytes(snapshot);
        let records: &'static [VmRecord] =
            Vec::leak(snapshot.records().expect("decode checkpoint record table"));
        let table: HashMap<VmId, &'static VmRecord> =
            records.iter().map(|rec| (rec.id, rec)).collect();
        let controller = Controller::restore(predictor, &snapshot, |vm| table.get(&vm).copied())
            .expect("restore controller from checkpoint frame");
        *state = Some(controller);
        return WireReply::InitOk;
    }
    let controller = state
        .as_mut()
        .expect("Init frame precedes every other command");
    match cmd {
        WireCmd::Batch(batch) => {
            let batch: Vec<(usize, Request<'static>)> = batch
                .into_iter()
                .map(|(idx, rec)| {
                    let rec: &'static VmRecord = Box::leak(Box::new(rec));
                    (idx as usize, Request::Arrive(rec))
                })
                .collect();
            reply_frame(worker_step(0, controller, ShardCmd::Batch(batch)))
        }
        WireCmd::Run(recs) => {
            let batch: Vec<Request<'static>> = recs
                .into_iter()
                .map(|rec| {
                    let rec: &'static VmRecord = Box::leak(Box::new(rec));
                    Request::Arrive(rec)
                })
                .collect();
            reply_frame(worker_step(0, controller, ShardCmd::Run(batch)))
        }
        WireCmd::Token(token) => {
            let request = match token {
                TokenCmd::Depart { vm, now } => Request::Depart { vm, now },
                TokenCmd::Tick { now } => Request::Tick { now },
                TokenCmd::Probe { now } => Request::Probe { now },
                TokenCmd::Stats { now } => Request::Stats { now },
            };
            reply_frame(worker_step(0, controller, ShardCmd::Token(request)))
        }
        WireCmd::Finalize => reply_frame(worker_step(0, controller, ShardCmd::Finalize)),
        WireCmd::Export => WireReply::Exported(controller.snapshot().into_bytes()),
        WireCmd::Telemetry { mode } => {
            // Arm on first contact (a restored controller is un-armed) and
            // drain the delta accumulated since the previous barrier. The
            // child keeps a private registry; only deltas cross the pipe.
            if mode.is_off() {
                controller.enable_telemetry(
                    TelemetryConfig::Off,
                    Arc::new(Registry::new()),
                    shard,
                    Instant::now(),
                );
            } else if controller.telemetry_registry().is_none()
                || controller.config().telemetry != mode
            {
                controller.enable_telemetry(mode, Arc::new(Registry::new()), shard, Instant::now());
            }
            WireReply::Telemetry(controller.drain_telemetry().unwrap_or(RegistrySnapshot {
                entries: Vec::new(),
            }))
        }
        WireCmd::Init { .. } => unreachable!("handled above"),
    }
}

/// Lift a thread-backend reply into its wire form.
fn reply_frame(reply: ShardReply) -> WireReply {
    match reply {
        ShardReply::Answers(answers) => WireReply::Answers(
            answers
                .into_iter()
                .map(|(idx, response)| (idx as u64, response))
                .collect(),
        ),
        ShardReply::Ran => WireReply::Ran,
        ShardReply::Token(response) => WireReply::Token(response),
        ShardReply::Stats(snapshot) => WireReply::Stats(*snapshot),
        ShardReply::Finalized(boxed) => {
            let (result, snapshot) = *boxed;
            WireReply::Finalized(result, snapshot)
        }
    }
}

impl std::fmt::Debug for ShardedController<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedController")
            .field("shards", &self.shards.len())
            .field("clusters", &self.route.len())
            .finish_non_exhaustive()
    }
}

/// What the dispatcher has sent and not yet collected, in global order.
enum Sent<'a> {
    /// One [`ShardReply::Answers`] expected from `shard`.
    Batch { shard: usize },
    /// One token reply expected from *every* shard; `idx` is the
    /// broadcast's stream position, `request` drives the merge.
    Token { idx: usize, request: Request<'a> },
    /// One [`ShardReply::Finalized`] expected from every shard.
    Finalize,
}

/// The dispatcher's transport: in-process worker lanes, or the process
/// backend's frame pipes. Both are per-shard FIFO command/reply channels,
/// so the session/barrier protocol above is backend-agnostic; the process
/// arm pays an encode (cloning each routed record into its frame) and a
/// decode per hop.
enum Link<'s, 'pool, 'a> {
    Threads(&'s mut ShardWorkers<'pool, ShardCmd<'a>, ShardReply>),
    /// The pool plus (when telemetry is armed) the parent-side frame
    /// byte/count instruments, so every pipe hop is weighed.
    Process(&'s mut ProcessPool, Option<WireTelemetry>),
}

impl<'a> Link<'_, '_, 'a> {
    fn len(&self) -> usize {
        match self {
            Link::Threads(workers) => workers.len(),
            Link::Process(pool, _) => pool.len(),
        }
    }

    fn send(&mut self, shard: usize, cmd: ShardCmd<'a>) {
        match self {
            Link::Threads(workers) => workers.send(shard, cmd),
            Link::Process(pool, wire) => {
                let frame = cmd_frame(&cmd);
                if let Some(w) = wire {
                    w.sent(frame.len());
                }
                pool.send(shard, frame);
            }
        }
    }

    fn send_batch(&mut self, shard: usize, cmds: Vec<ShardCmd<'a>>) {
        match self {
            Link::Threads(workers) => workers.send_batch(shard, cmds),
            Link::Process(pool, wire) => {
                // The pipe has no burst primitive; the kernel buffer plays
                // the ring's role and the frames stay one journal entry
                // each for recovery replay.
                for cmd in &cmds {
                    let frame = cmd_frame(cmd);
                    if let Some(w) = wire {
                        w.sent(frame.len());
                    }
                    pool.send(shard, frame);
                }
            }
        }
    }

    fn recv(&mut self, shard: usize) -> ShardReply {
        match self {
            Link::Threads(workers) => workers.recv(shard),
            Link::Process(pool, wire) => {
                let bytes = pool.recv(shard);
                if let Some(w) = wire {
                    w.received(bytes.len());
                }
                let reply: WireReply = open_frame(&bytes).expect("decode shard worker reply frame");
                match reply {
                    WireReply::Answers(answers) => ShardReply::Answers(
                        answers
                            .into_iter()
                            .map(|(idx, response)| (idx as usize, response))
                            .collect(),
                    ),
                    WireReply::Ran => ShardReply::Ran,
                    WireReply::Token(response) => ShardReply::Token(response),
                    WireReply::Stats(snapshot) => ShardReply::Stats(Box::new(snapshot)),
                    WireReply::Finalized(result, snapshot) => {
                        ShardReply::Finalized(Box::new((result, snapshot)))
                    }
                    WireReply::InitOk | WireReply::Exported(_) | WireReply::Telemetry(_) => {
                        unreachable!("supervision reply inside a dispatch session")
                    }
                }
            }
        }
    }

    fn lane_stats(&self) -> LaneStats {
        match self {
            Link::Threads(workers) => workers.lane_stats(),
            Link::Process(..) => LaneStats::default(),
        }
    }

    fn workers_pinned(&self) -> usize {
        match self {
            Link::Threads(workers) => workers.workers_pinned(),
            Link::Process(..) => 0,
        }
    }

    fn restarts(&self) -> u64 {
        match self {
            Link::Threads(_) => 0,
            Link::Process(pool, _) => pool.restarts(),
        }
    }
}

/// Encode one thread-backend command as its process-backend frame.
/// Arrivals lose their borrow here: each routed record is cloned into the
/// frame (the child leaks its copy to serve `Request<'static>`s).
fn cmd_frame(cmd: &ShardCmd<'_>) -> Vec<u8> {
    let wire = match cmd {
        ShardCmd::Batch(batch) => WireCmd::Batch(
            batch
                .iter()
                .map(|(idx, req)| (*idx as u64, arrival(*req).clone()))
                .collect(),
        ),
        ShardCmd::Run(batch) => {
            WireCmd::Run(batch.iter().map(|req| arrival(*req).clone()).collect())
        }
        // Owned segments reuse the `Run` frame: the wire protocol already
        // carries records by value, so streaming needs no protocol change.
        ShardCmd::RunOwned(batch) => WireCmd::Run(batch.clone()),
        ShardCmd::Token(req) => WireCmd::Token(match *req {
            Request::Depart { vm, now } => TokenCmd::Depart { vm, now },
            Request::Tick { now } => TokenCmd::Tick { now },
            Request::Probe { now } => TokenCmd::Probe { now },
            Request::Stats { now } => TokenCmd::Stats { now },
            Request::Arrive(_) => unreachable!("arrivals travel in routed segments"),
        }),
        ShardCmd::Finalize => WireCmd::Finalize,
    };
    seal_frame(&wire)
}

/// The session-scoped request router: queues shard-routed requests into
/// per-shard segments, turns broadcasts into per-lane tokens, and merges
/// the FIFO replies.
struct Dispatcher<'s, 'pool, 'a> {
    link: Link<'s, 'pool, 'a>,
    route: &'s [(ClusterId, u32)],
    timelines: &'s mut Vec<Vec<OccDelta>>,
    peak: &'s mut PeakMerge,
    pending: Vec<Vec<(usize, Request<'a>)>>,
    /// Owned-arrival staging for streaming sessions ([`Self::submit_owned`]);
    /// a session uses either this or `pending`, never both.
    pending_owned: Vec<Vec<VmRecord>>,
    /// Owned records submitted this session (`serve.stream_records`).
    stream_records: u64,
    /// Owned segments shipped this session (`serve.stream_segments`).
    stream_segments: u64,
    log: Vec<Sent<'a>>,
    next_idx: usize,
    /// Whether routed segments carry per-request responses back.
    collect: bool,
    label: &'static str,
    horizon: Timestamp,
    /// Lane telemetry from sessions before this one; a stats merge adds
    /// the live pool's counters on top.
    lane_base: LaneStats,
    /// Barrier spans (`TelemetryConfig::Full` only): staging, drains, and
    /// merges record into the deployment's dispatcher ring.
    spans: Option<&'s mut SpanRing>,
}

impl<'a> Dispatcher<'_, '_, 'a> {
    /// Open a barrier span, if the dispatcher ring is armed.
    #[inline]
    fn begin_span(&self) -> Option<SpanStart> {
        self.spans.is_some().then(SpanRing::begin)
    }

    /// Close a barrier span opened by [`Self::begin_span`].
    #[inline]
    fn end_span(&mut self, name: &'static str, start: Option<SpanStart>) {
        if let (Some(ring), Some(start)) = (self.spans.as_mut(), start) {
            ring.end(name, start);
        }
    }
    /// Feed one request into the session (requests must be submitted in
    /// stream order).
    fn submit(&mut self, request: Request<'a>) {
        let idx = self.next_idx;
        self.next_idx += 1;
        if request.is_broadcast() {
            let span = self.begin_span();
            // Hand each shard its staged segment *and* the token in one
            // batched lane handoff — the segment still lands before the
            // token (same stream position as a flush-then-send), but the
            // lane wakes the worker at most once per barrier instead of
            // once per command.
            for shard in 0..self.link.len() {
                let mut burst = Vec::with_capacity(2);
                if let Some(cmd) = self.take_segment(shard) {
                    burst.push(cmd);
                    self.log.push(Sent::Batch { shard });
                }
                burst.push(ShardCmd::Token(request));
                self.link.send_batch(shard, burst);
            }
            self.log.push(Sent::Token { idx, request });
            self.end_span("dispatch.stage", span);
        } else {
            let Request::Arrive(rec) = request else {
                unreachable!("non-broadcast requests are arrivals")
            };
            let at = self
                .route
                .binary_search_by_key(&rec.cluster, |&(id, _)| id)
                .expect("arrival for a cluster this controller owns");
            let shard = self.route[at].1 as usize;
            self.pending[shard].push((idx, request));
            if self.pending[shard].len() >= SEGMENT {
                self.flush(shard);
            }
        }
    }

    /// Feed one owning request into the session (same stream-order
    /// contract as [`Self::submit`]). Owned arrivals stage into per-shard
    /// owned segments and ship as [`ShardCmd::RunOwned`]; broadcasts reuse
    /// the borrowed token path (no broadcast variant carries a record).
    /// Only valid in non-collecting sessions — per-request responses are
    /// never materialized for streams.
    fn submit_owned(&mut self, request: StreamRequest) {
        debug_assert!(!self.collect, "streams never collect responses");
        match request {
            StreamRequest::Arrive(rec) => {
                self.next_idx += 1;
                self.stream_records += 1;
                let at = self
                    .route
                    .binary_search_by_key(&rec.cluster, |&(id, _)| id)
                    .expect("arrival for a cluster this controller owns");
                let shard = self.route[at].1 as usize;
                self.pending_owned[shard].push(rec);
                if self.pending_owned[shard].len() >= SEGMENT {
                    self.flush(shard);
                }
            }
            StreamRequest::Depart { vm, now } => self.submit(Request::Depart { vm, now }),
            StreamRequest::Tick { now } => self.submit(Request::Tick { now }),
            StreamRequest::Probe { now } => self.submit(Request::Probe { now }),
            StreamRequest::Stats { now } => self.submit(Request::Stats { now }),
        }
    }

    /// Take `shard`'s staged segment as a ready-to-send command, if any.
    fn take_segment(&mut self, shard: usize) -> Option<ShardCmd<'a>> {
        if !self.pending_owned[shard].is_empty() {
            self.stream_segments += 1;
            return Some(ShardCmd::RunOwned(std::mem::take(
                &mut self.pending_owned[shard],
            )));
        }
        if self.pending[shard].is_empty() {
            return None;
        }
        let segment = std::mem::take(&mut self.pending[shard]);
        Some(if self.collect {
            ShardCmd::Batch(segment)
        } else {
            ShardCmd::Run(segment.into_iter().map(|(_, req)| req).collect())
        })
    }

    fn flush(&mut self, shard: usize) {
        if let Some(cmd) = self.take_segment(shard) {
            self.link.send(shard, cmd);
            self.log.push(Sent::Batch { shard });
        }
    }

    fn flush_all(&mut self) {
        for shard in 0..self.pending.len() {
            self.flush(shard);
        }
    }

    fn send_finalize(&mut self) {
        let span = self.begin_span();
        // Same batched handoff as a broadcast: segment + finalize arrive
        // in one burst per shard.
        for shard in 0..self.link.len() {
            let mut burst = Vec::with_capacity(2);
            if let Some(cmd) = self.take_segment(shard) {
                burst.push(cmd);
                self.log.push(Sent::Batch { shard });
            }
            burst.push(ShardCmd::Finalize);
            self.link.send_batch(shard, burst);
        }
        self.log.push(Sent::Finalize);
        self.end_span("dispatch.finalize", span);
    }

    /// Collect every outstanding reply in send order. In a collecting
    /// session the per-request responses come back positioned by stream
    /// index; otherwise only segment acknowledgements arrive (the merges
    /// that feed later state — timelines, the final result — still
    /// happen).
    fn drain(&mut self) -> (Vec<Option<Response>>, Option<PackingResult>) {
        let span = self.begin_span();
        self.flush_all();
        let mut responses: Vec<Option<Response>> = if self.collect {
            (0..self.next_idx).map(|_| None).collect()
        } else {
            Vec::new()
        };
        let mut final_result = None;
        for sent in std::mem::take(&mut self.log) {
            match sent {
                Sent::Batch { shard } => match self.link.recv(shard) {
                    ShardReply::Answers(answers) => {
                        if self.collect {
                            for (idx, response) in answers {
                                responses[idx] = Some(response);
                            }
                        }
                    }
                    ShardReply::Ran => {}
                    _ => unreachable!("segment answered with answers or an ack"),
                },
                Sent::Token { idx, request } => {
                    let merged = self.merge_token(request);
                    if self.collect {
                        responses[idx] = Some(merged);
                    }
                }
                Sent::Finalize => {
                    final_result = Some(self.merge_finalize());
                }
            }
        }
        self.end_span("dispatch.drain", span);
        (responses, final_result)
    }

    /// Collect one token reply per shard and merge by request kind.
    fn merge_token(&mut self, request: Request<'a>) -> Response {
        match request {
            Request::Stats { now } => {
                let snapshots: Vec<ShardSnapshot> = (0..self.link.len())
                    .map(|shard| {
                        let ShardReply::Stats(snapshot) = self.link.recv(shard) else {
                            unreachable!("stats token answered with a snapshot");
                        };
                        *snapshot
                    })
                    .collect();
                Response::Stats(self.merge_snapshots(now, &snapshots))
            }
            _ => {
                let answers: Vec<Response> = (0..self.link.len())
                    .map(|shard| {
                        let ShardReply::Token(response) = self.link.recv(shard) else {
                            unreachable!("token answered with a token response");
                        };
                        response
                    })
                    .collect();
                match request {
                    Request::Probe { .. } => {
                        let total = answers
                            .iter()
                            .map(|a| match a {
                                Response::ProbeCapacity(n) => *n,
                                other => unreachable!("probe answered with {other:?}"),
                            })
                            .sum();
                        Response::ProbeCapacity(total)
                    }
                    Request::Depart { vm, .. } => {
                        let found = answers
                            .iter()
                            .any(|a| matches!(a, Response::Departed { found: true, .. }));
                        Response::Departed { vm, found }
                    }
                    Request::Tick { .. } => Response::Ticked,
                    Request::Stats { .. } | Request::Arrive(_) => {
                        unreachable!("handled above / shard-routed")
                    }
                }
            }
        }
    }

    /// Collect the per-shard final results and merge them exactly as the
    /// fork-join implementation did.
    fn merge_finalize(&mut self) -> PackingResult {
        let mut snapshots = Vec::with_capacity(self.link.len());
        let mut partial_accepted = 0u64;
        for shard in 0..self.link.len() {
            let ShardReply::Finalized(boxed) = self.link.recv(shard) else {
                unreachable!("finalize answered with a final result");
            };
            let (partial, snapshot) = *boxed;
            partial_accepted += partial.accepted;
            snapshots.push(snapshot);
        }
        let merged = self.merge_snapshots(self.horizon, &snapshots);
        debug_assert_eq!(partial_accepted, merged.accepted);
        merged.to_packing_result(self.label)
    }

    /// Merge per-shard snapshots into a cluster-wide report. Integer
    /// counters add exactly; the peak comes from the merged timelines.
    fn merge_snapshots(&mut self, now: Timestamp, snapshots: &[ShardSnapshot]) -> StatsReport {
        let span = self.begin_span();
        let mut merged = StatsReport {
            now,
            ..StatsReport::default()
        };
        let mut latency = LatencyHistogram::new();
        for (shard, snapshot) in snapshots.iter().enumerate() {
            self.timelines[shard].extend_from_slice(&snapshot.timeline_delta);
            let s = &snapshot.stats;
            merged.accepted += s.accepted;
            merged.rejected += s.rejected;
            merged.departed += s.departed;
            merged.resident_vms += s.resident_vms;
            merged.servers_in_use += s.servers_in_use;
            merged.accepted_core_hours += s.accepted_core_hours;
            merged.accepted_gb_hours += s.accepted_gb_hours;
            merged.violation_samples += s.violation_samples;
            merged.cpu_violations += s.cpu_violations;
            merged.mem_violations += s.mem_violations;
            merged.ticks = merged.ticks.max(s.ticks);
            latency.merge(&snapshot.latency);
        }
        // Probe counts are per-measurement: the k-th measurement's global
        // capacity is the sum of every shard's k-th count.
        merged.probe_measurements = snapshots
            .iter()
            .map(|s| s.probe_counts.len())
            .max()
            .unwrap_or(0) as u64;
        merged.probe_capacity_total = snapshots.iter().flat_map(|s| s.probe_counts.iter()).sum();
        // Consume timeline entries strictly before `now` into the
        // persistent merge (every shard has reported all of them by this
        // barrier — a departure at exactly `now` may still be drained by a
        // later event, so same-time entries stay in the tail), then fold
        // the small tail in non-destructively for this report's peak.
        self.peak.advance(self.timelines, now.ticks());
        merged.peak_servers_in_use = self.peak.peak_with_tail(self.timelines);
        merged.admission_p50_us = latency.quantile_us(0.50);
        merged.admission_p99_us = latency.quantile_us(0.99);
        // Lane telemetry: completed sessions plus the live pool. Pure
        // observability — never part of the bit-identity contract (wakeup
        // counts depend on scheduling).
        let mut lanes = self.lane_base;
        lanes.merge(&self.link.lane_stats());
        merged.lane_sends = lanes.sends;
        merged.lane_batched_sends = lanes.batched_sends;
        merged.lane_wakeups = lanes.wakeups;
        merged.lane_full_stalls = lanes.full_stalls;
        // Checkpoint-recovery respawns (process backend only). Telemetry:
        // recovery is exact, so this never changes a decision.
        merged.worker_restarts = self.link.restarts();
        self.end_span("dispatch.merge", span);
        merged
    }
}

/// Streaming reconstruction of the global occupancy peak: a k-way merge of
/// the shards' sorted delta timelines in the batch replay's
/// `(time, kind, seq)` event order, taking the running-sum maximum — with
/// the cursors, running sum, and peak persisted across stats queries so a
/// cadence of Q queries over N deltas costs O(N + Q·tail) total instead of
/// O(Q·N).
#[derive(Debug)]
struct PeakMerge {
    cursors: Vec<usize>,
    running: i64,
    peak: i64,
}

impl PeakMerge {
    fn new(shards: usize) -> Self {
        PeakMerge {
            cursors: vec![0; shards],
            running: 0,
            peak: 0,
        }
    }

    /// Pop the next entry in global `(time, kind, seq)` order among the
    /// timelines' un-consumed suffixes, if its time is below `boundary`.
    fn next_below(
        cursors: &mut [usize],
        timelines: &[Vec<OccDelta>],
        boundary: u64,
    ) -> Option<OccDelta> {
        let mut best: Option<(usize, OccDelta)> = None;
        for (si, timeline) in timelines.iter().enumerate() {
            if let Some(&entry) = timeline.get(cursors[si]) {
                let key = (entry.0, entry.1, entry.2);
                if entry.0 < boundary && best.is_none_or(|(_, b)| key < (b.0, b.1, b.2)) {
                    best = Some((si, entry));
                }
            }
        }
        let (si, entry) = best?;
        cursors[si] += 1;
        Some(entry)
    }

    /// Destructively consume entries with time strictly below `boundary`.
    /// Safe because at a barrier at `boundary` every shard has already
    /// reported all its strictly-earlier deltas (the barrier drains
    /// strictly-earlier departures), so nothing below the boundary can
    /// arrive later and be mis-ordered against the consumed prefix.
    fn advance(&mut self, timelines: &[Vec<OccDelta>], boundary: u64) {
        while let Some(entry) = Self::next_below(&mut self.cursors, timelines, boundary) {
            self.running += i64::from(entry.3);
            self.peak = self.peak.max(self.running);
        }
    }

    /// The peak including the not-yet-consumed tail (entries at the
    /// barrier time itself), merged non-destructively on scratch cursors.
    fn peak_with_tail(&self, timelines: &[Vec<OccDelta>]) -> usize {
        let mut cursors = self.cursors.clone();
        let mut running = self.running;
        let mut peak = self.peak;
        while let Some(entry) = Self::next_below(&mut cursors, timelines, u64::MAX) {
            running += i64::from(entry.3);
            peak = peak.max(running);
        }
        peak.max(0) as usize
    }
}

/// Replay a trace through a [`ShardedController`] — the scale-out
/// equivalent of [`crate::serve_trace`] — streaming the lazily derived
/// request sequence through one persistent worker session.
pub fn serve_trace_sharded(
    trace: &Trace,
    predictor: &dyn Predictor,
    policy: PolicyConfig,
    server_fraction: f64,
    shard_count: usize,
) -> PackingResult {
    let mut controller =
        ShardedController::replaying(trace, predictor, policy, server_fraction, shard_count);
    controller.run(crate::RequestSource::replaying(trace))
}

//! The sharded controller: one [`Controller`] per cluster group, dispatched
//! across cores.

use crate::controller::{Controller, OccDelta, ServeConfig};
use crate::request::{Request, Response, StatsReport};
use coach_sim::{PackingResult, PolicyConfig, Predictor};
use coach_trace::{Cluster, Trace};
use coach_types::prelude::*;
use std::collections::HashMap;

/// A cluster controller sharded by cluster group.
///
/// Clusters are assigned to shards round-robin in sorted-id order, so
/// routing is deterministic: an arrival for cluster *c* always lands on
/// the same shard, and two runs of the same stream produce identical
/// decisions. Between synchronization points (tick / probe / stats, which
/// broadcast to every shard) the shards process their sub-streams
/// concurrently via [`coach_types::par_map_mut`]; within a shard, requests
/// keep their stream order, so each shard is decision-identical to a
/// single-shard controller over its clusters.
///
/// Exactness across the shard boundary:
///
/// * placements, rejections, probe counts, violation counters, and the
///   occupancy peak (reconstructed by merging the shards' delta timelines
///   in the global event order) are **bit-identical** to the single-shard
///   controller — and therefore to the batch experiment;
/// * the accepted core/GB-hour sums are accumulated per shard and added at
///   merge time, so they can differ from the single-shard sums in the last
///   ulp (floating-point addition is not associative).
pub struct ShardedController<'a> {
    shards: Vec<Controller<'a>>,
    route: HashMap<ClusterId, usize>,
    label: &'static str,
    horizon: Timestamp,
}

impl<'a> ShardedController<'a> {
    /// Shard `clusters` round-robin (sorted by id) into `shard_count`
    /// controllers.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero, `clusters` is empty, or the config
    /// rejects (see [`Controller::new`]).
    pub fn new(
        clusters: &[Cluster],
        predictor: &'a dyn Predictor,
        config: ServeConfig,
        shard_count: usize,
    ) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        assert!(!clusters.is_empty(), "need at least one cluster");
        let shard_count = shard_count.min(clusters.len());
        let mut sorted: Vec<&Cluster> = clusters.iter().collect();
        sorted.sort_by_key(|c| c.id);

        let mut groups: Vec<Vec<Cluster>> = vec![Vec::new(); shard_count];
        let mut route = HashMap::new();
        for (i, cluster) in sorted.iter().enumerate() {
            groups[i % shard_count].push((*cluster).clone());
            route.insert(cluster.id, i % shard_count);
        }
        let config = ServeConfig {
            // Shard-local peaks cannot be summed; the delta timelines are
            // merged instead.
            occupancy_timeline: true,
            ..config
        };
        let shards = groups
            .into_iter()
            .map(|group| Controller::new(&group, predictor, config))
            .collect();
        ShardedController {
            shards,
            route,
            label: config.policy.label,
            horizon: config.horizon,
        }
    }

    /// A sharded controller replaying a trace with the batch experiment's
    /// semantics.
    pub fn replaying(
        trace: &Trace,
        predictor: &'a dyn Predictor,
        policy: PolicyConfig,
        server_fraction: f64,
        shard_count: usize,
    ) -> Self {
        ShardedController::new(
            &trace.clusters,
            predictor,
            ServeConfig::replaying(policy, server_fraction, trace.horizon),
            shard_count,
        )
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Route a request to its shard, or `None` for broadcast requests.
    fn shard_of(&self, request: &Request<'a>) -> Option<usize> {
        match request {
            Request::Arrive(rec) => Some(
                *self
                    .route
                    .get(&rec.cluster)
                    .expect("arrival for a cluster this controller owns"),
            ),
            // Departures, ticks, probes, and stats touch (or may touch)
            // every shard.
            Request::Depart { .. }
            | Request::Tick { .. }
            | Request::Probe { .. }
            | Request::Stats { .. } => None,
        }
    }

    /// Process a batch of time-ordered requests, returning responses in
    /// request order. Shard-routable spans run concurrently; broadcast
    /// requests (tick / probe / stats / depart) are synchronization
    /// barriers.
    pub fn handle_batch(&mut self, requests: &[Request<'a>]) -> Vec<Response> {
        let mut out: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
        let mut queues: Vec<Vec<(usize, Request<'a>)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();

        let flush = |queues: &mut Vec<Vec<(usize, Request<'a>)>>,
                     shards: &mut Vec<Controller<'a>>,
                     out: &mut Vec<Option<Response>>| {
            if queues.iter().all(|q| q.is_empty()) {
                return;
            }
            let answered = par_map_mut(shards, |si, shard| {
                queues[si]
                    .iter()
                    .map(|(idx, req)| (*idx, shard.handle(*req)))
                    .collect::<Vec<(usize, Response)>>()
            });
            for (idx, response) in answered.into_iter().flatten() {
                out[idx] = Some(response);
            }
            for q in queues.iter_mut() {
                q.clear();
            }
        };

        for (idx, request) in requests.iter().enumerate() {
            match self.shard_of(request) {
                Some(shard) => queues[shard].push((idx, *request)),
                None => {
                    flush(&mut queues, &mut self.shards, &mut out);
                    out[idx] = Some(self.handle_broadcast(*request));
                }
            }
        }
        flush(&mut queues, &mut self.shards, &mut out);
        out.into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    /// Handle a request that addresses every shard, merging the answers.
    fn handle_broadcast(&mut self, request: Request<'a>) -> Response {
        let answers = par_map_mut(&mut self.shards, |_, shard| shard.handle(request));
        match request {
            Request::Probe { .. } => {
                let total = answers
                    .iter()
                    .map(|a| match a {
                        Response::ProbeCapacity(n) => *n,
                        other => unreachable!("probe answered with {other:?}"),
                    })
                    .sum();
                Response::ProbeCapacity(total)
            }
            Request::Depart { vm, .. } => {
                let found = answers
                    .iter()
                    .any(|a| matches!(a, Response::Departed { found: true, .. }));
                Response::Departed { vm, found }
            }
            Request::Tick { .. } => Response::Ticked,
            Request::Stats { now } => Response::Stats(self.merged_stats(now)),
            Request::Arrive(_) => unreachable!("arrivals are shard-routable"),
        }
    }

    /// Merge per-shard stats into a cluster-wide report. Integer counters
    /// add exactly; the peak comes from the merged timelines.
    fn merged_stats(&mut self, now: Timestamp) -> StatsReport {
        let mut merged = StatsReport {
            now,
            ..StatsReport::default()
        };
        let mut latency = crate::LatencyHistogram::new();
        for shard in &self.shards {
            let s = shard.stats(now);
            merged.accepted += s.accepted;
            merged.rejected += s.rejected;
            merged.departed += s.departed;
            merged.resident_vms += s.resident_vms;
            merged.servers_in_use += s.servers_in_use;
            merged.accepted_core_hours += s.accepted_core_hours;
            merged.accepted_gb_hours += s.accepted_gb_hours;
            merged.violation_samples += s.violation_samples;
            merged.cpu_violations += s.cpu_violations;
            merged.mem_violations += s.mem_violations;
            merged.ticks = merged.ticks.max(s.ticks);
            latency.merge(shard.latency());
        }
        // Probe counts are per-measurement: the k-th measurement's global
        // capacity is the sum of every shard's k-th count.
        let measurements = self
            .shards
            .iter()
            .map(|s| s.probe_counts().len())
            .max()
            .unwrap_or(0);
        merged.probe_measurements = measurements as u64;
        merged.probe_capacity_total = self
            .shards
            .iter()
            .flat_map(|s| s.probe_counts().iter())
            .sum();
        merged.peak_servers_in_use = self.merged_peak();
        merged.admission_p50_us = latency.quantile_us(0.50);
        merged.admission_p99_us = latency.quantile_us(0.99);
        merged
    }

    /// Reconstruct the global occupancy peak: k-way merge the shards'
    /// sorted delta timelines in the batch replay's `(time, kind, seq)`
    /// event order and take the running-sum maximum.
    fn merged_peak(&self) -> usize {
        let timelines: Vec<&[OccDelta]> = self.shards.iter().map(|s| s.timeline()).collect();
        let mut cursors = vec![0usize; timelines.len()];
        let mut running = 0i64;
        let mut peak = 0i64;
        loop {
            let mut best: Option<(usize, OccDelta)> = None;
            for (si, timeline) in timelines.iter().enumerate() {
                if let Some(&entry) = timeline.get(cursors[si]) {
                    let key = (entry.0, entry.1, entry.2);
                    if best.is_none_or(|(_, b)| key < (b.0, b.1, b.2)) {
                        best = Some((si, entry));
                    }
                }
            }
            let Some((si, entry)) = best else { break };
            cursors[si] += 1;
            running += i64::from(entry.3);
            peak = peak.max(running);
        }
        peak as usize
    }

    /// Finalize every shard (concurrently) and merge into the batch
    /// experiment's result struct.
    pub fn finalize(&mut self) -> PackingResult {
        let partials = par_map_mut(&mut self.shards, |_, shard| shard.finalize());
        let mut merged = self.merged_stats(self.horizon);
        // `merged_stats` re-reads counters after the finalizing drain, so
        // the partials only assert agreement in debug runs.
        debug_assert_eq!(
            partials.iter().map(|p| p.accepted).sum::<u64>(),
            merged.accepted
        );
        merged.now = self.horizon;
        merged.to_packing_result(self.label)
    }
}

impl std::fmt::Debug for ShardedController<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedController")
            .field("shards", &self.shards.len())
            .field("clusters", &self.route.len())
            .finish_non_exhaustive()
    }
}

/// Replay a trace through a [`ShardedController`] — the scale-out
/// equivalent of [`crate::serve_trace`].
pub fn serve_trace_sharded(
    trace: &Trace,
    predictor: &dyn Predictor,
    policy: PolicyConfig,
    server_fraction: f64,
    shard_count: usize,
) -> PackingResult {
    let mut controller =
        ShardedController::replaying(trace, predictor, policy, server_fraction, shard_count);
    let requests: Vec<Request> = crate::RequestSource::replaying(trace).collect();
    controller.handle_batch(&requests);
    controller.finalize()
}

//! Incremental violation/telemetry accounting at event granularity.
//!
//! The batch experiment ([`coach_sim::packing_experiment`]) counts
//! violations in a *post-replay sweep*: it materializes a placement map for
//! every VM, groups it by server, re-sorts each server's lifetimes, and
//! walks the whole horizon per server. At million-VM scale that pass
//! dominates the replay (ROADMAP: the Fig 20 bottleneck).
//!
//! The online accountant maintains the same per-server Formula 3/4 running
//! sums *during* the event stream instead. The trick that makes it both
//! incremental and **bit-identical** to the batch sweep: between two
//! events on a server its resident set is constant, so utilization samples
//! falling in that gap can be evaluated lazily — in arrival order, with the
//! exact same floating-point operation order the batch sweep uses — the
//! next time that server sees an event (or at a flush point: tick, stats
//! query, finalization). Per-event work is bounded by the samples elapsed
//! on that one server times its resident VMs; nothing is re-scanned per
//! probe and no global placement map, per-server sort, or second pass over
//! the trace exists at all.

use coach_sched::VmDemand;
use coach_trace::VmRecord;
use coach_types::prelude::*;
use std::collections::{HashMap, VecDeque};

/// A placed VM as the accountant tracks it: the record (for closed-form
/// utilization queries), its guaranteed memory, and its per-window demand
/// maxima (inline for ≤ 6 windows — no heap per VM).
///
/// The record is *owned* (a `VmRecord` is a flat value — cloning is a
/// memcpy, no heap), so the accountant's lifetime is decoupled from the
/// request stream's: records can arrive from transient chunk buffers (the
/// streaming ingestion path) and are freed when the entry retires.
#[derive(Debug, Clone)]
struct VmEntry {
    rec: VmRecord,
    guar_mem: f64,
    windows: WindowVec,
    /// Effective departure: the record's, unless an explicit early
    /// departure overrode it.
    depart: Timestamp,
}

impl VmEntry {
    /// Formula 2's oversubscribed memory in window `w` — identical
    /// arithmetic to `VmDemand::va_demand(w).memory()`.
    #[inline]
    fn va_mem(&self, w: usize) -> f64 {
        (self.windows[w].memory() - self.guar_mem).max(0.0)
    }
}

/// One server's incremental sampling state.
#[derive(Debug, Clone)]
struct ServerAccount {
    capacity: ResourceVec,
    /// The next utilization sample to evaluate.
    next_sample: Timestamp,
    /// Placed VMs not yet admitted by the sampler, in (arrival, seq) order
    /// — the order placements happen in, so no sort is ever needed.
    pending: VecDeque<VmEntry>,
    /// VMs admitted by the sampler and not yet retired, in admission order.
    resident: Vec<VmEntry>,
    /// Formula 3 running sum: Σ guaranteed memory over `resident`.
    pa_sum: f64,
    /// Formula 4 running sums: Σ VA memory per window over `resident`.
    va_sums: Vec<f64>,
    samples: u64,
    cpu_violations: u64,
    mem_violations: u64,
}

impl ServerAccount {
    fn new(capacity: ResourceVec) -> Self {
        ServerAccount {
            capacity,
            next_sample: Timestamp::ZERO,
            pending: VecDeque::new(),
            resident: Vec::new(),
            pa_sum: 0.0,
            va_sums: Vec::new(),
            samples: 0,
            cpu_violations: 0,
            mem_violations: 0,
        }
    }

    /// Evaluate every sample strictly before `up_to` (and before the
    /// horizon). Admission, retirement, summation, and comparison order all
    /// mirror the batch sweep exactly.
    fn catch_up(&mut self, up_to: Timestamp, horizon: Timestamp, sample_every: SimDuration) {
        let bound = up_to.min(horizon);
        while self.next_sample < bound {
            let t = self.next_sample;
            // Admit VMs that have arrived by now, skipping any that already
            // departed between samples (they never touch the sums — exactly
            // as the batch sweep skips them).
            while self.pending.front().is_some_and(|e| e.rec.arrival <= t) {
                let e = self.pending.pop_front().expect("front exists");
                if e.depart > t {
                    self.pa_sum += e.guar_mem;
                    if self.va_sums.len() < e.windows.len() {
                        self.va_sums.resize(e.windows.len(), 0.0);
                    }
                    for w in 0..e.windows.len() {
                        self.va_sums[w] += e.va_mem(w);
                    }
                    self.resident.push(e);
                }
            }
            // Retire the departed, subtracting their sums in resident order.
            let (pa_sum, va_sums) = (&mut self.pa_sum, &mut self.va_sums);
            self.resident.retain(|e| {
                if e.depart <= t {
                    *pa_sum -= e.guar_mem;
                    for (w, sum) in va_sums.iter_mut().enumerate().take(e.windows.len()) {
                        *sum -= e.va_mem(w);
                    }
                    false
                } else {
                    true
                }
            });

            if !self.resident.is_empty() {
                self.samples += 1;
                let mut used = ResourceVec::ZERO;
                for e in &self.resident {
                    used += e.rec.used_at(t);
                }
                if used.cpu() > 0.5 * self.capacity.cpu() {
                    self.cpu_violations += 1;
                }
                // Memory contention: the working set exceeds the *backed*
                // memory — guaranteed (Formula 3) plus the multiplexed pool
                // (Formula 4) — capped at physical capacity. max(0) clamps
                // floating-point dust from the incremental sums.
                let pool = self.va_sums.iter().copied().fold(0.0, f64::max);
                let backed = (self.pa_sum.max(0.0) + pool).min(self.capacity.memory());
                if used.memory() > backed + 1e-9 {
                    self.mem_violations += 1;
                }
            }
            self.next_sample += sample_every;
        }
    }
}

/// The cluster-wide incremental accountant: per-server Formula 3/4 running
/// sums plus CPU/memory violation counters, maintained at event
/// granularity.
#[derive(Debug, Clone)]
pub struct ViolationAccountant {
    sample_every: SimDuration,
    horizon: Timestamp,
    servers: HashMap<ServerId, ServerAccount>,
}

impl ViolationAccountant {
    /// An accountant sampling every `sample_every` up to `horizon`.
    pub fn new(sample_every: SimDuration, horizon: Timestamp) -> Self {
        assert!(sample_every.ticks() > 0, "sample cadence must be positive");
        ViolationAccountant {
            sample_every,
            horizon,
            servers: HashMap::new(),
        }
    }

    /// Record a placement. Also opportunistically evaluates the samples the
    /// placement's server has pending (its state was constant since its
    /// previous event), which keeps per-server queues short.
    pub fn on_placed(
        &mut self,
        server: ServerId,
        capacity: ResourceVec,
        rec: &VmRecord,
        demand: &VmDemand,
    ) {
        let account = self
            .servers
            .entry(server)
            .or_insert_with(|| ServerAccount::new(capacity));
        account.catch_up(rec.arrival, self.horizon, self.sample_every);
        account.pending.push_back(VmEntry {
            rec: rec.clone(),
            guar_mem: demand.guaranteed.memory(),
            windows: demand.window_max.clone(),
            depart: rec.departure,
        });
    }

    /// Record an explicit early departure at `now`: samples before `now`
    /// still see the VM, later ones do not.
    pub fn on_early_departure(&mut self, server: ServerId, vm: VmId, now: Timestamp) {
        let Some(account) = self.servers.get_mut(&server) else {
            return;
        };
        account.catch_up(now, self.horizon, self.sample_every);
        for e in account
            .pending
            .iter_mut()
            .chain(account.resident.iter_mut())
        {
            if e.rec.id == vm {
                e.depart = e.depart.min(now);
            }
        }
    }

    /// Evaluate all servers' samples strictly before `now`.
    pub fn advance(&mut self, now: Timestamp) {
        for account in self.servers.values_mut() {
            account.catch_up(now, self.horizon, self.sample_every);
        }
    }

    /// Evaluate every remaining sample up to the horizon.
    pub fn finish(&mut self) {
        self.advance(Timestamp::from_ticks(u64::MAX));
    }

    /// Aggregate `(samples, cpu_violations, mem_violations)` so far.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.servers.values().fold((0, 0, 0), |(s, c, m), a| {
            (s + a.samples, c + a.cpu_violations, m + a.mem_violations)
        })
    }

    /// Copy out the full sampling state for the snapshot codec.
    ///
    /// Servers are emitted sorted by id (the `HashMap` order is
    /// per-process), but each server's `pending`/`resident` entry order is
    /// preserved **verbatim**: admission, retirement, and the Formula 3/4
    /// running sums all execute in entry order, so reordering here would
    /// change floating-point results after a restore. The running sums
    /// themselves travel as raw bits and are never recomputed.
    pub(crate) fn dump(&self) -> AccountantDump {
        let mut servers: Vec<ServerAccountDump> = self
            .servers
            .iter()
            .map(|(&server, a)| ServerAccountDump {
                server,
                capacity: a.capacity,
                next_sample: a.next_sample,
                pending: a.pending.iter().map(VmEntry::dump).collect(),
                resident: a.resident.iter().map(VmEntry::dump).collect(),
                pa_sum: a.pa_sum,
                va_sums: a.va_sums.clone(),
                samples: a.samples,
                cpu_violations: a.cpu_violations,
                mem_violations: a.mem_violations,
            })
            .collect();
        servers.sort_unstable_by_key(|s| s.server);
        AccountantDump { servers }
    }

    /// Every VM record the sampling state references, deduplicated, in
    /// dump order — the snapshot's embedded record table.
    pub(crate) fn referenced_records(&self) -> Vec<&VmRecord> {
        let mut seen = std::collections::HashSet::new();
        let mut records = Vec::new();
        let mut ids: Vec<ServerId> = self.servers.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let a = &self.servers[&id];
            for e in a.pending.iter().chain(a.resident.iter()) {
                if seen.insert(e.rec.id) {
                    records.push(&e.rec);
                }
            }
        }
        records
    }

    /// Rebuild an accountant from a dump, re-resolving each entry's record
    /// reference through `resolve` (a trace lookup on the parent side, the
    /// snapshot's leaked record table inside a process worker).
    ///
    /// # Panics
    ///
    /// Panics if `resolve` cannot produce a record for a referenced VM or
    /// the dump names a server twice — the snapshot and the record source
    /// disagree, and resampling from partial state would silently corrupt
    /// the violation counters.
    pub(crate) fn from_dump<'r>(
        sample_every: SimDuration,
        horizon: Timestamp,
        dump: AccountantDump,
        resolve: &impl Fn(VmId) -> Option<&'r VmRecord>,
    ) -> ViolationAccountant {
        assert!(sample_every.ticks() > 0, "sample cadence must be positive");
        let revive = |e: &VmEntryDump| -> VmEntry {
            let rec = resolve(e.vm)
                .unwrap_or_else(|| panic!("snapshot references unresolvable VM {:?}", e.vm));
            VmEntry {
                rec: rec.clone(),
                guar_mem: e.guar_mem,
                windows: e.windows.clone(),
                depart: e.depart,
            }
        };
        let mut servers = HashMap::with_capacity(dump.servers.len());
        for s in &dump.servers {
            let account = ServerAccount {
                capacity: s.capacity,
                next_sample: s.next_sample,
                pending: s.pending.iter().map(revive).collect(),
                resident: s.resident.iter().map(revive).collect(),
                pa_sum: s.pa_sum,
                va_sums: s.va_sums.clone(),
                samples: s.samples,
                cpu_violations: s.cpu_violations,
                mem_violations: s.mem_violations,
            };
            let previous = servers.insert(s.server, account);
            assert!(
                previous.is_none(),
                "accountant dump names server {:?} twice",
                s.server
            );
        }
        ViolationAccountant {
            sample_every,
            horizon,
            servers,
        }
    }
}

impl VmEntry {
    /// The wire-facing image of this entry (the record becomes an id).
    fn dump(&self) -> VmEntryDump {
        VmEntryDump {
            vm: self.rec.id,
            guar_mem: self.guar_mem,
            windows: self.windows.clone(),
            depart: self.depart,
        }
    }
}

/// One tracked VM as it crosses the wire: the `&VmRecord` collapses to its
/// id and is re-resolved on restore.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VmEntryDump {
    pub vm: VmId,
    pub guar_mem: f64,
    pub windows: WindowVec,
    pub depart: Timestamp,
}

/// One server's sampling state on the wire. Entry order in
/// `pending`/`resident` is decision-bearing (see
/// [`ViolationAccountant::dump`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ServerAccountDump {
    pub server: ServerId,
    pub capacity: ResourceVec,
    pub next_sample: Timestamp,
    pub pending: Vec<VmEntryDump>,
    pub resident: Vec<VmEntryDump>,
    pub pa_sum: f64,
    pub va_sums: Vec<f64>,
    pub samples: u64,
    pub cpu_violations: u64,
    pub mem_violations: u64,
}

/// The accountant's wire image: per-server states sorted by server id.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AccountantDump {
    pub servers: Vec<ServerAccountDump>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_trace::{generate, TraceConfig};

    /// The accountant applied to a whole placed-everywhere toy stream must
    /// agree with first-principles sampling.
    #[test]
    fn counts_match_direct_sampling_on_one_server() {
        let trace = generate(&TraceConfig::small(7));
        let horizon = trace.horizon;
        let every = SimDuration::from_hours(2);
        let server = ServerId::new(0);
        let capacity = ResourceVec::new(16.0, 64.0, 40.0, 4096.0);

        // Put the first 12 VMs (by arrival) all on one tiny server.
        let mut acc = ViolationAccountant::new(every, horizon);
        let vms: Vec<&VmRecord> = trace.vms.iter().take(12).collect();
        for vm in &vms {
            let demand = VmDemand::unpredicted(vm.id, vm.demand());
            acc.on_placed(server, capacity, vm, &demand);
        }
        acc.finish();
        let (samples, cpu, mem) = acc.totals();

        // First principles: walk every sample, rebuilding state from scratch.
        let (mut e_samples, mut e_cpu, mut e_mem) = (0u64, 0u64, 0u64);
        let mut t = Timestamp::ZERO;
        while t < horizon {
            let alive: Vec<&&VmRecord> = vms.iter().filter(|v| v.alive_at(t)).collect();
            if !alive.is_empty() {
                e_samples += 1;
                let mut used = ResourceVec::ZERO;
                let mut pa = 0.0;
                for v in &alive {
                    used += v.used_at(t);
                    pa += v.demand().memory(); // unpredicted: fully guaranteed
                }
                if used.cpu() > 0.5 * capacity.cpu() {
                    e_cpu += 1;
                }
                let backed = pa.min(capacity.memory());
                if used.memory() > backed + 1e-9 {
                    e_mem += 1;
                }
            }
            t += every;
        }
        assert_eq!(samples, e_samples);
        assert_eq!(cpu, e_cpu);
        assert_eq!(mem, e_mem);
    }

    #[test]
    fn early_departure_shortens_residency() {
        let trace = generate(&TraceConfig::small(9));
        let vm = trace
            .vms
            .iter()
            .find(|v| v.lifetime() > SimDuration::from_days(2))
            .expect("a long vm");
        let server = ServerId::new(0);
        let capacity = ResourceVec::new(96.0, 384.0, 40.0, 4096.0);
        let every = SimDuration::from_hours(2);

        let mut full = ViolationAccountant::new(every, trace.horizon);
        full.on_placed(
            server,
            capacity,
            vm,
            &VmDemand::unpredicted(vm.id, vm.demand()),
        );
        full.finish();

        let mut early = ViolationAccountant::new(every, trace.horizon);
        early.on_placed(
            server,
            capacity,
            vm,
            &VmDemand::unpredicted(vm.id, vm.demand()),
        );
        early.on_early_departure(server, vm.id, vm.arrival + SimDuration::from_hours(4));
        early.finish();

        assert!(early.totals().0 < full.totals().0);
    }

    #[test]
    fn dump_restore_resumes_bit_identically() {
        let trace = generate(&TraceConfig::small(11));
        let capacity = ResourceVec::new(48.0, 192.0, 40.0, 4096.0);
        let every = SimDuration::from_hours(2);

        let mut acc = ViolationAccountant::new(every, trace.horizon);
        for (i, vm) in trace.vms.iter().take(30).enumerate() {
            let demand = VmDemand::unpredicted(vm.id, vm.demand());
            acc.on_placed(ServerId::new((i % 3) as u64), capacity, vm, &demand);
        }
        // Catch up partway so both queues and the running sums are nonempty.
        acc.advance(Timestamp::from_ticks(trace.horizon.ticks() / 2));

        let dump = acc.dump();
        let by_id: std::collections::HashMap<VmId, &VmRecord> =
            trace.vms.iter().map(|v| (v.id, v)).collect();
        let mut restored =
            ViolationAccountant::from_dump(every, trace.horizon, dump.clone(), &|vm| {
                by_id.get(&vm).copied()
            });
        assert_eq!(restored.dump(), dump, "restore re-dumps identically");

        // Both halves finish to the horizon with identical counters: the
        // restored sums continued from the same bits in the same order.
        acc.finish();
        restored.finish();
        assert_eq!(restored.totals(), acc.totals());
        assert_eq!(restored.dump(), acc.dump());
    }

    #[test]
    #[should_panic(expected = "unresolvable VM")]
    fn restore_with_missing_record_panics() {
        let trace = generate(&TraceConfig::small(11));
        let every = SimDuration::from_hours(2);
        let mut acc = ViolationAccountant::new(every, trace.horizon);
        let vm = &trace.vms[0];
        acc.on_placed(
            ServerId::new(0),
            ResourceVec::new(48.0, 192.0, 40.0, 4096.0),
            vm,
            &VmDemand::unpredicted(vm.id, vm.demand()),
        );
        let dump = acc.dump();
        let _ = ViolationAccountant::from_dump(every, trace.horizon, dump, &|_| None);
    }
}

//! The single-shard event-driven cluster controller.

use crate::account::{AccountantDump, ViolationAccountant};
use crate::request::{LatencyHistogram, Request, Response, StatsReport};
use crate::store::{Handle, ResidentStore, StoreDump};
use crate::telemetry::ControllerTelemetry;
use crate::wire::Snapshot;
use coach_predict::DemandPrediction;
use coach_sched::{
    ClusterScheduler, ClusterSchedulerDump, PlacementHeuristic, PlacementOutcome, ScanStrategy,
    VmDemand,
};
use coach_sim::{
    estimate_probe_capacity, measure_probe_capacity, probe_demand, PackingResult, PolicyConfig,
    Predictor, ProbeMode, VIOLATION_SAMPLE_EVERY,
};
use coach_telemetry::{Registry, RegistrySnapshot, SpanRing, TelemetryConfig};
use coach_trace::{Cluster, Trace, VmRecord};
use coach_types::prelude::*;
use coach_wire::WireError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// The oversubscription policy this controller admits under.
    pub policy: PolicyConfig,
    /// Fraction of each cluster's servers to build (mirrors the batch
    /// experiment's reduced server budget). Must be in `(0, 1]`.
    pub server_fraction: f64,
    /// Placement heuristic (the paper packs BestFit).
    pub heuristic: PlacementHeuristic,
    /// Candidate-search strategy.
    pub scan: ScanStrategy,
    /// End of the violation-sampling range.
    pub horizon: Timestamp,
    /// Violation-sampling cadence (the batch sweep's two hours by default).
    pub sample_every: SimDuration,
    /// Record admission latency for every `latency_stride`-th arrival (the
    /// clock reads would otherwise bias sub-microsecond placements).
    pub latency_stride: usize,
    /// Record an occupancy-delta timeline so a sharded deployment can
    /// reconstruct the exact global `peak_servers_in_use` (the running peak
    /// of a *sum* across shards is not the sum of per-shard peaks).
    pub occupancy_timeline: bool,
    /// How [`Request::Probe`] measurements are produced: the exhaustive
    /// pack/unpack fill (the batch replay's exact float trajectory), the
    /// read-only incremental estimator over cached per-server summaries, or
    /// both with an equality assertion
    /// ([`ProbeMode::Differential`]).
    pub probe_mode: ProbeMode,
    /// SPSC lane implementation for the sharded worker runtime: the
    /// lock-free ring (default) or the mutex reference lane. Lane choice
    /// never changes decisions — only the cost of moving them.
    pub lanes: LaneKind,
    /// Where shard worker threads land: unpinned, packed into one cache
    /// domain, or spread across domains (best-effort pinning; see
    /// [`coach_types::topology`]).
    pub placement: PlacementPolicy,
    /// Where a sharded deployment's workers execute: in-process threads
    /// (default) or supervised child processes speaking `coach-wire`
    /// frames over pipes ([`coach_types::runtime::ProcessPool`]). A
    /// single-shard [`Controller`] ignores this. The process backend
    /// re-derives predictions inside each child from an
    /// [`coach_sim::Oracle`] over the same window partition, so it
    /// requires an Oracle-equivalent predictor (the prederived cache is
    /// bit-identical by construction).
    pub backend: WorkerBackend,
    /// How much telemetry the deployment records
    /// ([`coach_telemetry::TelemetryConfig`], PR 9): `Off` (default)
    /// compiles instrumented call sites down to a `None` check,
    /// `CountersOnly` arms the registry, `Full` adds span tracing.
    /// Decisions are bit-identical across all three. A pure runtime knob:
    /// it never crosses the wire (snapshots restore with telemetry Off and
    /// the deployment re-arms).
    pub telemetry: TelemetryConfig,
}

impl ServeConfig {
    /// The configuration matching [`coach_sim::packing_experiment`]'s
    /// semantics for a given policy, budget, and horizon.
    pub fn replaying(policy: PolicyConfig, server_fraction: f64, horizon: Timestamp) -> Self {
        ServeConfig {
            policy,
            server_fraction,
            heuristic: PlacementHeuristic::BestFit,
            scan: ScanStrategy::Indexed,
            horizon,
            sample_every: VIOLATION_SAMPLE_EVERY,
            latency_stride: 8,
            occupancy_timeline: false,
            // Exhaustive keeps even the probe fill's add/remove float dust
            // identical to the batch experiment; a deployment that doesn't
            // need batch bit-identity should switch to `Estimated`.
            probe_mode: ProbeMode::Exhaustive,
            lanes: LaneKind::Ring,
            // Benchmarks opt into pinning explicitly; the library default
            // leaves placement to the OS so embedding tests and multiple
            // controllers in one process never fight over CPU 0..k.
            placement: PlacementPolicy::None,
            backend: WorkerBackend::Thread,
            telemetry: TelemetryConfig::Off,
        }
    }
}

/// One cluster as the controller runs it.
#[derive(Debug)]
struct ClusterState {
    id: ClusterId,
    capacity: ResourceVec,
    sched: ClusterScheduler,
}

/// An occupancy delta: `(time, kind, seq)` is the batch replay's exact
/// event-sort key (departures before arrivals at equal times, then arrival
/// sequence), so merging shard timelines reconstructs the global order.
pub(crate) type OccDelta = (u64, u8, u64, i32);

/// Aggregate counters (see [`StatsReport`] for the documented view).
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    accepted: u64,
    rejected: u64,
    departed: u64,
    ticks: u64,
    accepted_core_hours: f64,
    accepted_gb_hours: f64,
}

/// An online, event-driven cluster controller over the indexed
/// [`ClusterScheduler`] and a [`Predictor`].
///
/// Feed it a time-ordered stream of [`Request`]s; departures are managed
/// internally in a binary min-heap keyed by the batch replay's event-sort
/// key, so every event costs O(log resident) — no pre-sorted batch exists
/// anywhere. Driven by [`crate::RequestSource::replaying`], its admission
/// decisions, probe measurements, occupancy peak, and violation rates are
/// **identical** to [`coach_sim::packing_experiment`] on the same workload
/// — bit-exact, floating-point sums included — enforced by differential
/// tests across seeds, policies, and random interleavings.
///
/// The `'a` lifetime ties the controller to its *predictor* only. Request
/// records are copied into the controller's own state where needed (the
/// accountant owns its records since PR 10), so arrivals may borrow from
/// transient buffers — the streaming ingestion path feeds bounded chunks
/// that are dropped as soon as each segment is handled.
pub struct Controller<'a> {
    config: ServeConfig,
    predictor: &'a dyn Predictor,
    tw: TimeWindows,
    /// Sorted by cluster id; arrivals resolve their cluster by binary
    /// search instead of a hash probe.
    clusters: Vec<ClusterState>,
    /// Resident VMs in an arena of struct-of-arrays columns. Generational
    /// handles make the heap's lazy cancellation an integer comparison.
    residents: ResidentStore,
    /// Scheduled departures: `Reverse((time, seq, handle))` pops in the
    /// batch replay's exact departure order (`seq` is unique, so packing a
    /// store handle in the third slot never reorders anything).
    departures: BinaryHeap<Reverse<(Timestamp, u64, u64)>>,
    /// Arrival sequence number (the batch replay's trace index).
    seq: u64,
    probe_templates: Vec<VmDemand>,
    probe_counts: Vec<u64>,
    accountant: ViolationAccountant,
    latency: LatencyHistogram,
    counters: Counters,
    in_use: usize,
    peak_in_use: usize,
    timeline: Vec<OccDelta>,
    /// Armed telemetry, or `None` under [`TelemetryConfig::Off`] — the
    /// guarded fast path every instrumented site branches on.
    telemetry: Option<Box<ControllerTelemetry>>,
}

impl<'a> Controller<'a> {
    /// A controller over explicit clusters. `server_fraction` of each
    /// cluster's servers are built, exactly as the batch experiment does.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty or `server_fraction` is not in
    /// `(0, 1]`.
    pub fn new(clusters: &[Cluster], predictor: &'a dyn Predictor, config: ServeConfig) -> Self {
        assert!(!clusters.is_empty(), "need at least one cluster");
        assert!(
            config.server_fraction > 0.0 && config.server_fraction <= 1.0,
            "server fraction in (0, 1]"
        );
        let tw = predictor.time_windows();
        let mut states: Vec<ClusterState> = clusters
            .iter()
            .map(|cluster| {
                let n = ((cluster.servers.len() as f64 * config.server_fraction).ceil() as usize)
                    .max(1);
                let ids: Vec<ServerId> = cluster.servers.iter().copied().take(n).collect();
                ClusterState {
                    id: cluster.id,
                    capacity: cluster.hardware.capacity,
                    sched: ClusterScheduler::with_strategy(
                        &ids,
                        cluster.hardware.capacity,
                        tw.count(),
                        config.heuristic,
                        config.scan,
                    ),
                }
            })
            .collect();
        states.sort_by_key(|c| c.id);
        let probe_templates = (0..tw.count())
            .map(|rotation| {
                probe_demand(
                    0,
                    config.policy.policy,
                    config.policy.percentile,
                    tw.count(),
                    rotation,
                )
            })
            .collect();
        let mut controller = Controller {
            accountant: ViolationAccountant::new(config.sample_every, config.horizon),
            config,
            predictor,
            tw,
            clusters: states,
            residents: ResidentStore::new(),
            departures: BinaryHeap::new(),
            seq: 0,
            probe_templates,
            probe_counts: Vec::new(),
            latency: LatencyHistogram::new(),
            counters: Counters::default(),
            in_use: 0,
            peak_in_use: 0,
            timeline: Vec::new(),
            telemetry: None,
        };
        if !config.telemetry.is_off() {
            // Standalone arming with a fresh registry; a sharded deployment
            // re-arms each shard onto its shared registry right after
            // construction (`enable_telemetry`), before any events flow.
            controller.enable_telemetry(
                config.telemetry,
                std::sync::Arc::new(Registry::new()),
                0,
                Instant::now(),
            );
        }
        controller
    }

    /// A controller over a trace's clusters, configured to replay it with
    /// the batch experiment's semantics.
    pub fn replaying(
        trace: &Trace,
        predictor: &'a dyn Predictor,
        policy: PolicyConfig,
        server_fraction: f64,
    ) -> Self {
        Controller::new(
            &trace.clusters,
            predictor,
            ServeConfig::replaying(policy, server_fraction, trace.horizon),
        )
    }

    /// The window partition in use.
    pub fn time_windows(&self) -> TimeWindows {
        self.tw
    }

    /// Handle one request. Requests must arrive in non-decreasing time
    /// order.
    pub fn handle(&mut self, request: Request<'_>) -> Response {
        // Broadcast tokens get a span each (they are rare relative to
        // arrivals); arrival spans ride the latency-stride sampling inside
        // `admit`, where the clock reads are already paid.
        let span = match &self.telemetry {
            Some(t) if t.spans_armed() && !matches!(request, Request::Arrive(_)) => {
                let name = match request {
                    Request::Arrive(_) => unreachable!("excluded above"),
                    Request::Depart { .. } => "serve.depart",
                    Request::Tick { .. } => "serve.tick",
                    Request::Probe { .. } => "serve.probe",
                    Request::Stats { .. } => "serve.stats",
                };
                Some((name, SpanRing::begin()))
            }
            _ => None,
        };
        let response = self.dispatch(request);
        if let Some((name, start)) = span {
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.end_span(name, start);
            }
        }
        response
    }

    /// The un-instrumented event loop body.
    fn dispatch(&mut self, request: Request<'_>) -> Response {
        match request {
            Request::Arrive(rec) => self.handle_arrival(rec),
            Request::Depart { vm, now } => self.handle_departure(vm, now),
            Request::Tick { now } => {
                self.drain_departures(now, true);
                self.accountant.advance(now);
                self.counters.ticks += 1;
                if let Some(t) = &self.telemetry {
                    t.ticks.inc();
                }
                Response::Ticked
            }
            Request::Probe { now } => {
                // Batch semantics: a probe at `now` observes every event
                // strictly before it (a departure at exactly `now` is the
                // crossing event, applied after the measurement).
                self.drain_departures(now, false);
                let count = match self.config.probe_mode {
                    ProbeMode::Exhaustive => measure_probe_capacity(
                        self.clusters.iter_mut().map(|c| &mut c.sched),
                        &self.probe_templates,
                    ),
                    ProbeMode::Estimated => estimate_probe_capacity(
                        self.clusters.iter().map(|c| &c.sched),
                        &self.probe_templates,
                    ),
                    ProbeMode::Differential => {
                        let estimated = estimate_probe_capacity(
                            self.clusters.iter().map(|c| &c.sched),
                            &self.probe_templates,
                        );
                        let exhaustive = measure_probe_capacity(
                            self.clusters.iter_mut().map(|c| &mut c.sched),
                            &self.probe_templates,
                        );
                        assert_eq!(
                            estimated, exhaustive,
                            "probe estimator diverged from the exhaustive fill at {now:?}"
                        );
                        exhaustive
                    }
                };
                self.probe_counts.push(count);
                if let Some(t) = &self.telemetry {
                    t.probes.inc();
                    t.probe_capacity.add(count);
                }
                Response::ProbeCapacity(count)
            }
            Request::Stats { now } => {
                self.drain_departures(now, false);
                self.accountant.advance(now);
                Response::Stats(self.stats(now))
            }
        }
    }

    fn handle_arrival(&mut self, rec: &VmRecord) -> Response {
        let prediction = self.predictor.predict(rec, self.config.policy.percentile);
        self.admit(rec, prediction)
    }

    /// Admit a segment of arrivals, deriving every demand prediction
    /// through the predictor's batch entry point
    /// ([`Predictor::predict_batch`]) before the first placement — the
    /// sharded dispatcher's cold path, one call per routed segment.
    /// Responses come back in input order.
    ///
    /// Decision-identical to feeding each arrival through
    /// [`Controller::handle`]: predictions depend only on the VM record
    /// (and `predict_batch` must equal the per-item loop), so deriving them
    /// ahead of the interleaved departure drains changes nothing.
    pub fn handle_arrivals(&mut self, recs: &[&VmRecord]) -> Vec<Response> {
        let predictions = self
            .predictor
            .predict_batch(recs, self.config.policy.percentile);
        recs.iter()
            .zip(predictions)
            .map(|(rec, prediction)| self.admit(rec, prediction))
            .collect()
    }

    fn admit(&mut self, rec: &VmRecord, prediction: Option<DemandPrediction>) -> Response {
        let t = rec.arrival;
        // Departures sort before arrivals at equal timestamps (free before
        // alloc), exactly as the batch replay orders its events.
        self.drain_departures(t, true);
        let seq = self.seq;
        self.seq += 1;

        let ci = self
            .clusters
            .binary_search_by_key(&rec.cluster, |c| c.id)
            .expect("arrival for a cluster this controller owns");
        let demand = VmDemand::from_prediction(
            rec.id,
            rec.demand(),
            self.config.policy.policy,
            prediction.as_ref(),
        );

        let sample_latency = self.config.latency_stride > 0
            && (seq as usize).is_multiple_of(self.config.latency_stride);
        let cluster = &mut self.clusters[ci];
        let in_use_before = cluster.sched.servers_in_use();
        let (outcome, elapsed_ns, t0_sampled) = if sample_latency {
            let t0 = Instant::now();
            let outcome = cluster.sched.place(demand.clone());
            (outcome, Some(t0.elapsed().as_nanos() as u64), Some(t0))
        } else {
            (cluster.sched.place(demand.clone()), None, None)
        };
        match outcome {
            PlacementOutcome::Placed(server) => {
                self.counters.accepted += 1;
                let rh = rec.resource_hours();
                self.counters.accepted_core_hours += rh.cpu();
                self.counters.accepted_gb_hours += rh.memory();
                let handle = self.residents.insert(rec.id, ci as u32, server, &demand);
                // A zero-length VM's departure event precedes its arrival
                // in the batch sort and no-ops there; never scheduling it
                // preserves that behavior.
                if rec.departure > rec.arrival {
                    self.departures
                        .push(Reverse((rec.departure, seq, handle.to_raw())));
                }
                self.accountant
                    .on_placed(server, cluster.capacity, rec, &demand);
            }
            PlacementOutcome::Rejected => self.counters.rejected += 1,
        }
        if let Some(ns) = elapsed_ns {
            self.latency.record_ns(ns);
        }
        if let Some(tel) = self.telemetry.as_deref_mut() {
            match outcome {
                PlacementOutcome::Placed(_) => tel.accepted.inc(),
                PlacementOutcome::Rejected => tel.rejected.inc(),
            }
            if let Some(ns) = elapsed_ns {
                tel.admission.record_ns(ns);
                tel.admit_span(t0_sampled.expect("timed when sampled"), ns);
            }
        }
        self.note_occupancy(ci, in_use_before, t.ticks(), 1, seq);
        Response::Admission {
            vm: rec.id,
            outcome,
        }
    }

    fn handle_departure(&mut self, vm: VmId, now: Timestamp) -> Response {
        self.drain_departures(now, true);
        let found = match self.residents.remove_by_id(vm) {
            Some(row) => {
                let ci = row.cluster as usize;
                // The store remembers where the VM landed, so the early
                // departure needs no scheduler lookup.
                self.accountant.on_early_departure(row.server, vm, now);
                let before = self.clusters[ci].sched.servers_in_use();
                self.clusters[ci].sched.remove(vm);
                self.counters.departed += 1;
                if let Some(t) = &self.telemetry {
                    t.departed.inc();
                }
                self.note_occupancy(ci, before, now.ticks(), 0, u64::MAX);
                true
            }
            None => false,
        };
        Response::Departed { vm, found }
    }

    /// Pop and apply scheduled departures up to `t` (inclusive when
    /// `inclusive`), in the batch replay's `(time, seq)` order.
    fn drain_departures(&mut self, t: Timestamp, inclusive: bool) {
        while let Some(&Reverse((when, seq, handle_raw))) = self.departures.peek() {
            if when > t || (!inclusive && when == t) {
                break;
            }
            self.departures.pop();
            // Lazily cancelled (stale generation) if an explicit departure
            // already removed it.
            if let Some(row) = self.residents.remove(Handle::from_raw(handle_raw)) {
                let ci = row.cluster as usize;
                let before = self.clusters[ci].sched.servers_in_use();
                self.clusters[ci].sched.remove(row.vm);
                self.counters.departed += 1;
                if let Some(t) = &self.telemetry {
                    t.departed.inc();
                }
                self.note_occupancy(ci, before, when.ticks(), 0, seq);
            }
        }
    }

    /// Fold one cluster's occupancy change into the running total, the
    /// peak, and (if enabled) the delta timeline.
    fn note_occupancy(&mut self, ci: usize, before: usize, ticks: u64, kind: u8, seq: u64) {
        let after = self.clusters[ci].sched.servers_in_use();
        if after == before {
            return;
        }
        self.in_use = self.in_use + after - before;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        if self.config.occupancy_timeline {
            self.timeline
                .push((ticks, kind, seq, after as i32 - before as i32));
        }
    }

    /// Snapshot the controller's counters (the [`Request::Stats`] payload).
    pub fn stats(&self, now: Timestamp) -> StatsReport {
        let (samples, cpu, mem) = self.accountant.totals();
        StatsReport {
            now,
            accepted: self.counters.accepted,
            rejected: self.counters.rejected,
            departed: self.counters.departed,
            resident_vms: self.residents.len(),
            servers_in_use: self.in_use,
            peak_servers_in_use: self.peak_in_use,
            accepted_core_hours: self.counters.accepted_core_hours,
            accepted_gb_hours: self.counters.accepted_gb_hours,
            probe_measurements: self.probe_counts.len() as u64,
            probe_capacity_total: self.probe_counts.iter().sum(),
            violation_samples: samples,
            cpu_violations: cpu,
            mem_violations: mem,
            ticks: self.counters.ticks,
            admission_p50_us: self.latency.quantile_us(0.50),
            admission_p99_us: self.latency.quantile_us(0.99),
            // A single controller has no worker lanes; the sharded
            // dispatcher overwrites these at merge time.
            ..StatsReport::default()
        }
    }

    /// The admission-latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Arm (or re-arm) telemetry: register this controller's series on
    /// `registry` under `(policy, shard)` labels, and allocate the span
    /// ring in [`TelemetryConfig::Full`] mode. `Off` disarms. A sharded
    /// deployment calls this per shard with its shared registry and
    /// timeline origin; child process workers arm on a
    /// `WireCmd::Telemetry` frame with a private registry.
    pub fn enable_telemetry(
        &mut self,
        mode: TelemetryConfig,
        registry: std::sync::Arc<Registry>,
        shard: u32,
        origin: Instant,
    ) {
        self.config.telemetry = mode;
        self.telemetry = if mode.is_off() {
            None
        } else {
            Some(ControllerTelemetry::new(
                mode,
                registry,
                self.config.policy.label,
                shard,
                origin,
            ))
        };
    }

    /// The registry this controller records into, if telemetry is armed.
    pub fn telemetry_registry(&self) -> Option<std::sync::Arc<Registry>> {
        self.telemetry
            .as_ref()
            .map(|t| std::sync::Arc::clone(&t.registry))
    }

    /// The controller's span ring (armed and in `Full` mode only).
    pub fn telemetry_spans(&self) -> Option<&SpanRing> {
        self.telemetry.as_ref().and_then(|t| t.spans.as_ref())
    }

    /// Mirror span-ring overflow drops into their counter (called at
    /// export barriers so drops are visible in the registry).
    pub fn sync_telemetry(&mut self) {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.sync_span_drops();
        }
    }

    /// Drain the registry delta accumulated since the last drain — what a
    /// child shard worker ships back for a `WireCmd::Telemetry` barrier.
    /// `None` when telemetry is off.
    pub(crate) fn drain_telemetry(&mut self) -> Option<RegistrySnapshot> {
        self.telemetry
            .as_deref_mut()
            .map(ControllerTelemetry::drain)
    }

    /// Retire every remaining scheduled departure, flush the accountant to
    /// the horizon, and assemble the batch experiment's result struct.
    ///
    /// Idempotent; a sharded deployment calls it per shard and merges.
    pub fn finalize(&mut self) -> PackingResult {
        self.drain_departures(Timestamp::from_ticks(u64::MAX), true);
        self.accountant.finish();
        self.stats(self.config.horizon)
            .to_packing_result(self.config.policy.label)
    }

    /// The configuration this controller runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Switch how subsequent [`Request::Probe`]s are measured — a live
    /// reconfiguration (e.g. flip an exhaustive-probing controller to the
    /// read-only estimator once its differential window ends).
    pub fn set_probe_mode(&mut self, mode: ProbeMode) {
        self.config.probe_mode = mode;
    }

    /// Per-measurement probe counts (a sharded deployment sums these
    /// elementwise across shards).
    pub(crate) fn probe_counts(&self) -> &[u64] {
        &self.probe_counts
    }

    /// Drain the occupancy-delta timeline recorded since the last call
    /// (empty unless [`ServeConfig::occupancy_timeline`] was set). The
    /// sharded dispatcher accumulates these drains per shard, so each
    /// snapshot ships only the deltas since the previous synchronization.
    pub(crate) fn take_timeline(&mut self) -> Vec<OccDelta> {
        std::mem::take(&mut self.timeline)
    }

    /// The cluster ids this controller owns, in sorted order.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.clusters.iter().map(|c| c.id)
    }

    /// The summed guaranteed portion across every resident VM's admitted
    /// demand — an O(residents) fold over one contiguous resident-store
    /// column, without touching the schedulers.
    pub fn resident_guaranteed(&self) -> ResourceVec {
        self.residents.guaranteed_total()
    }

    /// Serialize the full decision-bearing state into a versioned
    /// [`Snapshot`] frame — schedulers, resident store, departure heap,
    /// accountant, counters, latency histogram, and the undrained
    /// occupancy timeline, plus an embedded table of every [`VmRecord`]
    /// the accountant still references (so the snapshot restores without
    /// the original trace in hand).
    ///
    /// Non-destructive: the controller keeps serving, and snapshotting
    /// twice at the same point yields identical bytes. Every accumulated
    /// `f64` travels as raw IEEE-754 bits, so a restored controller's
    /// future decisions are bit-identical to this one's.
    pub fn snapshot(&self) -> Snapshot {
        // BinaryHeap iteration order is unspecified; the sorted vector is
        // the canonical wire form (and `BinaryHeap::from` on restore pops
        // it in the identical order — entries are unique).
        let mut departures: Vec<(Timestamp, u64, u64)> = self
            .departures
            .iter()
            .map(|Reverse(entry)| *entry)
            .collect();
        departures.sort_unstable();
        let (buckets, latency_count, latency_sum_ns) = self.latency.parts();
        let dump = ControllerDump {
            config: self.config,
            windows_per_day: self.tw.count() as u32,
            clusters: self
                .clusters
                .iter()
                .map(|c| (c.id, c.capacity, c.sched.dump()))
                .collect(),
            store: self.residents.dump(),
            departures,
            seq: self.seq,
            probe_counts: self.probe_counts.clone(),
            accountant: self.accountant.dump(),
            latency_buckets: *buckets,
            latency_count,
            latency_sum_ns,
            accepted: self.counters.accepted,
            rejected: self.counters.rejected,
            departed: self.counters.departed,
            ticks: self.counters.ticks,
            accepted_core_hours: self.counters.accepted_core_hours,
            accepted_gb_hours: self.counters.accepted_gb_hours,
            in_use: self.in_use,
            peak_in_use: self.peak_in_use,
            timeline: self.timeline.clone(),
            records: self
                .accountant
                .referenced_records()
                .into_iter()
                .cloned()
                .collect(),
        };
        if let Some(t) = &self.telemetry {
            let t0 = Instant::now();
            let snapshot = Snapshot::seal(&dump);
            let secs = t0.elapsed().as_secs_f64();
            if secs > 0.0 {
                t.encode_bps.set(snapshot.len() as f64 / secs);
            }
            return snapshot;
        }
        Snapshot::seal(&dump)
    }

    /// Rebuild a controller from a [`Snapshot`], resuming service exactly
    /// where [`Controller::snapshot`] left off. Each accountant entry's
    /// record reference is re-resolved through `resolve` — a trace lookup
    /// on the parent side, or the snapshot's own leaked
    /// [`Snapshot::records`] table inside a process worker.
    ///
    /// Structural problems in the bytes (truncation, bad tags, a window
    /// partition that disagrees with `predictor`, an out-of-range server
    /// fraction) surface as `Err(WireError)`.
    ///
    /// # Panics
    ///
    /// Panics if a structurally valid dump is semantically inconsistent:
    /// `resolve` cannot produce a referenced record, a VM occupies two
    /// resident slots, or the accountant names a server twice.
    pub fn restore<'r>(
        predictor: &'a dyn Predictor,
        snapshot: &Snapshot,
        resolve: impl Fn(VmId) -> Option<&'r VmRecord>,
    ) -> Result<Controller<'a>, WireError> {
        let dump: ControllerDump = coach_wire::open_frame(snapshot.bytes())?;
        let tw = predictor.time_windows();
        if dump.windows_per_day as usize != tw.count() {
            return Err(WireError::Invalid {
                context: "snapshot window partition",
            });
        }
        if !(dump.config.server_fraction > 0.0 && dump.config.server_fraction <= 1.0) {
            return Err(WireError::Invalid {
                context: "snapshot server fraction",
            });
        }
        if dump.clusters.is_empty() || dump.clusters.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(WireError::Invalid {
                context: "snapshot cluster set",
            });
        }
        let config = dump.config;
        let probe_templates = (0..tw.count())
            .map(|rotation| {
                probe_demand(
                    0,
                    config.policy.policy,
                    config.policy.percentile,
                    tw.count(),
                    rotation,
                )
            })
            .collect();
        Ok(Controller {
            accountant: ViolationAccountant::from_dump(
                config.sample_every,
                config.horizon,
                dump.accountant,
                &resolve,
            ),
            config,
            predictor,
            tw,
            clusters: dump
                .clusters
                .into_iter()
                .map(|(id, capacity, sched)| ClusterState {
                    id,
                    capacity,
                    sched: ClusterScheduler::from_dump(sched),
                })
                .collect(),
            residents: ResidentStore::from_dump(dump.store),
            departures: BinaryHeap::from(
                dump.departures.into_iter().map(Reverse).collect::<Vec<_>>(),
            ),
            seq: dump.seq,
            probe_templates,
            probe_counts: dump.probe_counts,
            latency: LatencyHistogram::from_parts(
                dump.latency_buckets,
                dump.latency_count,
                dump.latency_sum_ns,
            ),
            counters: Counters {
                accepted: dump.accepted,
                rejected: dump.rejected,
                departed: dump.departed,
                ticks: dump.ticks,
                accepted_core_hours: dump.accepted_core_hours,
                accepted_gb_hours: dump.accepted_gb_hours,
            },
            in_use: dump.in_use,
            peak_in_use: dump.peak_in_use,
            timeline: dump.timeline,
            // Telemetry never crosses the wire (the decoded config is Off);
            // the restoring deployment re-arms via `enable_telemetry`.
            telemetry: None,
        })
    }
}

/// The controller's wire image: everything [`Controller::snapshot`]
/// serializes, in one flat struct the codec walks field by field.
/// `probe_templates` is deliberately absent — it is a pure function of the
/// config and window partition, rebuilt on restore.
#[derive(Debug, Clone)]
pub(crate) struct ControllerDump {
    pub config: ServeConfig,
    /// The predictor's window partition, pinned so a restore under a
    /// mismatched predictor fails instead of silently re-bucketing.
    pub windows_per_day: u32,
    /// `(id, hardware capacity, scheduler state)` per cluster, in the
    /// controller's sorted-by-id order.
    pub clusters: Vec<(ClusterId, ResourceVec, ClusterSchedulerDump)>,
    pub store: StoreDump,
    /// The departure heap's entries, sorted ascending (the canonical
    /// form; the heap rebuilds losslessly because pop order is total).
    pub departures: Vec<(Timestamp, u64, u64)>,
    pub seq: u64,
    pub probe_counts: Vec<u64>,
    pub accountant: AccountantDump,
    pub latency_buckets: [u64; 64],
    pub latency_count: u64,
    pub latency_sum_ns: u64,
    pub accepted: u64,
    pub rejected: u64,
    pub departed: u64,
    pub ticks: u64,
    pub accepted_core_hours: f64,
    pub accepted_gb_hours: f64,
    pub in_use: usize,
    pub peak_in_use: usize,
    pub timeline: Vec<OccDelta>,
    /// Every record the accountant references, deduplicated — the
    /// self-contained table a process worker leaks and resolves against.
    pub records: Vec<VmRecord>,
}

impl std::fmt::Debug for Controller<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("clusters", &self.clusters.len())
            .field("resident_vms", &self.residents.len())
            .field("accepted", &self.counters.accepted)
            .field("rejected", &self.counters.rejected)
            .finish_non_exhaustive()
    }
}

/// Replay a trace through a single-shard [`Controller`] — the online
/// drop-in for [`coach_sim::packing_experiment`], producing an identical
/// [`PackingResult`].
pub fn serve_trace(
    trace: &Trace,
    predictor: &dyn Predictor,
    policy: PolicyConfig,
    server_fraction: f64,
) -> PackingResult {
    let mut controller = Controller::replaying(trace, predictor, policy, server_fraction);
    for request in crate::RequestSource::replaying(trace) {
        controller.handle(request);
    }
    controller.finalize()
}

//! The arena-backed resident store: struct-of-arrays state for every VM a
//! controller currently hosts, addressed by generational [`Handle`]s.
//!
//! The PR 4/5 controller kept residency in a `HashMap<VmId, u32>` and let
//! the departure heap carry raw VM ids, so every scheduled departure paid a
//! hash probe just to learn whether its entry was stale. Here residency is
//! an arena: each placed VM occupies one slot across parallel columns (id,
//! cluster, server, and the demand summary fields), slots are recycled
//! through a free list, and a slot's generation bumps on every removal.
//! A [`Handle`] — slot index + the generation it was issued under — then
//! makes staleness a single integer comparison: the heap stores handles,
//! and a lazily-cancelled departure fails generation validation instead of
//! consulting a map. Only the explicit early-departure path (keyed by
//! [`VmId`] on the wire) still goes through a hash lookup.
//!
//! The columns are struct-of-arrays on purpose: aggregate gauges (e.g.
//! [`ResidentStore::guaranteed_total`]) fold one contiguous `ResourceVec`
//! column without touching ids, servers, or the scheduler.

use coach_sched::VmDemand;
use coach_types::prelude::*;
use std::collections::HashMap;

/// A generational reference to a slot in a [`ResidentStore`].
///
/// Valid until the resident it was issued for is removed; after that,
/// lookups with the stale handle return `None` (the slot may host a
/// different VM under a newer generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    index: u32,
    generation: u32,
}

impl Handle {
    /// Pack into one `u64` (slot in the high half) so heap entries stay
    /// plain integers.
    pub fn to_raw(self) -> u64 {
        (u64::from(self.index) << 32) | u64::from(self.generation)
    }

    /// Inverse of [`Handle::to_raw`].
    pub fn from_raw(raw: u64) -> Handle {
        Handle {
            index: (raw >> 32) as u32,
            generation: raw as u32,
        }
    }
}

/// One resident VM's row, copied out of the columns on access or removal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resident {
    /// The VM.
    pub vm: VmId,
    /// Index of the cluster it was placed in (the controller's dense
    /// cluster ordering, not the [`ClusterId`]).
    pub cluster: u32,
    /// The server hosting it.
    pub server: ServerId,
    /// The guaranteed portion of its admitted demand.
    pub guaranteed: ResourceVec,
    /// The elementwise peak over its per-window maxima.
    pub window_peak: ResourceVec,
}

/// The resident-VM arena. See the [module docs](self) for the layout.
#[derive(Debug, Default)]
pub struct ResidentStore {
    vm: Vec<VmId>,
    cluster: Vec<u32>,
    server: Vec<ServerId>,
    guaranteed: Vec<ResourceVec>,
    window_peak: Vec<ResourceVec>,
    /// Current generation per slot; odd while occupied, even while free
    /// (bumped on both insert and remove), so liveness needs no separate
    /// bitmap.
    generation: Vec<u32>,
    free: Vec<u32>,
    /// The explicit-departure index: the wire addresses VMs by id.
    by_id: HashMap<VmId, Handle>,
}

impl ResidentStore {
    /// An empty store.
    pub fn new() -> Self {
        ResidentStore::default()
    }

    /// Number of resident VMs.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no VM is resident.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Admit a placed VM, returning the handle its departure will use.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is already resident (the controller never places a
    /// VM twice).
    pub fn insert(
        &mut self,
        vm: VmId,
        cluster: u32,
        server: ServerId,
        demand: &VmDemand,
    ) -> Handle {
        let index = match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.vm[i] = vm;
                self.cluster[i] = cluster;
                self.server[i] = server;
                self.guaranteed[i] = demand.guaranteed;
                self.window_peak[i] = demand.window_peak();
                self.generation[i] = self.generation[i].wrapping_add(1);
                slot
            }
            None => {
                let slot = u32::try_from(self.vm.len()).expect("fewer than 2^32 residents");
                self.vm.push(vm);
                self.cluster.push(cluster);
                self.server.push(server);
                self.guaranteed.push(demand.guaranteed);
                self.window_peak.push(demand.window_peak());
                self.generation.push(1);
                slot
            }
        };
        let handle = Handle {
            index,
            generation: self.generation[index as usize],
        };
        let previous = self.by_id.insert(vm, handle);
        assert!(previous.is_none(), "VM {vm:?} already resident");
        handle
    }

    /// The row behind a handle, or `None` if it has gone stale.
    pub fn get(&self, handle: Handle) -> Option<Resident> {
        let i = handle.index as usize;
        (self.generation.get(i) == Some(&handle.generation)).then(|| self.row(i))
    }

    /// The live handle for a VM, if resident.
    pub fn handle_of(&self, vm: VmId) -> Option<Handle> {
        self.by_id.get(&vm).copied()
    }

    /// Remove by handle — the scheduled-departure path. Returns `None`
    /// without touching anything if the handle is stale (the VM already
    /// departed explicitly), which is the lazy cancellation the departure
    /// heap relies on.
    pub fn remove(&mut self, handle: Handle) -> Option<Resident> {
        let row = self.get(handle)?;
        self.evict(handle.index, row.vm);
        Some(row)
    }

    /// Remove by VM id — the explicit early-departure path.
    pub fn remove_by_id(&mut self, vm: VmId) -> Option<Resident> {
        let handle = self.by_id.get(&vm).copied()?;
        let row = self.row(handle.index as usize);
        self.evict(handle.index, vm);
        Some(row)
    }

    /// Elementwise sum of the guaranteed portions of every resident demand
    /// — one contiguous column fold, no per-VM chasing.
    pub fn guaranteed_total(&self) -> ResourceVec {
        self.guaranteed
            .iter()
            .zip(&self.generation)
            .filter(|(_, g)| *g % 2 == 1)
            .fold(ResourceVec::ZERO, |acc, (g, _)| acc + *g)
    }

    /// Copy out the full column state for the snapshot codec.
    ///
    /// Free slots' columns are carried verbatim (their stale values are
    /// deterministic leftovers of a deterministic run), so a restored
    /// store re-snapshots to identical bytes — the property the
    /// `snapshot_roundtrip_identical` bench flag pins.
    pub(crate) fn dump(&self) -> StoreDump {
        StoreDump {
            vm: self.vm.clone(),
            cluster: self.cluster.clone(),
            server: self.server.clone(),
            guaranteed: self.guaranteed.clone(),
            window_peak: self.window_peak.clone(),
            generation: self.generation.clone(),
            free: self.free.clone(),
        }
    }

    /// Rebuild a store from dumped columns. The id index is derived, not
    /// dumped: a slot is occupied exactly while its generation is odd.
    ///
    /// # Panics
    ///
    /// Panics if the columns disagree on length or a VM id appears in two
    /// occupied slots (a corrupt or hand-forged dump).
    pub(crate) fn from_dump(dump: StoreDump) -> ResidentStore {
        let slots = dump.vm.len();
        assert!(
            dump.cluster.len() == slots
                && dump.server.len() == slots
                && dump.guaranteed.len() == slots
                && dump.window_peak.len() == slots
                && dump.generation.len() == slots,
            "resident store dump columns disagree on length"
        );
        let mut by_id = HashMap::new();
        for (i, &generation) in dump.generation.iter().enumerate() {
            if generation % 2 == 1 {
                let handle = Handle {
                    index: i as u32,
                    generation,
                };
                let previous = by_id.insert(dump.vm[i], handle);
                assert!(
                    previous.is_none(),
                    "VM {:?} occupies two resident slots",
                    dump.vm[i]
                );
            }
        }
        ResidentStore {
            vm: dump.vm,
            cluster: dump.cluster,
            server: dump.server,
            guaranteed: dump.guaranteed,
            window_peak: dump.window_peak,
            generation: dump.generation,
            free: dump.free,
            by_id,
        }
    }

    fn row(&self, i: usize) -> Resident {
        Resident {
            vm: self.vm[i],
            cluster: self.cluster[i],
            server: self.server[i],
            guaranteed: self.guaranteed[i],
            window_peak: self.window_peak[i],
        }
    }

    fn evict(&mut self, index: u32, vm: VmId) {
        let i = index as usize;
        self.generation[i] = self.generation[i].wrapping_add(1);
        self.free.push(index);
        self.by_id.remove(&vm);
    }
}

/// The wire-facing image of a [`ResidentStore`]: parallel columns plus the
/// free list, with the `by_id` index left to be derived on restore.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StoreDump {
    pub vm: Vec<VmId>,
    pub cluster: Vec<u32>,
    pub server: Vec<ServerId>,
    pub guaranteed: Vec<ResourceVec>,
    pub window_peak: Vec<ResourceVec>,
    pub generation: Vec<u32>,
    pub free: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(vm: u64, guar: f64) -> VmDemand {
        VmDemand::unpredicted(VmId::new(vm), ResourceVec::new(guar, 2.0 * guar, 0.5, 16.0))
    }

    #[test]
    fn handles_round_trip_and_go_stale() {
        let mut store = ResidentStore::new();
        let d = demand(7, 4.0);
        let h = store.insert(VmId::new(7), 3, ServerId::new(40), &d);
        assert_eq!(Handle::from_raw(h.to_raw()), h);
        let row = store.get(h).expect("live handle resolves");
        assert_eq!(row.vm, VmId::new(7));
        assert_eq!(row.cluster, 3);
        assert_eq!(row.server, ServerId::new(40));
        assert_eq!(row.guaranteed, d.guaranteed);
        assert_eq!(row.window_peak, d.window_peak());

        assert_eq!(store.remove(h), Some(row));
        assert_eq!(store.get(h), None, "removed handle is stale");
        assert_eq!(store.remove(h), None, "double removal is a no-op");
        assert!(store.is_empty());

        // The recycled slot's new tenant does not resurrect the old handle.
        let h2 = store.insert(VmId::new(8), 0, ServerId::new(41), &demand(8, 1.0));
        assert_eq!(store.get(h), None);
        assert_eq!(store.get(h2).unwrap().vm, VmId::new(8));
    }

    #[test]
    fn explicit_departure_cancels_scheduled_handle() {
        let mut store = ResidentStore::new();
        let h = store.insert(VmId::new(1), 0, ServerId::new(9), &demand(1, 2.0));
        assert_eq!(store.handle_of(VmId::new(1)), Some(h));
        // The wire departs the VM by id first...
        assert!(store.remove_by_id(VmId::new(1)).is_some());
        assert_eq!(store.handle_of(VmId::new(1)), None);
        // ...so the heap's later pop lazily cancels.
        assert_eq!(store.remove(h), None);
        assert_eq!(store.remove_by_id(VmId::new(1)), None);
    }

    #[test]
    fn guaranteed_total_tracks_the_live_column() {
        let mut store = ResidentStore::new();
        let a = store.insert(VmId::new(1), 0, ServerId::new(1), &demand(1, 2.0));
        store.insert(VmId::new(2), 0, ServerId::new(2), &demand(2, 3.0));
        assert_eq!(store.guaranteed_total().cpu(), 5.0);
        store.remove(a);
        assert_eq!(store.guaranteed_total().cpu(), 3.0);
        store.insert(VmId::new(3), 0, ServerId::new(3), &demand(3, 7.0));
        assert_eq!(store.len(), 2);
        assert_eq!(store.guaranteed_total().cpu(), 10.0);
    }

    #[test]
    fn dump_restore_preserves_handles_and_free_list() {
        let mut store = ResidentStore::new();
        let a = store.insert(VmId::new(1), 0, ServerId::new(1), &demand(1, 2.0));
        let b = store.insert(VmId::new(2), 1, ServerId::new(2), &demand(2, 3.0));
        store.remove(a); // slot 0 freed; its columns keep stale values

        let restored = ResidentStore::from_dump(store.dump());
        assert_eq!(restored.len(), 1);
        assert_eq!(restored.get(b), store.get(b));
        assert_eq!(restored.get(a), None, "stale handle stays stale");
        assert_eq!(restored.handle_of(VmId::new(2)), Some(b));
        // The freed slot is recycled in the same order as the original.
        let mut original = store;
        let c1 = original.insert(VmId::new(3), 0, ServerId::new(3), &demand(3, 1.0));
        let mut restored = restored;
        let c2 = restored.insert(VmId::new(3), 0, ServerId::new(3), &demand(3, 1.0));
        assert_eq!(c1, c2);
        assert_eq!(original.dump(), restored.dump());
    }

    #[test]
    #[should_panic(expected = "occupies two resident slots")]
    fn conflicting_dump_rejected() {
        let mut store = ResidentStore::new();
        store.insert(VmId::new(1), 0, ServerId::new(1), &demand(1, 2.0));
        store.insert(VmId::new(2), 0, ServerId::new(2), &demand(2, 3.0));
        let mut dump = store.dump();
        dump.vm[1] = VmId::new(1); // forge a duplicate occupancy
        ResidentStore::from_dump(dump);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut store = ResidentStore::new();
        store.insert(VmId::new(1), 0, ServerId::new(1), &demand(1, 1.0));
        store.insert(VmId::new(1), 0, ServerId::new(2), &demand(1, 1.0));
    }
}

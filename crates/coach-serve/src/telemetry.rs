//! Serve-layer telemetry wiring: the instrument catalog and the per-shard
//! state the [`Controller`](crate::Controller) and sharded dispatcher carry.
//!
//! One registry per deployment. Thread-backed shards share the parent's
//! `Arc<Registry>` directly (relaxed atomics cross threads for free);
//! process-backed shards run their own registry and ship drained deltas
//! over `WireCmd::Telemetry` frames at barriers, which the parent
//! [`Registry::merge`]s. Series are labeled by policy and
//! shard (lane counters by lane kind), so both backends produce the same
//! series set — asserted counter-for-counter by the telemetry tests.
//!
//! Span naming convention: `<layer>.<event>`, dot-separated —
//! `serve.admit` / `serve.depart` / `serve.tick` / `serve.probe` /
//! `serve.stats` on the controller event loop, `dispatch.stage` /
//! `dispatch.drain` / `dispatch.merge` / `dispatch.finalize` on the
//! sharded barrier path. Admission spans ride the existing
//! `latency_stride` sampling (the clock reads are already paid there);
//! broadcast-token spans record every occurrence.

use coach_telemetry::{
    AtomicHistogram, Counter, Gauge, LabelValue, Registry, RegistrySnapshot, SpanRing, SpanStart,
    TelemetryConfig,
};
use coach_types::runtime::{LaneKind, LaneStats};
use std::sync::Arc;
use std::time::Instant;

/// The serve-layer instrument catalog. Every call site addresses metrics
/// through these ids, so spelling is fixed at compile time.
pub mod metric {
    use coach_telemetry::MetricId;

    /// Arrivals admitted (labels: policy, shard).
    pub const ACCEPTED: MetricId =
        MetricId::new("coach_serve_accepted_total", "Arrivals admitted.");
    /// Arrivals rejected (labels: policy, shard).
    pub const REJECTED: MetricId =
        MetricId::new("coach_serve_rejected_total", "Arrivals rejected.");
    /// Departures processed, scheduled or explicit (labels: policy, shard).
    pub const DEPARTED: MetricId =
        MetricId::new("coach_serve_departed_total", "Departures processed.");
    /// Clock ticks absorbed (labels: policy, shard).
    pub const TICKS: MetricId = MetricId::new("coach_serve_ticks_total", "Clock ticks absorbed.");
    /// Probe measurements taken (labels: policy, shard).
    pub const PROBES: MetricId = MetricId::new(
        "coach_serve_probe_measurements_total",
        "Probe-capacity measurements taken.",
    );
    /// Total probe VMs placed across measurements (labels: policy, shard).
    pub const PROBE_CAPACITY: MetricId = MetricId::new(
        "coach_serve_probe_capacity_total",
        "Probe VMs placed across all measurements.",
    );
    /// Admission latency histogram, sampled at the controller's
    /// `latency_stride` (labels: policy, shard).
    pub const ADMISSION_LATENCY: MetricId = MetricId::new(
        "coach_serve_admission_latency_ns",
        "Sampled admission (placement) latency.",
    );
    /// Span-ring overflow drops (labels: shard).
    pub const SPAN_DROPS: MetricId = MetricId::new(
        "coach_serve_span_drops_total",
        "Span events dropped on full rings (never blocks).",
    );
    /// Lane items sent, migrated from `LaneStats::sends` (labels: lane).
    pub const LANE_SENDS: MetricId = MetricId::new(
        "coach_serve_lane_sends_total",
        "Items sent over sharded worker lanes.",
    );
    /// Lane batched handoffs (labels: lane).
    pub const LANE_BATCHED_SENDS: MetricId = MetricId::new(
        "coach_serve_lane_batched_sends_total",
        "send_batch handoffs on worker lanes.",
    );
    /// Lane condvar wakeups (labels: lane).
    pub const LANE_WAKEUPS: MetricId = MetricId::new(
        "coach_serve_lane_wakeups_total",
        "Condvar wakeups issued by worker lanes.",
    );
    /// Lane full-ring producer stalls (labels: lane).
    pub const LANE_FULL_STALLS: MetricId = MetricId::new(
        "coach_serve_lane_full_stalls_total",
        "Producer stalls on full lane rings (backpressure).",
    );
    /// Process workers respawned — the first-class home of what
    /// `StatsReport::worker_restarts` reports (no labels).
    pub const WORKER_RESTARTS: MetricId = MetricId::new(
        "coach_serve_worker_restarts_total",
        "Process shard workers respawned after an unexpected death.",
    );
    /// Time spent replaying checkpoint + journal during recoveries.
    pub const RECOVERY_REPLAY_NS: MetricId = MetricId::new(
        "coach_serve_recovery_replay_ns_total",
        "Nanoseconds spent in checkpoint restore + journal replay.",
    );
    /// Bytes written to process-worker pipes (labels: none; parent side).
    pub const WIRE_TX_BYTES: MetricId = MetricId::new(
        "coach_serve_wire_tx_bytes_total",
        "Frame bytes sent to process shard workers.",
    );
    /// Bytes read back from process-worker pipes.
    pub const WIRE_RX_BYTES: MetricId = MetricId::new(
        "coach_serve_wire_rx_bytes_total",
        "Frame bytes received from process shard workers.",
    );
    /// Command frames sent to process workers.
    pub const WIRE_TX_FRAMES: MetricId = MetricId::new(
        "coach_serve_wire_tx_frames_total",
        "Command frames sent to process shard workers.",
    );
    /// Reply frames received from process workers.
    pub const WIRE_RX_FRAMES: MetricId = MetricId::new(
        "coach_serve_wire_rx_frames_total",
        "Reply frames received from process shard workers.",
    );
    /// Owned records submitted through streaming sessions
    /// (`ShardedController::run_stream`; no labels).
    pub const STREAM_RECORDS: MetricId = MetricId::new(
        "coach_serve_stream_records_total",
        "Owned arrival records submitted by streaming sessions.",
    );
    /// Owned segments shipped to workers by streaming sessions (no labels).
    pub const STREAM_SEGMENTS: MetricId = MetricId::new(
        "coach_serve_stream_segments_total",
        "Owned record segments shipped by streaming sessions.",
    );
    /// Snapshot encode throughput of the latest export (labels: shard).
    pub const SNAPSHOT_ENCODE_BPS: MetricId = MetricId::new(
        "coach_serve_snapshot_encode_bytes_per_s",
        "Throughput of the most recent snapshot encode.",
    );
    /// Snapshot restore throughput of the latest resume (labels: shard).
    pub const SNAPSHOT_RESTORE_BPS: MetricId = MetricId::new(
        "coach_serve_snapshot_restore_bytes_per_s",
        "Throughput of the most recent snapshot restore.",
    );
}

/// Spans per controller ring. Sized for a full medium-trace replay's
/// broadcast tokens; overflow drops (counted) rather than growing.
pub(crate) const CONTROLLER_SPAN_CAPACITY: usize = 16 * 1024;

/// The telemetry state one [`Controller`](crate::Controller) carries when
/// armed: pre-registered handles (all registration allocation happens
/// here, once) plus an optional span ring in `Full` mode.
pub(crate) struct ControllerTelemetry {
    pub(crate) mode: TelemetryConfig,
    pub(crate) registry: Arc<Registry>,
    origin: Instant,
    pub(crate) accepted: Arc<Counter>,
    pub(crate) rejected: Arc<Counter>,
    pub(crate) departed: Arc<Counter>,
    pub(crate) ticks: Arc<Counter>,
    pub(crate) probes: Arc<Counter>,
    pub(crate) probe_capacity: Arc<Counter>,
    pub(crate) admission: Arc<AtomicHistogram>,
    span_drops: Arc<Counter>,
    pub(crate) encode_bps: Arc<Gauge>,
    pub(crate) spans: Option<SpanRing>,
}

impl ControllerTelemetry {
    /// Register this controller's series on `registry` under
    /// `(policy, shard)` labels and (in `Full` mode) allocate the span
    /// ring. `origin` is the deployment-wide timeline zero.
    pub(crate) fn new(
        mode: TelemetryConfig,
        registry: Arc<Registry>,
        policy: &'static str,
        shard: u32,
        origin: Instant,
    ) -> Box<ControllerTelemetry> {
        let labels = [
            ("policy", LabelValue::Str(policy)),
            ("shard", LabelValue::U64(shard as u64)),
        ];
        let shard_label = [("shard", LabelValue::U64(shard as u64))];
        Box::new(ControllerTelemetry {
            mode,
            origin,
            accepted: registry.counter(metric::ACCEPTED, &labels),
            rejected: registry.counter(metric::REJECTED, &labels),
            departed: registry.counter(metric::DEPARTED, &labels),
            ticks: registry.counter(metric::TICKS, &labels),
            probes: registry.counter(metric::PROBES, &labels),
            probe_capacity: registry.counter(metric::PROBE_CAPACITY, &labels),
            admission: registry.histogram(metric::ADMISSION_LATENCY, &labels),
            span_drops: registry.counter(metric::SPAN_DROPS, &shard_label),
            encode_bps: registry.gauge(metric::SNAPSHOT_ENCODE_BPS, &shard_label),
            spans: mode
                .spans_enabled()
                .then(|| SpanRing::with_origin(origin, shard, CONTROLLER_SPAN_CAPACITY)),
            registry,
        })
    }

    /// Whether broadcast-token spans should be opened (Full mode only).
    #[inline]
    pub(crate) fn spans_armed(&self) -> bool {
        self.spans.is_some()
    }

    /// Close a broadcast-token span opened with [`SpanRing::begin`].
    #[inline]
    pub(crate) fn end_span(&mut self, name: &'static str, start: SpanStart) {
        if let Some(ring) = self.spans.as_mut() {
            ring.end(name, start);
        }
    }

    /// Record a sampled admission span from the latency-stride timing that
    /// was measured anyway (no extra clock reads).
    #[inline]
    pub(crate) fn admit_span(&mut self, t0: Instant, dur_ns: u64) {
        if let Some(ring) = self.spans.as_mut() {
            let start_ns = t0.duration_since(self.origin).as_nanos() as u64;
            ring.record("serve.admit", start_ns, dur_ns);
        }
    }

    /// Mirror ring overflow drops into the drop counter (idempotent per
    /// drop; called at export barriers).
    pub(crate) fn sync_span_drops(&mut self) {
        if let Some(ring) = self.spans.as_mut() {
            self.span_drops.add(ring.take_drop_delta());
        }
    }

    /// Drain this controller's registry delta for wire shipping (child
    /// shard workers at a telemetry barrier).
    pub(crate) fn drain(&mut self) -> RegistrySnapshot {
        self.sync_span_drops();
        self.registry.drain_delta()
    }
}

impl std::fmt::Debug for ControllerTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControllerTelemetry")
            .field("mode", &self.mode)
            .field("spans", &self.spans.is_some())
            .finish_non_exhaustive()
    }
}

/// Parent-side counters for the process backend's pipes: frame bytes and
/// counts in each direction. Shared (`Arc`) with the dispatcher's link so
/// every `send`/`recv` can count without widening call signatures.
#[derive(Debug, Clone)]
pub(crate) struct WireTelemetry {
    pub(crate) tx_bytes: Arc<Counter>,
    pub(crate) rx_bytes: Arc<Counter>,
    pub(crate) tx_frames: Arc<Counter>,
    pub(crate) rx_frames: Arc<Counter>,
}

impl WireTelemetry {
    pub(crate) fn new(registry: &Registry) -> WireTelemetry {
        WireTelemetry {
            tx_bytes: registry.counter(metric::WIRE_TX_BYTES, &[]),
            rx_bytes: registry.counter(metric::WIRE_RX_BYTES, &[]),
            tx_frames: registry.counter(metric::WIRE_TX_FRAMES, &[]),
            rx_frames: registry.counter(metric::WIRE_RX_FRAMES, &[]),
        }
    }

    /// Count one frame sent toward a child.
    #[inline]
    pub(crate) fn sent(&self, bytes: usize) {
        self.tx_bytes.add(bytes as u64);
        self.tx_frames.inc();
    }

    /// Count one frame received back from a child.
    #[inline]
    pub(crate) fn received(&self, bytes: usize) {
        self.rx_bytes.add(bytes as u64);
        self.rx_frames.inc();
    }
}

/// The registry label value for a lane implementation.
pub(crate) fn lane_label(kind: LaneKind) -> &'static str {
    match kind {
        LaneKind::Ring => "ring",
        LaneKind::MutexRef => "mutex",
    }
}

/// The deployment-wide telemetry state a
/// [`ShardedController`](crate::ShardedController) owns: the shared
/// registry every thread-backed shard records into (and process deltas
/// merge into), the dispatcher's own span ring, and the counters whose
/// sources are parent-side cumulative totals (lane stats, process-pool
/// restarts) mirrored as deltas at session barriers.
pub(crate) struct ShardTelemetry {
    pub(crate) mode: TelemetryConfig,
    pub(crate) registry: Arc<Registry>,
    pub(crate) origin: Instant,
    /// Barrier spans on the dispatcher thread (`Full` mode); its tid is
    /// `shard_count`, one past the shard rings'.
    pub(crate) spans: Option<SpanRing>,
    lane_sends: Arc<Counter>,
    lane_batched_sends: Arc<Counter>,
    lane_wakeups: Arc<Counter>,
    lane_full_stalls: Arc<Counter>,
    /// Lane totals already mirrored into the counters (the runtime exposes
    /// cumulative sums, the registry wants monotone increments).
    lanes_seen: LaneStats,
    span_drops: Arc<Counter>,
    restarts: Arc<Counter>,
    replay_ns: Arc<Counter>,
    restarts_seen: u64,
    replay_seen: u64,
    pub(crate) wire: WireTelemetry,
}

impl ShardTelemetry {
    /// Build the deployment registry and register the parent-side series.
    pub(crate) fn new(
        mode: TelemetryConfig,
        shard_count: usize,
        lanes: LaneKind,
        origin: Instant,
    ) -> Box<ShardTelemetry> {
        let registry = Arc::new(Registry::new());
        let lane = [("lane", LabelValue::Str(lane_label(lanes)))];
        let tid = shard_count as u32;
        Box::new(ShardTelemetry {
            mode,
            origin,
            spans: mode
                .spans_enabled()
                .then(|| SpanRing::with_origin(origin, tid, CONTROLLER_SPAN_CAPACITY)),
            lane_sends: registry.counter(metric::LANE_SENDS, &lane),
            lane_batched_sends: registry.counter(metric::LANE_BATCHED_SENDS, &lane),
            lane_wakeups: registry.counter(metric::LANE_WAKEUPS, &lane),
            lane_full_stalls: registry.counter(metric::LANE_FULL_STALLS, &lane),
            lanes_seen: LaneStats::default(),
            span_drops: registry.counter(
                metric::SPAN_DROPS,
                &[("shard", LabelValue::U64(tid as u64))],
            ),
            restarts: registry.counter(metric::WORKER_RESTARTS, &[]),
            replay_ns: registry.counter(metric::RECOVERY_REPLAY_NS, &[]),
            restarts_seen: 0,
            replay_seen: 0,
            wire: WireTelemetry::new(&registry),
            registry,
        })
    }

    /// Mirror the session's parent-side cumulative totals into the
    /// registry as deltas: lane telemetry, process-pool recoveries, and
    /// the dispatcher ring's overflow drops. Called once per session
    /// barrier, off the hot path.
    pub(crate) fn sync_session(&mut self, lanes: &LaneStats, restarts: u64, replay_ns: u64) {
        self.lane_sends
            .add(lanes.sends.saturating_sub(self.lanes_seen.sends));
        self.lane_batched_sends.add(
            lanes
                .batched_sends
                .saturating_sub(self.lanes_seen.batched_sends),
        );
        self.lane_wakeups
            .add(lanes.wakeups.saturating_sub(self.lanes_seen.wakeups));
        self.lane_full_stalls.add(
            lanes
                .full_stalls
                .saturating_sub(self.lanes_seen.full_stalls),
        );
        self.lanes_seen = *lanes;
        self.restarts
            .add(restarts.saturating_sub(self.restarts_seen));
        self.restarts_seen = restarts;
        self.replay_ns
            .add(replay_ns.saturating_sub(self.replay_seen));
        self.replay_seen = replay_ns;
        if let Some(ring) = self.spans.as_mut() {
            self.span_drops.add(ring.take_drop_delta());
        }
    }
}

impl std::fmt::Debug for ShardTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardTelemetry")
            .field("mode", &self.mode)
            .field("spans", &self.spans.is_some())
            .finish_non_exhaustive()
    }
}

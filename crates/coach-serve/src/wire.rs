//! The serving subsystem's wire vocabulary: [`Snapshot`] frames for live
//! snapshot/restore, and the command/reply protocol process-backed shard
//! workers speak over their pipes.
//!
//! Everything here rides the dependency-free [`coach_wire`] codec: frames
//! are magic- and version-pinned, accumulated `f64`s travel as raw
//! IEEE-754 bits, and decode never panics on malformed bytes (structural
//! problems are [`WireError`]s; only *semantically* inconsistent dumps —
//! which no honest snapshot produces — panic at restore time).

use crate::account::{AccountantDump, ServerAccountDump, VmEntryDump};
use crate::controller::{ControllerDump, ServeConfig};
use crate::request::{LatencyHistogram, Response, StatsReport};
use crate::shard::ShardSnapshot;
use crate::store::StoreDump;
use coach_sim::PackingResult;
use coach_telemetry::{MetricEntry, MetricValue, RegistrySnapshot, TelemetryConfig};
use coach_trace::VmRecord;
use coach_types::prelude::*;
use coach_wire::{open_frame, seal_frame, Decode, Decoder, Encode, Encoder, WireError};

/// A sealed, self-contained image of one [`Controller`](crate::Controller)
/// — the unit of live servicing. Produced by
/// [`Controller::snapshot`](crate::Controller::snapshot) /
/// [`ShardedController::drain_shard`](crate::ShardedController::drain_shard),
/// consumed by [`Controller::restore`](crate::Controller::restore) /
/// [`ShardedController::resume_shard`](crate::ShardedController::resume_shard),
/// and shipped verbatim as the process backend's checkpoint payload.
///
/// The bytes embed every [`VmRecord`] the accounting state still
/// references ([`Snapshot::records`]), so a snapshot restores in a process
/// that has never seen the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Seal a controller dump into a versioned frame.
    pub(crate) fn seal(dump: &ControllerDump) -> Snapshot {
        Snapshot {
            bytes: seal_frame(dump),
        }
    }

    /// Wrap frame bytes received out-of-band (a file, a socket, a
    /// checkpoint store). Validation happens at restore time.
    pub fn from_bytes(bytes: Vec<u8>) -> Snapshot {
        Snapshot { bytes }
    }

    /// The sealed frame, ready for [`coach_wire::write_frame`] or disk.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume into the sealed frame bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the frame is empty (never true for a sealed snapshot).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The embedded record table: every VM record the snapshotted
    /// accounting state references, deduplicated. A restoring process can
    /// leak these and resolve against them — no trace required.
    pub fn records(&self) -> Result<Vec<VmRecord>, WireError> {
        let dump: ControllerDump = open_frame(&self.bytes)?;
        Ok(dump.records)
    }
}

impl Encode for ServeConfig {
    fn encode(&self, e: &mut Encoder) {
        self.policy.encode(e);
        e.f64(self.server_fraction);
        self.heuristic.encode(e);
        self.scan.encode(e);
        self.horizon.encode(e);
        self.sample_every.encode(e);
        e.usize(self.latency_stride);
        e.bool(self.occupancy_timeline);
        self.probe_mode.encode(e);
        self.lanes.encode(e);
        self.placement.encode(e);
        self.backend.encode(e);
        // `telemetry` is deliberately NOT encoded: it is a pure-observability
        // runtime knob (decisions are bit-identical across modes), and
        // snapshot fixtures pin `ControllerDump` bytes, which embed this
        // config. A restored controller comes up with telemetry Off and is
        // re-armed by its deployment (the process backend re-arms children
        // at every session start).
    }
}

impl Decode for ServeConfig {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ServeConfig {
            policy: Decode::decode(d)?,
            server_fraction: d.f64("ServeConfig server_fraction")?,
            heuristic: Decode::decode(d)?,
            scan: Decode::decode(d)?,
            horizon: Decode::decode(d)?,
            sample_every: Decode::decode(d)?,
            latency_stride: d.usize("ServeConfig latency_stride")?,
            occupancy_timeline: d.bool("ServeConfig occupancy_timeline")?,
            probe_mode: Decode::decode(d)?,
            lanes: Decode::decode(d)?,
            placement: Decode::decode(d)?,
            backend: Decode::decode(d)?,
            telemetry: TelemetryConfig::default(),
        })
    }
}

impl Encode for StatsReport {
    fn encode(&self, e: &mut Encoder) {
        self.now.encode(e);
        e.u64(self.accepted);
        e.u64(self.rejected);
        e.u64(self.departed);
        e.usize(self.resident_vms);
        e.usize(self.servers_in_use);
        e.usize(self.peak_servers_in_use);
        e.f64(self.accepted_core_hours);
        e.f64(self.accepted_gb_hours);
        e.u64(self.probe_measurements);
        e.u64(self.probe_capacity_total);
        e.u64(self.violation_samples);
        e.u64(self.cpu_violations);
        e.u64(self.mem_violations);
        e.u64(self.ticks);
        e.f64(self.admission_p50_us);
        e.f64(self.admission_p99_us);
        e.u64(self.lane_sends);
        e.u64(self.lane_batched_sends);
        e.u64(self.lane_wakeups);
        e.u64(self.lane_full_stalls);
        e.u64(self.worker_restarts);
    }
}

impl Decode for StatsReport {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(StatsReport {
            now: Decode::decode(d)?,
            accepted: d.u64("StatsReport accepted")?,
            rejected: d.u64("StatsReport rejected")?,
            departed: d.u64("StatsReport departed")?,
            resident_vms: d.usize("StatsReport resident_vms")?,
            servers_in_use: d.usize("StatsReport servers_in_use")?,
            peak_servers_in_use: d.usize("StatsReport peak_servers_in_use")?,
            accepted_core_hours: d.f64("StatsReport accepted_core_hours")?,
            accepted_gb_hours: d.f64("StatsReport accepted_gb_hours")?,
            probe_measurements: d.u64("StatsReport probe_measurements")?,
            probe_capacity_total: d.u64("StatsReport probe_capacity_total")?,
            violation_samples: d.u64("StatsReport violation_samples")?,
            cpu_violations: d.u64("StatsReport cpu_violations")?,
            mem_violations: d.u64("StatsReport mem_violations")?,
            ticks: d.u64("StatsReport ticks")?,
            admission_p50_us: d.f64("StatsReport admission_p50_us")?,
            admission_p99_us: d.f64("StatsReport admission_p99_us")?,
            lane_sends: d.u64("StatsReport lane_sends")?,
            lane_batched_sends: d.u64("StatsReport lane_batched_sends")?,
            lane_wakeups: d.u64("StatsReport lane_wakeups")?,
            lane_full_stalls: d.u64("StatsReport lane_full_stalls")?,
            worker_restarts: d.u64("StatsReport worker_restarts")?,
        })
    }
}

/// Histogram codec as free functions: [`LatencyHistogram`] is the shared
/// [`coach_telemetry::Histogram`] since PR 9, and the orphan rule forbids
/// implementing the (equally foreign) [`Encode`] trait for it here. The
/// byte layout is unchanged from the PR 8 trait impl.
fn encode_histogram(h: &LatencyHistogram, e: &mut Encoder) {
    let (buckets, count, sum_ns) = h.parts();
    buckets.encode(e);
    e.u64(count);
    e.u64(sum_ns);
}

fn decode_histogram(d: &mut Decoder<'_>) -> Result<LatencyHistogram, WireError> {
    let buckets: [u64; 64] = Decode::decode(d)?;
    let count = d.u64("LatencyHistogram count")?;
    let sum_ns = d.u64("LatencyHistogram sum_ns")?;
    Ok(LatencyHistogram::from_parts(buckets, count, sum_ns))
}

/// Codec for the registry deltas child shard workers ship at barriers
/// ([`WireReply::Telemetry`]). Same free-function shape as the histogram
/// codec, for the same orphan-rule reason.
fn encode_registry_snapshot(snapshot: &RegistrySnapshot, e: &mut Encoder) {
    e.usize(snapshot.entries.len());
    for entry in &snapshot.entries {
        e.str(&entry.name);
        entry.labels.encode(e);
        e.str(&entry.help);
        match &entry.value {
            MetricValue::Counter(v) => {
                e.u8(0);
                e.u64(*v);
            }
            MetricValue::Gauge(v) => {
                e.u8(1);
                e.f64(*v);
            }
            MetricValue::Histogram(h) => {
                e.u8(2);
                encode_histogram(h, e);
            }
        }
    }
}

fn decode_registry_snapshot(d: &mut Decoder<'_>) -> Result<RegistrySnapshot, WireError> {
    let len = d.usize("RegistrySnapshot entries")?;
    let mut entries = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        let name = d.str("MetricEntry name")?.to_string();
        let labels: Vec<(String, String)> = Decode::decode(d)?;
        let help = d.str("MetricEntry help")?.to_string();
        let value = match d.u8("MetricValue")? {
            0 => MetricValue::Counter(d.u64("MetricValue counter")?),
            1 => MetricValue::Gauge(d.f64("MetricValue gauge")?),
            2 => MetricValue::Histogram(decode_histogram(d)?),
            tag => {
                return Err(WireError::UnknownTag {
                    context: "MetricValue",
                    tag: tag as u64,
                })
            }
        };
        entries.push(MetricEntry {
            name,
            labels,
            help,
            value,
        });
    }
    Ok(RegistrySnapshot { entries })
}

impl Encode for StoreDump {
    fn encode(&self, e: &mut Encoder) {
        self.vm.encode(e);
        self.cluster.encode(e);
        self.server.encode(e);
        self.guaranteed.encode(e);
        self.window_peak.encode(e);
        self.generation.encode(e);
        self.free.encode(e);
    }
}

impl Decode for StoreDump {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(StoreDump {
            vm: Decode::decode(d)?,
            cluster: Decode::decode(d)?,
            server: Decode::decode(d)?,
            guaranteed: Decode::decode(d)?,
            window_peak: Decode::decode(d)?,
            generation: Decode::decode(d)?,
            free: Decode::decode(d)?,
        })
    }
}

impl Encode for VmEntryDump {
    fn encode(&self, e: &mut Encoder) {
        self.vm.encode(e);
        e.f64(self.guar_mem);
        self.windows.encode(e);
        self.depart.encode(e);
    }
}

impl Decode for VmEntryDump {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(VmEntryDump {
            vm: Decode::decode(d)?,
            guar_mem: d.f64("VmEntryDump guar_mem")?,
            windows: Decode::decode(d)?,
            depart: Decode::decode(d)?,
        })
    }
}

impl Encode for ServerAccountDump {
    fn encode(&self, e: &mut Encoder) {
        self.server.encode(e);
        self.capacity.encode(e);
        self.next_sample.encode(e);
        self.pending.encode(e);
        self.resident.encode(e);
        e.f64(self.pa_sum);
        self.va_sums.encode(e);
        e.u64(self.samples);
        e.u64(self.cpu_violations);
        e.u64(self.mem_violations);
    }
}

impl Decode for ServerAccountDump {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ServerAccountDump {
            server: Decode::decode(d)?,
            capacity: Decode::decode(d)?,
            next_sample: Decode::decode(d)?,
            pending: Decode::decode(d)?,
            resident: Decode::decode(d)?,
            pa_sum: d.f64("ServerAccountDump pa_sum")?,
            va_sums: Decode::decode(d)?,
            samples: d.u64("ServerAccountDump samples")?,
            cpu_violations: d.u64("ServerAccountDump cpu_violations")?,
            mem_violations: d.u64("ServerAccountDump mem_violations")?,
        })
    }
}

impl Encode for AccountantDump {
    fn encode(&self, e: &mut Encoder) {
        self.servers.encode(e);
    }
}

impl Decode for AccountantDump {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(AccountantDump {
            servers: Decode::decode(d)?,
        })
    }
}

impl Encode for ControllerDump {
    fn encode(&self, e: &mut Encoder) {
        self.config.encode(e);
        e.u32(self.windows_per_day);
        self.clusters.encode(e);
        self.store.encode(e);
        self.departures.encode(e);
        e.u64(self.seq);
        self.probe_counts.encode(e);
        self.accountant.encode(e);
        self.latency_buckets.encode(e);
        e.u64(self.latency_count);
        e.u64(self.latency_sum_ns);
        e.u64(self.accepted);
        e.u64(self.rejected);
        e.u64(self.departed);
        e.u64(self.ticks);
        e.f64(self.accepted_core_hours);
        e.f64(self.accepted_gb_hours);
        e.usize(self.in_use);
        e.usize(self.peak_in_use);
        self.timeline.encode(e);
        self.records.encode(e);
    }
}

impl Decode for ControllerDump {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ControllerDump {
            config: Decode::decode(d)?,
            windows_per_day: d.u32("ControllerDump windows_per_day")?,
            clusters: Decode::decode(d)?,
            store: Decode::decode(d)?,
            departures: Decode::decode(d)?,
            seq: d.u64("ControllerDump seq")?,
            probe_counts: Decode::decode(d)?,
            accountant: Decode::decode(d)?,
            latency_buckets: Decode::decode(d)?,
            latency_count: d.u64("ControllerDump latency_count")?,
            latency_sum_ns: d.u64("ControllerDump latency_sum_ns")?,
            accepted: d.u64("ControllerDump accepted")?,
            rejected: d.u64("ControllerDump rejected")?,
            departed: d.u64("ControllerDump departed")?,
            ticks: d.u64("ControllerDump ticks")?,
            accepted_core_hours: d.f64("ControllerDump accepted_core_hours")?,
            accepted_gb_hours: d.f64("ControllerDump accepted_gb_hours")?,
            in_use: d.usize("ControllerDump in_use")?,
            peak_in_use: d.usize("ControllerDump peak_in_use")?,
            timeline: Decode::decode(d)?,
            records: Decode::decode(d)?,
        })
    }
}

impl Encode for Response {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Response::Admission { vm, outcome } => {
                e.u8(0);
                vm.encode(e);
                outcome.encode(e);
            }
            Response::Departed { vm, found } => {
                e.u8(1);
                vm.encode(e);
                e.bool(*found);
            }
            Response::Ticked => e.u8(2),
            Response::ProbeCapacity(n) => {
                e.u8(3);
                e.u64(*n);
            }
            Response::Stats(stats) => {
                e.u8(4);
                stats.encode(e);
            }
        }
    }
}

impl Decode for Response {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8("Response")? {
            0 => Ok(Response::Admission {
                vm: Decode::decode(d)?,
                outcome: Decode::decode(d)?,
            }),
            1 => Ok(Response::Departed {
                vm: Decode::decode(d)?,
                found: d.bool("Response found")?,
            }),
            2 => Ok(Response::Ticked),
            3 => Ok(Response::ProbeCapacity(d.u64("Response probe capacity")?)),
            4 => Ok(Response::Stats(Decode::decode(d)?)),
            tag => Err(WireError::UnknownTag {
                context: "Response",
                tag: tag as u64,
            }),
        }
    }
}

impl Encode for ShardSnapshot {
    fn encode(&self, e: &mut Encoder) {
        self.stats.encode(e);
        encode_histogram(&self.latency, e);
        self.probe_counts.encode(e);
        self.timeline_delta.encode(e);
    }
}

impl Decode for ShardSnapshot {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ShardSnapshot {
            stats: Decode::decode(d)?,
            latency: decode_histogram(d)?,
            probe_counts: Decode::decode(d)?,
            timeline_delta: Decode::decode(d)?,
        })
    }
}

/// How a process worker builds its prediction source: the parent cannot
/// ship a live `&dyn Predictor` across an exec boundary, so it ships a
/// recipe. The process backend assumes an Oracle-equivalent predictor —
/// the prederived cache is bit-identical to [`coach_sim::Oracle`] by
/// construction, so only the window partition needs to travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorSpec {
    /// A lazy [`coach_sim::Oracle`] over this many windows per day.
    Oracle {
        /// Windows per day of the partition (see
        /// [`coach_types::TimeWindows::new`]).
        windows_per_day: u32,
    },
}

impl Encode for PredictorSpec {
    fn encode(&self, e: &mut Encoder) {
        match self {
            PredictorSpec::Oracle { windows_per_day } => {
                e.u8(0);
                e.u32(*windows_per_day);
            }
        }
    }
}

impl Decode for PredictorSpec {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8("PredictorSpec")? {
            0 => Ok(PredictorSpec::Oracle {
                windows_per_day: d.u32("PredictorSpec windows_per_day")?,
            }),
            tag => Err(WireError::UnknownTag {
                context: "PredictorSpec",
                tag: tag as u64,
            }),
        }
    }
}

/// A broadcast/barrier request as it crosses the pipe — every [`Request`]
/// kind except arrivals, which travel in routed segments with their
/// records inline.
///
/// [`Request`]: crate::Request
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokenCmd {
    Depart { vm: VmId, now: Timestamp },
    Tick { now: Timestamp },
    Probe { now: Timestamp },
    Stats { now: Timestamp },
}

impl Encode for TokenCmd {
    fn encode(&self, e: &mut Encoder) {
        match self {
            TokenCmd::Depart { vm, now } => {
                e.u8(0);
                vm.encode(e);
                now.encode(e);
            }
            TokenCmd::Tick { now } => {
                e.u8(1);
                now.encode(e);
            }
            TokenCmd::Probe { now } => {
                e.u8(2);
                now.encode(e);
            }
            TokenCmd::Stats { now } => {
                e.u8(3);
                now.encode(e);
            }
        }
    }
}

impl Decode for TokenCmd {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8("TokenCmd")? {
            0 => Ok(TokenCmd::Depart {
                vm: Decode::decode(d)?,
                now: Decode::decode(d)?,
            }),
            1 => Ok(TokenCmd::Tick {
                now: Decode::decode(d)?,
            }),
            2 => Ok(TokenCmd::Probe {
                now: Decode::decode(d)?,
            }),
            3 => Ok(TokenCmd::Stats {
                now: Decode::decode(d)?,
            }),
            tag => Err(WireError::UnknownTag {
                context: "TokenCmd",
                tag: tag as u64,
            }),
        }
    }
}

/// One command frame on a process worker's stdin. Mirrors the thread
/// backend's `ShardCmd` plus the supervision verbs (`Init`, `Export`);
/// every command produces exactly one [`WireReply`] frame — the 1:1
/// contract [`coach_types::runtime::ProcessPool`] recovery counts on.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WireCmd {
    /// Build the worker's controller: a predictor recipe plus a sealed
    /// [`Snapshot`] frame to restore from. Doubles as the checkpoint
    /// payload a recovery replays.
    Init {
        spec: PredictorSpec,
        snapshot: Vec<u8>,
    },
    /// A routed arrival segment whose per-request responses come back
    /// (`(stream index, record)` pairs).
    Batch(Vec<(u64, VmRecord)>),
    /// A routed arrival segment acknowledged without responses.
    Run(Vec<VmRecord>),
    /// A broadcast/barrier token.
    Token(TokenCmd),
    /// Retire remaining departures, flush accounting, report the final
    /// result and snapshot.
    Finalize,
    /// Serialize the controller's current state into a [`Snapshot`] frame
    /// (drain / checkpoint-refresh; the controller keeps serving).
    Export,
    /// Arm (or re-arm) the worker's telemetry at `mode` and ship back the
    /// registry delta accumulated since the last `Telemetry` command.
    /// Appended in PR 9 as tag 6 — existing frames are untouched, so the
    /// committed protocol fixture stays valid without a `VERSION` bump.
    Telemetry { mode: TelemetryConfig },
}

impl Encode for WireCmd {
    fn encode(&self, e: &mut Encoder) {
        match self {
            WireCmd::Init { spec, snapshot } => {
                e.u8(0);
                spec.encode(e);
                e.bytes(snapshot);
            }
            WireCmd::Batch(batch) => {
                e.u8(1);
                batch.encode(e);
            }
            WireCmd::Run(recs) => {
                e.u8(2);
                recs.encode(e);
            }
            WireCmd::Token(token) => {
                e.u8(3);
                token.encode(e);
            }
            WireCmd::Finalize => e.u8(4),
            WireCmd::Export => e.u8(5),
            WireCmd::Telemetry { mode } => {
                e.u8(6);
                e.u8(match mode {
                    TelemetryConfig::Off => 0,
                    TelemetryConfig::CountersOnly => 1,
                    TelemetryConfig::Full => 2,
                });
            }
        }
    }
}

impl Decode for WireCmd {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8("WireCmd")? {
            0 => Ok(WireCmd::Init {
                spec: Decode::decode(d)?,
                snapshot: d.bytes("WireCmd snapshot")?.to_vec(),
            }),
            1 => Ok(WireCmd::Batch(Decode::decode(d)?)),
            2 => Ok(WireCmd::Run(Decode::decode(d)?)),
            3 => Ok(WireCmd::Token(Decode::decode(d)?)),
            4 => Ok(WireCmd::Finalize),
            5 => Ok(WireCmd::Export),
            6 => Ok(WireCmd::Telemetry {
                mode: match d.u8("WireCmd telemetry mode")? {
                    0 => TelemetryConfig::Off,
                    1 => TelemetryConfig::CountersOnly,
                    2 => TelemetryConfig::Full,
                    tag => {
                        return Err(WireError::UnknownTag {
                            context: "TelemetryConfig",
                            tag: tag as u64,
                        })
                    }
                },
            }),
            tag => Err(WireError::UnknownTag {
                context: "WireCmd",
                tag: tag as u64,
            }),
        }
    }
}

/// One reply frame on a process worker's stdout, in command order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WireReply {
    /// [`WireCmd::Init`] applied; the controller is live.
    InitOk,
    /// Per-request responses for a [`WireCmd::Batch`] segment.
    Answers(Vec<(u64, Response)>),
    /// A [`WireCmd::Run`] segment was processed.
    Ran,
    /// A non-stats token's merged-side input.
    Token(Response),
    /// A stats token's shard contribution.
    Stats(ShardSnapshot),
    /// The shard's final result and closing stats contribution.
    Finalized(PackingResult, ShardSnapshot),
    /// A sealed [`Snapshot`] frame for [`WireCmd::Export`].
    Exported(Vec<u8>),
    /// The registry delta for a [`WireCmd::Telemetry`] barrier collection
    /// (tag 7, appended in PR 9).
    Telemetry(RegistrySnapshot),
}

impl Encode for WireReply {
    fn encode(&self, e: &mut Encoder) {
        match self {
            WireReply::InitOk => e.u8(0),
            WireReply::Answers(answers) => {
                e.u8(1);
                answers.encode(e);
            }
            WireReply::Ran => e.u8(2),
            WireReply::Token(response) => {
                e.u8(3);
                response.encode(e);
            }
            WireReply::Stats(snapshot) => {
                e.u8(4);
                snapshot.encode(e);
            }
            WireReply::Finalized(result, snapshot) => {
                e.u8(5);
                result.encode(e);
                snapshot.encode(e);
            }
            WireReply::Exported(bytes) => {
                e.u8(6);
                e.bytes(bytes);
            }
            WireReply::Telemetry(snapshot) => {
                e.u8(7);
                encode_registry_snapshot(snapshot, e);
            }
        }
    }
}

impl Decode for WireReply {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8("WireReply")? {
            0 => Ok(WireReply::InitOk),
            1 => Ok(WireReply::Answers(Decode::decode(d)?)),
            2 => Ok(WireReply::Ran),
            3 => Ok(WireReply::Token(Decode::decode(d)?)),
            4 => Ok(WireReply::Stats(Decode::decode(d)?)),
            5 => Ok(WireReply::Finalized(Decode::decode(d)?, Decode::decode(d)?)),
            6 => Ok(WireReply::Exported(d.bytes("WireReply snapshot")?.to_vec())),
            7 => Ok(WireReply::Telemetry(decode_registry_snapshot(d)?)),
            tag => Err(WireError::UnknownTag {
                context: "WireReply",
                tag: tag as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_sim::{PackingResult, PolicyConfig};
    use coach_trace::{generate, TraceConfig};

    #[test]
    fn serve_config_roundtrips() {
        let mut config = ServeConfig::replaying(
            PolicyConfig::paper_set().remove(2),
            0.75,
            Timestamp::from_ticks(1_000_000),
        );
        config.backend = WorkerBackend::Process;
        config.occupancy_timeline = true;
        let frame = seal_frame(&config);
        let back: ServeConfig = open_frame(&frame).expect("decode ServeConfig");
        assert_eq!(format!("{back:?}"), format!("{config:?}"));

        // Telemetry is a runtime knob, not state: it never crosses the
        // wire, so a Full config decodes back to the Off default (and the
        // committed snapshot fixture is unaffected by the new field).
        config.telemetry = TelemetryConfig::Full;
        let frame_full = seal_frame(&config);
        assert_eq!(frame_full, frame);
        let back: ServeConfig = open_frame(&frame_full).expect("decode ServeConfig");
        assert_eq!(back.telemetry, TelemetryConfig::Off);
    }

    #[test]
    fn telemetry_frames_roundtrip() {
        for mode in [
            TelemetryConfig::Off,
            TelemetryConfig::CountersOnly,
            TelemetryConfig::Full,
        ] {
            let cmd = WireCmd::Telemetry { mode };
            let frame = seal_frame(&cmd);
            let back: WireCmd = open_frame(&frame).expect("decode WireCmd");
            assert_eq!(back, cmd);
        }

        let registry = coach_telemetry::Registry::new();
        registry
            .counter(
                coach_telemetry::MetricId::new("coach_serve_accepted_total", "Accepted."),
                &[
                    ("policy", coach_telemetry::LabelValue::Str("Coach")),
                    ("shard", coach_telemetry::LabelValue::U64(3)),
                ],
            )
            .add(41);
        registry
            .gauge(
                coach_telemetry::MetricId::new("coach_serve_snapshot_encode_bytes_per_s", "Enc."),
                &[],
            )
            .set(1.5e9);
        registry
            .histogram(
                coach_telemetry::MetricId::new("coach_serve_admission_latency_ns", "Admit."),
                &[],
            )
            .record_ns(12_345);
        let reply = WireReply::Telemetry(registry.drain_delta());
        let frame = seal_frame(&reply);
        let back: WireReply = open_frame(&frame).expect("decode WireReply");
        assert_eq!(back, reply);

        // Malformed telemetry mode fails softly.
        let mut e = Encoder::new();
        e.u8(6);
        e.u8(99);
        let mut frame = Vec::from(coach_wire::MAGIC);
        frame.extend_from_slice(&coach_wire::VERSION.to_le_bytes());
        frame.extend_from_slice(&e.into_bytes());
        assert!(matches!(
            open_frame::<WireCmd>(&frame),
            Err(WireError::UnknownTag {
                context: "TelemetryConfig",
                ..
            })
        ));
    }

    #[test]
    fn protocol_frames_roundtrip() {
        let trace = generate(&TraceConfig::small(19));
        let recs: Vec<VmRecord> = trace.vms.iter().take(3).cloned().collect();
        let cmds = vec![
            WireCmd::Init {
                spec: PredictorSpec::Oracle { windows_per_day: 6 },
                snapshot: vec![1, 2, 3],
            },
            WireCmd::Batch(recs.iter().map(|r| (7u64, r.clone())).collect()),
            WireCmd::Run(recs.clone()),
            WireCmd::Token(TokenCmd::Stats {
                now: Timestamp::from_ticks(42),
            }),
            WireCmd::Finalize,
            WireCmd::Export,
        ];
        for cmd in &cmds {
            let frame = seal_frame(cmd);
            let back: WireCmd = open_frame(&frame).expect("decode WireCmd");
            assert_eq!(back, *cmd);
        }

        let snapshot = ShardSnapshot {
            stats: StatsReport {
                accepted: 5,
                worker_restarts: 2,
                ..StatsReport::default()
            },
            latency: LatencyHistogram::new(),
            probe_counts: vec![3, 1, 4],
            timeline_delta: vec![(10, 1, 0, 1), (11, 0, 3, -1)],
        };
        let replies = vec![
            WireReply::InitOk,
            WireReply::Answers(vec![(
                0,
                Response::Admission {
                    vm: recs[0].id,
                    outcome: coach_sched::PlacementOutcome::Rejected,
                },
            )]),
            WireReply::Ran,
            WireReply::Token(Response::Ticked),
            WireReply::Stats(snapshot.clone()),
            WireReply::Finalized(
                PackingResult {
                    label: "Coach",
                    accepted: 1,
                    rejected: 2,
                    accepted_core_hours: 3.5,
                    accepted_gb_hours: 4.5,
                    probe_capacity: 5.5,
                    peak_servers_in_use: 6,
                    cpu_violation_rate: 0.25,
                    mem_violation_rate: 0.125,
                },
                snapshot,
            ),
            WireReply::Exported(vec![9, 9, 9]),
        ];
        for reply in &replies {
            let frame = seal_frame(reply);
            let back: WireReply = open_frame(&frame).expect("decode WireReply");
            assert_eq!(back, *reply);
        }
    }

    /// Deterministic protocol frames (supervision verbs, tokens, bare
    /// replies), length-prefix concatenated exactly as they cross the
    /// pipe, pinned against committed bytes. Drift means the protocol
    /// format changed and [`coach_wire::VERSION`] needs a bump. Regenerate
    /// with `COACH_WIRE_BLESS=1 cargo test -p coach-serve wire`.
    #[test]
    fn golden_protocol_frames_are_pinned() {
        let now = Timestamp::from_ticks(424_242);
        let frames: Vec<Vec<u8>> = vec![
            seal_frame(&WireCmd::Init {
                spec: PredictorSpec::Oracle { windows_per_day: 6 },
                snapshot: vec![0xAA, 0xBB, 0xCC],
            }),
            seal_frame(&WireCmd::Token(TokenCmd::Depart {
                vm: VmId::new(99),
                now,
            })),
            seal_frame(&WireCmd::Token(TokenCmd::Tick { now })),
            seal_frame(&WireCmd::Token(TokenCmd::Probe { now })),
            seal_frame(&WireCmd::Token(TokenCmd::Stats { now })),
            seal_frame(&WireCmd::Finalize),
            seal_frame(&WireCmd::Export),
            seal_frame(&WireReply::InitOk),
            seal_frame(&WireReply::Ran),
            seal_frame(&WireReply::Token(Response::Ticked)),
            seal_frame(&WireReply::Token(Response::ProbeCapacity(17))),
            seal_frame(&WireReply::Exported(vec![0xDE, 0xAD])),
        ];
        let mut stream = Vec::new();
        for frame in &frames {
            coach_wire::write_frame(&mut stream, frame).expect("write to vec");
        }

        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures/protocol_v1.bin");
        if std::env::var_os("COACH_WIRE_BLESS").is_some() {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &stream).unwrap();
        }
        let fixture =
            std::fs::read(&path).unwrap_or_else(|e| panic!("missing golden fixture: {e}"));
        assert_eq!(
            stream, fixture,
            "protocol frame encoding drifted from the committed v1 fixture — \
             this is a wire format change and needs a VERSION bump"
        );

        // The committed stream reads back frame-for-frame.
        let mut reader = &fixture[..];
        for expected in &frames {
            let frame = coach_wire::read_frame(&mut reader)
                .expect("read committed frame")
                .expect("stream not exhausted");
            assert_eq!(&frame, expected);
        }
        assert_eq!(coach_wire::read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn malformed_protocol_frames_fail_softly() {
        let mut e = Encoder::new();
        e.u8(250); // unknown WireCmd tag
        let mut frame = Vec::from(coach_wire::MAGIC);
        frame.extend_from_slice(&coach_wire::VERSION.to_le_bytes());
        frame.extend_from_slice(&e.into_bytes());
        assert!(matches!(
            open_frame::<WireCmd>(&frame),
            Err(WireError::UnknownTag { .. })
        ));

        // A truncated snapshot frame decodes to an error, not a panic.
        let snap = Snapshot::from_bytes(vec![0x43, 0x57]);
        assert!(snap.records().is_err());
    }
}

//! Platform-management compatibility models (§3.2): live migration and
//! VM-preserving host updates for CoachVMs with VA-backed memory.
//!
//! These are timing models — they answer "how long does the operation take
//! and how much downtime does the VM see?", which is what the compatibility
//! argument in the paper rests on: paging in trimmed cold memory happens in
//! the pre-copy phase, so VA-backing does **not** extend VM downtime.

use crate::memory::VmMemoryState;
use serde::{Deserialize, Serialize};

/// Bandwidths for migration/host-update timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformParams {
    /// Network copy bandwidth for live migration, GB/s.
    pub migration_gb_per_sec: f64,
    /// Page-in bandwidth for trimmed memory, GB/s.
    pub page_in_gb_per_sec: f64,
    /// Fraction of memory re-dirtied during one pre-copy pass.
    pub dirty_fraction_per_pass: f64,
    /// Serialization cost of VA-backing metadata for host updates, seconds
    /// per GB of VA memory ("negligible overhead", §3.2).
    pub va_metadata_secs_per_gb: f64,
    /// Pause/resume fixed cost of a VM-preserving host update, seconds.
    pub host_update_pause_secs: f64,
}

impl Default for PlatformParams {
    fn default() -> Self {
        PlatformParams {
            migration_gb_per_sec: 1.5,
            page_in_gb_per_sec: 2.5,
            dirty_fraction_per_pass: 0.05,
            va_metadata_secs_per_gb: 0.001,
            host_update_pause_secs: 2.0,
        }
    }
}

/// Timing breakdown of a live migration (pre-copy model, §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationTiming {
    /// Seconds spent paging in trimmed cold memory (overlapped with
    /// pre-copy).
    pub page_in_secs: f64,
    /// Seconds of pre-copy network transfer.
    pub precopy_secs: f64,
    /// Stop-and-copy downtime, seconds.
    pub downtime_secs: f64,
    /// Total wall-clock seconds.
    pub total_secs: f64,
}

/// Compute the live-migration timing for a VM memory state.
///
/// The trimmed (paged-out) portion must be paged in before it can be
/// copied, but this overlaps with the pre-copy of the resident portion, so
/// downtime only covers the final dirty pass — identical to a PA-only VM.
pub fn live_migration_timing(vm: &VmMemoryState, params: &PlatformParams) -> MigrationTiming {
    let resident_gb = vm.config.pa_gb + vm.resident_va_gb;
    let trimmed_gb = vm.unbacked_gb();
    let page_in_secs = trimmed_gb / params.page_in_gb_per_sec;
    let copy_secs = (resident_gb + trimmed_gb) / params.migration_gb_per_sec;
    // Page-in overlaps the copy; the longer of the two dominates.
    let precopy_secs = copy_secs.max(page_in_secs);
    // Final pass copies the re-dirtied fraction with the VM paused.
    let downtime_secs =
        (resident_gb + trimmed_gb) * params.dirty_fraction_per_pass / params.migration_gb_per_sec;
    MigrationTiming {
        page_in_secs,
        precopy_secs,
        downtime_secs,
        total_secs: precopy_secs + downtime_secs,
    }
}

/// Timing of a VM-preserving host update (§3.2): VMs pause, host reboots,
/// VMs resume; PA memory survives directly, VA memory needs its management
/// metadata persisted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostUpdateTiming {
    /// Seconds to persist VA-backing metadata.
    pub metadata_secs: f64,
    /// VM pause duration, seconds.
    pub pause_secs: f64,
    /// Total seconds of VM impact.
    pub total_secs: f64,
}

/// Compute host-update timing for a set of VM memory states.
pub fn host_update_timing(vms: &[&VmMemoryState], params: &PlatformParams) -> HostUpdateTiming {
    let va_total: f64 = vms.iter().map(|v| v.config.va_gb).sum();
    let metadata_secs = va_total * params.va_metadata_secs_per_gb;
    HostUpdateTiming {
        metadata_secs,
        pause_secs: params.host_update_pause_secs,
        total_secs: metadata_secs + params.host_update_pause_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::VmMemoryConfig;

    fn vm_state(pa: f64, resident: f64, wss: f64) -> VmMemoryState {
        VmMemoryState {
            config: VmMemoryConfig::split(32.0, pa),
            working_set_gb: wss,
            resident_va_gb: resident,
        }
    }

    #[test]
    fn downtime_independent_of_trimmed_memory() {
        // Two VMs with the same footprint; one has most memory trimmed out.
        let params = PlatformParams::default();
        let resident = vm_state(16.0, 10.0, 26.0);
        let trimmed = vm_state(16.0, 2.0, 26.0);
        let a = live_migration_timing(&resident, &params);
        let b = live_migration_timing(&trimmed, &params);
        // Downtime covers only the dirty pass of the same total memory.
        assert!((a.downtime_secs - b.downtime_secs).abs() < 1e-9);
        // But the trimmed VM pays page-in inside pre-copy, never downtime.
        assert!(b.page_in_secs > 0.0);
        assert!(b.precopy_secs >= b.page_in_secs);
    }

    #[test]
    fn bigger_vms_take_longer() {
        let params = PlatformParams::default();
        let small = live_migration_timing(&vm_state(4.0, 2.0, 6.0), &params);
        let big = live_migration_timing(&vm_state(16.0, 10.0, 26.0), &params);
        assert!(big.total_secs > small.total_secs);
    }

    #[test]
    fn host_update_metadata_is_negligible() {
        let params = PlatformParams::default();
        let v1 = vm_state(8.0, 4.0, 12.0);
        let v2 = vm_state(16.0, 2.0, 18.0);
        let t = host_update_timing(&[&v1, &v2], &params);
        // §3.2: persisting VA structures has "negligible overhead" —
        // well under a second for tens of GB of VA.
        assert!(t.metadata_secs < 0.1, "metadata {}s", t.metadata_secs);
        assert!(t.total_secs < 3.0);
    }

    #[test]
    fn fully_pa_vm_has_zero_page_in() {
        let params = PlatformParams::default();
        let v = VmMemoryState {
            config: VmMemoryConfig::fully_guaranteed(32.0),
            working_set_gb: 20.0,
            resident_va_gb: 0.0,
        };
        let t = live_migration_timing(&v, &params);
        assert_eq!(t.page_in_secs, 0.0);
    }
}

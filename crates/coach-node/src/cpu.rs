//! CPU groups: the fungible-resource sharing mechanism (Table 1, §3.4).
//!
//! Each CoachVM gets a *guaranteed* core count (its CPU group) and may
//! borrow from the shared oversubscribed core pool — or from other VMs'
//! idle guaranteed cores, because CPU is fungible — when it bursts.

use coach_types::VmId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-VM CPU allocation state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmCpuState {
    /// Guaranteed cores (the VM's CPU group).
    pub guaranteed: f64,
    /// Current demand in cores.
    pub demand: f64,
    /// Cores actually granted this step.
    pub granted: f64,
}

/// The CPU scheduler of one server.
///
/// # Example
///
/// ```
/// use coach_node::cpu::CpuGroups;
/// use coach_types::VmId;
/// let mut cpu = CpuGroups::new(10.0, 2.0);
/// cpu.add_vm(VmId::new(1), 4.0).unwrap();
/// cpu.set_demand(VmId::new(1), 6.0);
/// let grants = cpu.schedule();
/// // 4 guaranteed + 2 borrowed from the oversubscribed pool.
/// assert_eq!(grants[&VmId::new(1)].granted, 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CpuGroups {
    total_cores: f64,
    host_reserved: f64,
    vms: BTreeMap<VmId, VmCpuState>,
}

impl CpuGroups {
    /// Create with `total_cores`, reserving `host_reserved` for the host
    /// (the paper reserves 2 cores for Coach itself, §4.1).
    ///
    /// # Panics
    ///
    /// Panics if the reservation exceeds the total.
    pub fn new(total_cores: f64, host_reserved: f64) -> Self {
        assert!(total_cores > host_reserved, "reservation exceeds cores");
        CpuGroups {
            total_cores,
            host_reserved,
            vms: BTreeMap::new(),
        }
    }

    /// Cores available to VMs.
    pub fn schedulable_cores(&self) -> f64 {
        self.total_cores - self.host_reserved
    }

    /// Sum of guaranteed cores.
    pub fn guaranteed_total(&self) -> f64 {
        self.vms.values().map(|v| v.guaranteed).sum()
    }

    /// Add a VM with a guaranteed core count. Guaranteed totals may exceed
    /// physical cores only if the caller explicitly oversubscribes; this
    /// method refuses that.
    ///
    /// # Errors
    ///
    /// Returns `Err` if guaranteed cores would exceed schedulable cores or
    /// the id is taken.
    pub fn add_vm(&mut self, id: VmId, guaranteed: f64) -> Result<(), &'static str> {
        if self.vms.contains_key(&id) {
            return Err("vm already present");
        }
        if self.guaranteed_total() + guaranteed > self.schedulable_cores() + 1e-9 {
            return Err("guaranteed cores exceed capacity");
        }
        self.vms.insert(
            id,
            VmCpuState {
                guaranteed,
                demand: 0.0,
                granted: 0.0,
            },
        );
        Ok(())
    }

    /// Remove a VM.
    pub fn remove_vm(&mut self, id: VmId) -> Option<VmCpuState> {
        self.vms.remove(&id)
    }

    /// Set a VM's current core demand.
    pub fn set_demand(&mut self, id: VmId, demand: f64) {
        if let Some(vm) = self.vms.get_mut(&id) {
            vm.demand = demand.max(0.0);
        }
    }

    /// Adjust a VM's guaranteed cores (local mitigation: "readjust the CPU
    /// groups to meet actual demand").
    ///
    /// # Errors
    ///
    /// Same constraint as [`CpuGroups::add_vm`].
    pub fn resize_group(&mut self, id: VmId, guaranteed: f64) -> Result<(), &'static str> {
        let current = self.vms.get(&id).ok_or("unknown vm")?.guaranteed;
        if self.guaranteed_total() - current + guaranteed > self.schedulable_cores() + 1e-9 {
            return Err("guaranteed cores exceed capacity");
        }
        self.vms.get_mut(&id).expect("checked").guaranteed = guaranteed;
        Ok(())
    }

    /// Run one scheduling round: every VM first receives
    /// `min(demand, guaranteed)`; leftover cores (idle guaranteed + never-
    /// guaranteed pool) are shared work-conservingly among still-hungry VMs
    /// proportionally to their unmet demand. Returns the grant table.
    pub fn schedule(&mut self) -> BTreeMap<VmId, VmCpuState> {
        let mut leftover = self.schedulable_cores();
        // Phase 1: guaranteed grants.
        for vm in self.vms.values_mut() {
            vm.granted = vm.demand.min(vm.guaranteed);
            leftover -= vm.granted;
        }
        // Phase 2: proportional sharing of the remainder (CPU fungibility).
        let unmet_total: f64 = self
            .vms
            .values()
            .map(|v| (v.demand - v.granted).max(0.0))
            .sum();
        if unmet_total > 1e-12 && leftover > 1e-12 {
            let share = (leftover / unmet_total).min(1.0);
            for vm in self.vms.values_mut() {
                let unmet = (vm.demand - vm.granted).max(0.0);
                vm.granted += unmet * share;
            }
        }
        self.vms.clone()
    }

    /// Aggregate CPU "wait" signal: unmet demand as a fraction of total
    /// demand — the contention metric monitoring thresholds on (§3.4).
    pub fn wait_fraction(&self) -> f64 {
        let demand: f64 = self.vms.values().map(|v| v.demand).sum();
        if demand <= 0.0 {
            return 0.0;
        }
        let unmet: f64 = self
            .vms
            .values()
            .map(|v| (v.demand - v.granted).max(0.0))
            .sum();
        (unmet / demand).clamp(0.0, 1.0)
    }

    /// Utilization of schedulable cores.
    pub fn utilization(&self) -> f64 {
        let granted: f64 = self.vms.values().map(|v| v.granted).sum();
        (granted / self.schedulable_cores()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guaranteed_grants_always_honored() {
        let mut cpu = CpuGroups::new(10.0, 2.0);
        cpu.add_vm(VmId::new(1), 4.0).unwrap();
        cpu.add_vm(VmId::new(2), 4.0).unwrap();
        cpu.set_demand(VmId::new(1), 4.0);
        cpu.set_demand(VmId::new(2), 4.0);
        let g = cpu.schedule();
        assert_eq!(g[&VmId::new(1)].granted, 4.0);
        assert_eq!(g[&VmId::new(2)].granted, 4.0);
        assert_eq!(cpu.wait_fraction(), 0.0);
    }

    #[test]
    fn idle_guaranteed_cores_are_borrowable() {
        let mut cpu = CpuGroups::new(10.0, 2.0);
        cpu.add_vm(VmId::new(1), 6.0).unwrap();
        cpu.add_vm(VmId::new(2), 2.0).unwrap();
        cpu.set_demand(VmId::new(1), 0.5); // mostly idle
        cpu.set_demand(VmId::new(2), 6.0); // bursting over its group
        let g = cpu.schedule();
        // VM2 gets its 2 guaranteed + borrows up to the leftover 5.5.
        assert!((g[&VmId::new(2)].granted - 6.0).abs() < 1e-9);
    }

    #[test]
    fn contention_splits_leftover_proportionally() {
        let mut cpu = CpuGroups::new(8.0, 0.0);
        cpu.add_vm(VmId::new(1), 2.0).unwrap();
        cpu.add_vm(VmId::new(2), 2.0).unwrap();
        cpu.set_demand(VmId::new(1), 6.0); // unmet 4
        cpu.set_demand(VmId::new(2), 4.0); // unmet 2
        let g = cpu.schedule();
        // leftover = 8 - 4 = 4, shared 4:2 → +8/3 and +4/3.
        assert!((g[&VmId::new(1)].granted - (2.0 + 8.0 / 3.0)).abs() < 1e-9);
        assert!((g[&VmId::new(2)].granted - (2.0 + 4.0 / 3.0)).abs() < 1e-9);
        assert!(cpu.wait_fraction() > 0.0);
        assert!((cpu.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn add_and_resize_respect_capacity() {
        let mut cpu = CpuGroups::new(10.0, 2.0);
        cpu.add_vm(VmId::new(1), 6.0).unwrap();
        assert!(cpu.add_vm(VmId::new(2), 4.0).is_err());
        cpu.add_vm(VmId::new(2), 2.0).unwrap();
        assert!(cpu.resize_group(VmId::new(2), 3.0).is_err());
        cpu.resize_group(VmId::new(1), 5.0).unwrap();
        cpu.resize_group(VmId::new(2), 3.0).unwrap();
        assert!(cpu.resize_group(VmId::new(99), 1.0).is_err());
        assert!(cpu.add_vm(VmId::new(1), 0.1).is_err());
    }

    #[test]
    fn remove_frees_guarantee() {
        let mut cpu = CpuGroups::new(10.0, 2.0);
        cpu.add_vm(VmId::new(1), 8.0).unwrap();
        assert!(cpu.remove_vm(VmId::new(1)).is_some());
        assert!(cpu.remove_vm(VmId::new(1)).is_none());
        cpu.add_vm(VmId::new(2), 8.0).unwrap();
    }

    #[test]
    #[should_panic(expected = "reservation")]
    fn reservation_must_fit() {
        let _ = CpuGroups::new(2.0, 2.0);
    }
}

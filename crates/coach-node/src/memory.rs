//! The server memory substrate: PA-backed guaranteed memory, VA-backed
//! oversubscribed memory behind a zNUMA node, and an NVMe-like backing
//! store (§3.2).
//!
//! This is a discrete-time simulation (1-second steps) of the Hyper-V
//! mechanisms the paper uses:
//!
//! * **PA memory** is statically mapped at VM creation — always resident.
//! * **VA memory** is demand-backed from a shared *oversubscribed pool*;
//!   when the pool is exhausted, accesses beyond the resident set page
//!   against the backing store (disk), which is what degrades performance.
//! * **zNUMA** funnels guest accesses to the PA portion first, so only the
//!   working set overflowing PA touches VA at all.
//! * Resident VA is not returned when the working set shrinks — it goes
//!   **cold** (guest pages stay mapped), which is exactly the stock that
//!   **trimming** reclaims by writing it to the backing store at ~1.1 GB/s.
//!   **Extending** the pool maps unallocated host memory at ~15.7 GB/s
//!   (§4.5 — mapping needs no data movement).

use coach_types::VmId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bandwidths and latencies of the memory/storage substrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryParams {
    /// Cold-page trim bandwidth, GB/s (paper: 1.1 GB/s).
    pub trim_gb_per_sec: f64,
    /// Pool-extension bandwidth, GB/s (paper: 15.7 GB/s).
    pub extend_gb_per_sec: f64,
    /// Page-in bandwidth from the backing store, GB/s (NVMe-class).
    pub page_in_gb_per_sec: f64,
    /// Average DRAM access latency, nanoseconds.
    pub dram_latency_ns: f64,
    /// Average backing-store (page-fault) latency, nanoseconds.
    pub fault_latency_ns: f64,
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            trim_gb_per_sec: 1.1,
            extend_gb_per_sec: 15.7,
            page_in_gb_per_sec: 2.5,
            dram_latency_ns: 100.0,
            fault_latency_ns: 80_000.0, // ~80 µs NVMe read
        }
    }
}

/// A CoachVM's memory shape on this server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmMemoryConfig {
    /// Total guest memory, GB.
    pub size_gb: f64,
    /// Guaranteed, PA-backed portion (statically mapped).
    pub pa_gb: f64,
    /// Oversubscribed, VA-backed portion (demand-backed from the pool).
    pub va_gb: f64,
}

impl VmMemoryConfig {
    /// A fully-guaranteed VM (the GPVM baseline of §4.2).
    pub fn fully_guaranteed(size_gb: f64) -> Self {
        VmMemoryConfig {
            size_gb,
            pa_gb: size_gb,
            va_gb: 0.0,
        }
    }

    /// A fully-oversubscribed VM (the OVM baseline).
    pub fn fully_oversubscribed(size_gb: f64) -> Self {
        VmMemoryConfig {
            size_gb,
            pa_gb: 0.0,
            va_gb: size_gb,
        }
    }

    /// A Coach split.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ pa ≤ size` (VA is the remainder).
    pub fn split(size_gb: f64, pa_gb: f64) -> Self {
        assert!(
            pa_gb >= 0.0 && pa_gb <= size_gb,
            "PA portion must be within [0, size]"
        );
        VmMemoryConfig {
            size_gb,
            pa_gb,
            va_gb: size_gb - pa_gb,
        }
    }
}

/// Per-VM dynamic memory state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmMemoryState {
    /// Shape.
    pub config: VmMemoryConfig,
    /// Current guest working set, GB (driven by the workload model).
    pub working_set_gb: f64,
    /// VA memory currently backed by pool pages, GB. Grows with demand;
    /// shrinks only by trimming or VM removal.
    pub resident_va_gb: f64,
}

impl VmMemoryState {
    /// The working set overflowing the PA portion (zNUMA sends the rest to
    /// PA), capped at the VA size.
    pub fn va_demand_gb(&self) -> f64 {
        (self.working_set_gb - self.config.pa_gb)
            .max(0.0)
            .min(self.config.va_gb)
    }

    /// Unbacked VA demand: accesses to this range page-fault.
    pub fn unbacked_gb(&self) -> f64 {
        (self.va_demand_gb() - self.resident_va_gb).max(0.0)
    }

    /// Cold resident memory: backed pages outside the current working set —
    /// the stock that trimming can reclaim without hurting the VM.
    pub fn cold_va_gb(&self) -> f64 {
        (self.resident_va_gb - self.va_demand_gb()).max(0.0)
    }

    /// Fraction of working-set accesses that fault, under the paper's
    /// uniform-access assumption (§3.3).
    pub fn fault_fraction(&self) -> f64 {
        if self.working_set_gb <= 0.0 {
            return 0.0;
        }
        (self.unbacked_gb() / self.working_set_gb).clamp(0.0, 1.0)
    }
}

/// Per-step, per-VM memory telemetry (what the monitoring component reads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmMemoryStats {
    /// VM id.
    pub vm: VmId,
    /// Fraction of accesses that faulted this step.
    pub fault_fraction: f64,
    /// Average access slowdown factor (≥ 1.0) this step.
    pub slowdown: f64,
    /// GB paged in this step.
    pub paged_in_gb: f64,
    /// Memory utilization fraction (working set / size).
    pub utilization: f64,
}

/// The memory manager of one server.
///
/// # Example
///
/// ```
/// use coach_node::memory::{MemoryServer, MemoryParams, VmMemoryConfig};
/// use coach_types::VmId;
///
/// let mut srv = MemoryServer::new(64.0, 4.0, MemoryParams::default());
/// srv.set_pool_backing(6.0).unwrap();
/// srv.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 3.0)).unwrap();
/// srv.set_working_set(VmId::new(1), 4.0);
/// let stats = srv.step(1.0);
/// assert_eq!(stats.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryServer {
    params: MemoryParams,
    /// Total DRAM, GB.
    total_gb: f64,
    /// Reserved for the host OS/agent.
    host_reserved_gb: f64,
    /// Physical memory backing the oversubscribed pool.
    pool_backing_gb: f64,
    /// Pool pages currently lent to VMs (Σ resident_va).
    pool_used_gb: f64,
    vms: BTreeMap<VmId, VmMemoryState>,
}

/// Errors from memory-server operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemoryError {
    /// Not enough physical memory for the request.
    InsufficientMemory,
    /// The VM id is unknown.
    UnknownVm,
    /// The VM id is already hosted.
    DuplicateVm,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MemoryError::InsufficientMemory => "insufficient physical memory",
            MemoryError::UnknownVm => "unknown vm",
            MemoryError::DuplicateVm => "vm already hosted",
        })
    }
}

impl std::error::Error for MemoryError {}

impl MemoryServer {
    /// Create a server with `total_gb` DRAM, of which `host_reserved_gb` is
    /// kept for the host.
    ///
    /// # Panics
    ///
    /// Panics if the reservation exceeds the total.
    pub fn new(total_gb: f64, host_reserved_gb: f64, params: MemoryParams) -> Self {
        assert!(total_gb > host_reserved_gb, "host reservation exceeds DRAM");
        MemoryServer {
            params,
            total_gb,
            host_reserved_gb,
            pool_backing_gb: 0.0,
            pool_used_gb: 0.0,
            vms: BTreeMap::new(),
        }
    }

    /// PA memory allocated to VMs.
    pub fn pa_allocated_gb(&self) -> f64 {
        self.vms.values().map(|v| v.config.pa_gb).sum()
    }

    /// Physical memory not allocated to PA, pool, or host.
    pub fn unallocated_gb(&self) -> f64 {
        (self.total_gb - self.host_reserved_gb - self.pa_allocated_gb() - self.pool_backing_gb)
            .max(0.0)
    }

    /// Physical backing of the oversubscribed pool.
    pub fn pool_backing_gb(&self) -> f64 {
        self.pool_backing_gb
    }

    /// Pool pages currently lent out.
    pub fn pool_used_gb(&self) -> f64 {
        self.pool_used_gb
    }

    /// Free pool pages (Fig 21a's y-axis).
    pub fn pool_free_gb(&self) -> f64 {
        (self.pool_backing_gb - self.pool_used_gb).max(0.0)
    }

    /// Set the pool's physical backing size directly (initial sizing).
    ///
    /// # Errors
    ///
    /// Fails with [`MemoryError::InsufficientMemory`] if backing would
    /// exceed available physical memory or shrink below current use.
    pub fn set_pool_backing(&mut self, gb: f64) -> Result<(), MemoryError> {
        let max = self.total_gb - self.host_reserved_gb - self.pa_allocated_gb();
        if gb > max + 1e-9 || gb < self.pool_used_gb - 1e-9 {
            return Err(MemoryError::InsufficientMemory);
        }
        self.pool_backing_gb = gb;
        Ok(())
    }

    /// Add a VM; its PA portion is reserved immediately.
    ///
    /// # Errors
    ///
    /// Fails if PA does not fit in unallocated memory or the id is taken.
    pub fn add_vm(&mut self, id: VmId, config: VmMemoryConfig) -> Result<(), MemoryError> {
        if self.vms.contains_key(&id) {
            return Err(MemoryError::DuplicateVm);
        }
        if config.pa_gb > self.unallocated_gb() + 1e-9 {
            return Err(MemoryError::InsufficientMemory);
        }
        self.vms.insert(
            id,
            VmMemoryState {
                config,
                working_set_gb: 0.0,
                resident_va_gb: 0.0,
            },
        );
        Ok(())
    }

    /// Remove a VM, returning its resident pool pages.
    pub fn remove_vm(&mut self, id: VmId) -> Result<VmMemoryState, MemoryError> {
        let state = self.vms.remove(&id).ok_or(MemoryError::UnknownVm)?;
        self.pool_used_gb = (self.pool_used_gb - state.resident_va_gb).max(0.0);
        Ok(state)
    }

    /// Drive a VM's working set (workload models call this each step).
    pub fn set_working_set(&mut self, id: VmId, wss_gb: f64) {
        if let Some(vm) = self.vms.get_mut(&id) {
            vm.working_set_gb = wss_gb.clamp(0.0, vm.config.size_gb);
        }
    }

    /// A VM's current state.
    pub fn vm(&self, id: VmId) -> Option<&VmMemoryState> {
        self.vms.get(&id)
    }

    /// Hosted VM ids.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        self.vms.keys().copied()
    }

    /// Advance the simulation by `dt` seconds: demand-back VA from the pool
    /// (page-in bandwidth-limited) and report per-VM fault/slowdown
    /// telemetry. Resident memory beyond demand stays mapped (cold) until
    /// trimmed.
    ///
    /// When demand exceeds the pool and no mitigation intervenes, the host
    /// pager **steals** resident pages from other VMs (cold pages first,
    /// then hot ones) at the page-out bandwidth — the behavior behind the
    /// paper's `None` baseline, which "frequently pages out memory that is
    /// paged in later and fails to recover" (§4.4).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(&mut self, dt: f64) -> Vec<VmMemoryStats> {
        let mut stats = Vec::with_capacity(self.vms.len());
        self.step_into(dt, &mut stats);
        stats
    }

    /// [`MemoryServer::step`] into a caller-owned buffer, so a steady-state
    /// simulation loop performs no per-tick allocation. The buffer is
    /// cleared first; its capacity is reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step_into(&mut self, dt: f64, stats: &mut Vec<VmMemoryStats>) {
        assert!(dt > 0.0, "dt must be positive");
        stats.clear();
        let mut page_in_budget = self.params.page_in_gb_per_sec * dt;

        // Host pager: if demand is unbacked and the pool is exhausted,
        // steal resident pages from every VM *proportionally to its
        // resident size* (a global clock-like approximation that cannot
        // tell hot pages from cold ones), limited by the page-out
        // bandwidth. Stealing hot pages creates new unbacked demand on the
        // victims — the thrash behind the `None` baseline. Mitigation
        // policies avoid this by trimming *cold* pages precisely.
        let total_unbacked: f64 = self.vms.values().map(|v| v.unbacked_gb()).sum();
        if total_unbacked > 1e-9 && self.pool_free_gb() < total_unbacked - 1e-9 {
            let steal_budget =
                (self.params.trim_gb_per_sec * dt).min(total_unbacked - self.pool_free_gb());
            let total_resident: f64 = self.vms.values().map(|v| v.resident_va_gb).sum();
            if total_resident > 1e-9 {
                let mut stolen_total = 0.0;
                for vm in self.vms.values_mut() {
                    let take =
                        (steal_budget * vm.resident_va_gb / total_resident).min(vm.resident_va_gb);
                    vm.resident_va_gb -= take;
                    stolen_total += take;
                }
                self.pool_used_gb = (self.pool_used_gb - stolen_total).max(0.0);
            }
        }

        // Iterate the map in place (no id staging vec), carrying the pool
        // level in locals so granting does not re-borrow `self`.
        let pool_backing = self.pool_backing_gb;
        let mut pool_used = self.pool_used_gb;
        let params = self.params;
        for (&id, vm) in self.vms.iter_mut() {
            let free_pool = (pool_backing - pool_used).max(0.0);
            let want = vm.unbacked_gb();
            let grant = want.min(free_pool).min(page_in_budget);
            vm.resident_va_gb += grant;
            page_in_budget -= grant;

            // Faults this step: accesses to still-unbacked memory plus the
            // demand-paging of the pages just granted (each granted page
            // was touched, missed, and read from the backing store).
            let fault_fraction = if vm.working_set_gb > 0.0 {
                ((vm.unbacked_gb() + grant) / vm.working_set_gb).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let utilization = if vm.config.size_gb > 0.0 {
                vm.working_set_gb / vm.config.size_gb
            } else {
                0.0
            };
            pool_used += grant;
            stats.push(VmMemoryStats {
                vm: id,
                fault_fraction,
                slowdown: slowdown_for_params(&params, fault_fraction),
                paged_in_gb: grant,
                utilization,
            });
        }
        self.pool_used_gb = pool_used;
    }

    /// The latency-ratio slowdown model: accesses that fault pay the
    /// backing-store latency instead of DRAM latency.
    pub fn slowdown_for(&self, fault_fraction: f64) -> f64 {
        slowdown_for_params(&self.params, fault_fraction)
    }

    /// Trim up to `gb` of a VM's cold memory, limited by trim bandwidth
    /// over `dt` seconds. Returns the GB actually trimmed (freed to the
    /// pool).
    pub fn trim(&mut self, id: VmId, gb: f64, dt: f64) -> f64 {
        let budget = self.params.trim_gb_per_sec * dt;
        let Some(vm) = self.vms.get_mut(&id) else {
            return 0.0;
        };
        let trimmed = gb.min(vm.cold_va_gb()).min(budget).max(0.0);
        vm.resident_va_gb -= trimmed;
        self.pool_used_gb = (self.pool_used_gb - trimmed).max(0.0);
        trimmed
    }

    /// Total cold (trimmable) memory across VMs.
    pub fn total_cold_gb(&self) -> f64 {
        self.vms.values().map(|v| v.cold_va_gb()).sum()
    }

    /// Extend the pool backing from unallocated memory, limited by the
    /// extension bandwidth over `dt` seconds. Returns GB added.
    pub fn extend_pool(&mut self, gb: f64, dt: f64) -> f64 {
        let budget = self.params.extend_gb_per_sec * dt;
        let add = gb.min(self.unallocated_gb()).min(budget).max(0.0);
        self.pool_backing_gb += add;
        add
    }

    /// Simulation parameters.
    pub fn params(&self) -> &MemoryParams {
        &self.params
    }

    /// Invariant check used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let pa = self.pa_allocated_gb();
        if pa + self.pool_backing_gb + self.host_reserved_gb > self.total_gb + 1e-6 {
            return Err(format!(
                "overcommitted physical memory: pa={pa} pool={} host={}",
                self.pool_backing_gb, self.host_reserved_gb
            ));
        }
        if self.pool_used_gb > self.pool_backing_gb + 1e-6 {
            return Err(format!(
                "pool used {} exceeds backing {}",
                self.pool_used_gb, self.pool_backing_gb
            ));
        }
        let resident: f64 = self.vms.values().map(|v| v.resident_va_gb).sum();
        if (resident - self.pool_used_gb).abs() > 1e-6 {
            return Err(format!(
                "resident sum {resident} != pool used {}",
                self.pool_used_gb
            ));
        }
        for (id, vm) in &self.vms {
            if vm.resident_va_gb > vm.config.va_gb + 1e-9 {
                return Err(format!("{id}: resident exceeds VA size"));
            }
        }
        Ok(())
    }
}

/// The latency-ratio slowdown model behind [`MemoryServer::slowdown_for`]:
/// accesses that fault pay the backing-store latency instead of DRAM
/// latency. Only a fraction of faulting accesses actually stall the
/// pipeline (prefetch, batching); 1% effective exposure matches NVMe-paging
/// slowdowns observed in practice (a few × at full paging).
fn slowdown_for_params(params: &MemoryParams, fault_fraction: f64) -> f64 {
    let f = fault_fraction.clamp(0.0, 1.0);
    let exposure = 0.01;
    1.0 + f * exposure * (params.fault_latency_ns / params.dram_latency_ns - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn server() -> MemoryServer {
        let mut s = MemoryServer::new(64.0, 4.0, MemoryParams::default());
        s.set_pool_backing(10.0).unwrap();
        s
    }

    #[test]
    fn pa_reservation_accounting() {
        let mut s = server();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 3.0))
            .unwrap();
        s.add_vm(VmId::new(2), VmMemoryConfig::split(8.0, 1.0))
            .unwrap();
        assert_eq!(s.pa_allocated_gb(), 4.0);
        assert_eq!(s.unallocated_gb(), 64.0 - 4.0 - 10.0 - 4.0);
        assert_eq!(
            s.add_vm(VmId::new(3), VmMemoryConfig::fully_guaranteed(100.0)),
            Err(MemoryError::InsufficientMemory)
        );
        assert_eq!(
            s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 1.0)),
            Err(MemoryError::DuplicateVm)
        );
        s.check_invariants().unwrap();
    }

    #[test]
    fn working_set_within_pa_never_faults() {
        let mut s = server();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 4.0))
            .unwrap();
        s.set_working_set(VmId::new(1), 3.5);
        let stats = s.step(1.0);
        assert_eq!(stats[0].fault_fraction, 0.0);
        assert_eq!(stats[0].slowdown, 1.0);
        assert_eq!(s.pool_used_gb(), 0.0);
    }

    #[test]
    fn overflow_backs_from_pool_at_page_in_bandwidth() {
        let mut s = server();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 3.0))
            .unwrap();
        s.set_working_set(VmId::new(1), 7.0); // 4 GB overflow
        let stats = s.step(1.0);
        // Page-in limited to 2.5 GB/s.
        assert!((stats[0].paged_in_gb - 2.5).abs() < 1e-9);
        assert!(stats[0].fault_fraction > 0.0);
        let stats = s.step(1.0);
        assert!((stats[0].paged_in_gb - 1.5).abs() < 1e-9);
        // The remaining 1.5 GB demand-paged in this step (those are faults).
        assert!(stats[0].fault_fraction > 0.0);
        let stats = s.step(1.0);
        assert_eq!(stats[0].fault_fraction, 0.0); // fully resident now
        assert!((s.pool_used_gb() - 4.0).abs() < 1e-9);
        s.check_invariants().unwrap();
    }

    #[test]
    fn page_in_budget_shared_across_vms() {
        let mut s = server();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 1.0))
            .unwrap();
        s.add_vm(VmId::new(2), VmMemoryConfig::split(8.0, 1.0))
            .unwrap();
        s.set_working_set(VmId::new(1), 5.0);
        s.set_working_set(VmId::new(2), 5.0);
        let stats = s.step(1.0);
        let total: f64 = stats.iter().map(|st| st.paged_in_gb).sum();
        assert!(total <= 2.5 + 1e-9, "page-in exceeded bandwidth: {total}");
    }

    #[test]
    fn pool_exhaustion_causes_sustained_faults() {
        let mut s = server();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(16.0, 2.0))
            .unwrap();
        s.set_working_set(VmId::new(1), 16.0); // 14 GB overflow > 10 GB pool
        for _ in 0..10 {
            s.step(1.0);
        }
        let st = s.vm(VmId::new(1)).unwrap();
        assert!((st.resident_va_gb - 10.0).abs() < 1e-9, "pool-capped");
        assert!(st.unbacked_gb() > 3.9);
        let stats = s.step(1.0);
        assert!(stats[0].fault_fraction > 0.2);
        assert!(stats[0].slowdown > 1.0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn shrinking_demand_goes_cold_not_free() {
        let mut s = server();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 3.0))
            .unwrap();
        s.set_working_set(VmId::new(1), 7.0);
        s.step(1.0);
        s.step(1.0);
        assert!(s.pool_used_gb() > 3.9);
        s.set_working_set(VmId::new(1), 2.0); // back under PA
        s.step(1.0);
        // Pages stay resident but turn cold.
        assert!(s.pool_used_gb() > 3.9);
        assert!((s.total_cold_gb() - 4.0).abs() < 1e-9);
        s.check_invariants().unwrap();
    }

    #[test]
    fn trim_frees_cold_bandwidth_limited() {
        let mut s = server();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 1.0))
            .unwrap();
        s.set_working_set(VmId::new(1), 6.0);
        for _ in 0..5 {
            s.step(1.0);
        }
        s.set_working_set(VmId::new(1), 3.0); // 3 GB of resident goes cold
        s.step(1.0);
        assert!((s.total_cold_gb() - 3.0).abs() < 1e-9);
        let used_before = s.pool_used_gb();
        let trimmed = s.trim(VmId::new(1), 10.0, 1.0);
        assert!((trimmed - 1.1).abs() < 1e-9, "trim bandwidth 1.1 GB/s");
        assert!((s.pool_used_gb() - (used_before - 1.1)).abs() < 1e-9);
        // Trimming never cuts into the active working set.
        assert_eq!(s.vm(VmId::new(1)).unwrap().unbacked_gb(), 0.0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn extend_pool_bandwidth_and_capacity_limited() {
        let mut s = server();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 2.0))
            .unwrap();
        // Unallocated = 64 - 4 - 10 - 2 = 48.
        let added = s.extend_pool(100.0, 1.0);
        assert!((added - 15.7).abs() < 1e-9, "extend bandwidth 15.7 GB/s");
        let added2 = s.extend_pool(100.0, 10.0);
        assert!((added2 - (48.0 - 15.7)).abs() < 1e-6, "capacity-limited");
        assert!(s.unallocated_gb() < 1e-6);
        s.check_invariants().unwrap();
    }

    #[test]
    fn remove_vm_returns_pool_pages() {
        let mut s = server();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 3.0))
            .unwrap();
        s.set_working_set(VmId::new(1), 7.0);
        s.step(1.0);
        s.step(1.0);
        assert!(s.pool_used_gb() > 0.0);
        s.remove_vm(VmId::new(1)).unwrap();
        assert_eq!(s.pool_used_gb(), 0.0);
        assert_eq!(s.remove_vm(VmId::new(1)), Err(MemoryError::UnknownVm));
    }

    #[test]
    fn slowdown_monotone_in_faults() {
        let s = server();
        assert_eq!(s.slowdown_for(0.0), 1.0);
        assert!(s.slowdown_for(0.5) > s.slowdown_for(0.1));
        assert!(s.slowdown_for(1.0) < 100.0, "bounded by exposure model");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected() {
        let mut s = server();
        let _ = s.step(0.0);
    }

    proptest! {
        #[test]
        fn prop_invariants_hold_under_random_driving(
            wss in prop::collection::vec(0.0f64..20.0, 1..40),
        ) {
            let mut s = server();
            s.add_vm(VmId::new(1), VmMemoryConfig::split(12.0, 3.0)).unwrap();
            s.add_vm(VmId::new(2), VmMemoryConfig::split(12.0, 2.0)).unwrap();
            for (i, w) in wss.iter().enumerate() {
                let id = VmId::new((i % 2) as u64 + 1);
                s.set_working_set(id, *w);
                s.step(1.0);
                if i % 3 == 0 {
                    s.trim(id, 1.0, 1.0);
                }
                if i % 5 == 0 {
                    s.extend_pool(0.5, 1.0);
                }
                prop_assert!(s.check_invariants().is_ok(), "{:?}", s.check_invariants());
            }
        }

        #[test]
        fn prop_fault_fraction_bounded(pa in 0.0f64..8.0, wss in 0.0f64..8.0) {
            let mut s = server();
            s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, pa)).unwrap();
            s.set_working_set(VmId::new(1), wss);
            let stats = s.step(1.0);
            prop_assert!((0.0..=1.0).contains(&stats[0].fault_fraction));
            prop_assert!(stats[0].slowdown >= 1.0);
        }
    }
}

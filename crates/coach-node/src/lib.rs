//! The server-local substrate of Coach: PA/VA memory management, CPU
//! groups, monitoring, two-level contention prediction, and
//! reactive/proactive mitigation (§3.2–§3.4).
//!
//! The crate simulates, at 1-second resolution, the Hyper-V mechanisms the
//! production system relies on — PA-backed guaranteed memory, VA-backed
//! oversubscribed memory behind a zNUMA node, a shared oversubscribed pool
//! with an NVMe backing store, cold-page trimming, pool extension, and live
//! migration — so that the contention experiments (Fig 15/18/21) can run on
//! any machine.
//!
//! # Example
//!
//! ```
//! use coach_node::memory::{MemoryServer, MemoryParams, VmMemoryConfig};
//! use coach_node::agent::OversubscriptionAgent;
//! use coach_node::mitigation::MitigationPolicy;
//! use coach_node::monitor::MonitorConfig;
//! use coach_types::VmId;
//!
//! let mut server = MemoryServer::new(64.0, 4.0, MemoryParams::default());
//! server.set_pool_backing(8.0)?;
//! server.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 3.0))?;
//!
//! let mut agent = OversubscriptionAgent::new(
//!     MonitorConfig::default(),
//!     MitigationPolicy::extend(true),
//!     0.5,
//! );
//! agent.add_vm(VmId::new(1));
//!
//! server.set_working_set(VmId::new(1), 6.0);
//! let stats = server.step(1.0);
//! agent.step(0.0, &mut server, &stats, 0.0, 0.0);
//! # Ok::<(), coach_node::memory::MemoryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod cpu;
pub mod memory;
pub mod mitigation;
pub mod monitor;
pub mod platform;

pub use agent::OversubscriptionAgent;
pub use cpu::CpuGroups;
pub use memory::{
    MemoryError, MemoryParams, MemoryServer, VmMemoryConfig, VmMemoryState, VmMemoryStats,
};
pub use mitigation::{MitigationAction, MitigationEngine, MitigationPolicy};
pub use monitor::{ContentionEvent, ContentionKind, Monitor, MonitorConfig};
pub use platform::{
    host_update_timing, live_migration_timing, HostUpdateTiming, MigrationTiming, PlatformParams,
};

//! The mitigation component: reactive and proactive contention remediation
//! (§3.4, evaluated in Fig 21).
//!
//! Local mitigations first (cheap): **trim** cold pages to free pool space,
//! then **extend** the pool with unallocated server memory. When local
//! measures cannot restore headroom, the global mitigation — **live
//! migration** of the most disruptive VM — kicks in. Migration is modelled
//! with the pre-copy behavior of §3.2: trimmed/cold memory must be paged in
//! during pre-copy, so reclaiming its resources takes the longest.

use crate::memory::MemoryServer;
use coach_types::VmId;
use serde::{Deserialize, Serialize};

/// Which mitigation actions a policy may take (Fig 21's six policies are
/// `{Trim, Extend, Migrate} × {Reactive, Proactive}`; `Extend` implies trim
/// first, `Migrate` implies trim+extend first, matching the paper's
/// escalation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationPolicy {
    /// Trim cold pages.
    pub trim: bool,
    /// Extend the pool from unallocated memory.
    pub extend: bool,
    /// Live-migrate a VM away.
    pub migrate: bool,
    /// Act on predicted contention (proactive) rather than only observed.
    pub proactive: bool,
}

impl MitigationPolicy {
    /// No mitigation at all (the `None` baseline).
    pub fn none() -> Self {
        MitigationPolicy {
            trim: false,
            extend: false,
            migrate: false,
            proactive: false,
        }
    }

    /// Trim only.
    pub fn trim_only(proactive: bool) -> Self {
        MitigationPolicy {
            trim: true,
            extend: false,
            migrate: false,
            proactive,
        }
    }

    /// Trim, then extend.
    pub fn extend(proactive: bool) -> Self {
        MitigationPolicy {
            trim: true,
            extend: true,
            migrate: false,
            proactive,
        }
    }

    /// Trim, then extend, then migrate.
    pub fn migrate(proactive: bool) -> Self {
        MitigationPolicy {
            trim: true,
            extend: true,
            migrate: true,
            proactive,
        }
    }

    /// Display label matching the paper's legend.
    pub fn label(&self) -> String {
        let base = if self.migrate {
            "Migrate"
        } else if self.extend {
            "Extend"
        } else if self.trim {
            "Trim"
        } else {
            return "None".to_string();
        };
        format!(
            "{base}-{}",
            if self.proactive {
                "Proactive"
            } else {
                "Reactive"
            }
        )
    }
}

/// An action the engine took this step (for experiment logging).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MitigationAction {
    /// Trimmed this many GB from a VM.
    Trimmed {
        /// Victim VM.
        vm: VmId,
        /// GB trimmed.
        gb: f64,
    },
    /// Extended the pool by this many GB.
    Extended {
        /// GB added to the pool backing.
        gb: f64,
    },
    /// Started migrating a VM.
    MigrationStarted {
        /// VM being migrated.
        vm: VmId,
        /// Estimated seconds to completion.
        eta_secs: f64,
    },
    /// Migration finished; resources reclaimed.
    MigrationCompleted {
        /// The migrated VM.
        vm: VmId,
    },
}

/// In-flight migration bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Migration {
    vm: VmId,
    remaining_gb: f64,
}

/// Migration bandwidth, GB/s (live-migration copy over the datacenter NIC).
const MIGRATION_GB_PER_SEC: f64 = 1.5;

/// The mitigation engine for one server.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationEngine {
    policy: MitigationPolicy,
    in_flight: Option<Migration>,
    /// Pool headroom (GB) the engine tries to maintain while triggered.
    target_headroom_gb: f64,
    triggered: bool,
}

impl MitigationEngine {
    /// Create an engine maintaining `target_headroom_gb` of pool headroom
    /// once triggered.
    pub fn new(policy: MitigationPolicy, target_headroom_gb: f64) -> Self {
        MitigationEngine {
            policy,
            in_flight: None,
            target_headroom_gb: target_headroom_gb.max(0.0),
            triggered: false,
        }
    }

    /// The policy.
    pub fn policy(&self) -> MitigationPolicy {
        self.policy
    }

    /// Arm the engine (called by the agent on a contention event).
    pub fn trigger(&mut self) {
        self.triggered = true;
    }

    /// Whether the engine is currently working on a contention.
    pub fn is_triggered(&self) -> bool {
        self.triggered
    }

    /// Whether a migration is in flight.
    pub fn migration_in_flight(&self) -> Option<VmId> {
        self.in_flight.map(|m| m.vm)
    }

    /// Run one second of mitigation work. Returns the actions taken.
    ///
    /// Escalation order per the paper: trim cold memory first; if no cold
    /// memory remains and headroom is still short, extend the pool; if the
    /// pool cannot be extended, migrate the busiest VM. Migration frees
    /// resources only on completion ("the memory cannot be reclaimed until
    /// the VM is migrated").
    pub fn step(&mut self, server: &mut MemoryServer, dt: f64) -> Vec<MitigationAction> {
        let mut actions = Vec::new();

        // Progress any in-flight migration regardless of trigger state.
        if let Some(mut mig) = self.in_flight {
            mig.remaining_gb -= MIGRATION_GB_PER_SEC * dt;
            if mig.remaining_gb <= 0.0 {
                // Completion: the VM leaves, freeing PA + pool pages.
                let _ = server.remove_vm(mig.vm);
                actions.push(MitigationAction::MigrationCompleted { vm: mig.vm });
                self.in_flight = None;
            } else {
                self.in_flight = Some(mig);
            }
        }

        if !self.triggered {
            return actions;
        }

        let shortfall = |server: &MemoryServer| -> f64 {
            // Unbacked demand plus the headroom target, minus free pool.
            let unbacked: f64 = server
                .vm_ids()
                .map(|id| server.vm(id).map_or(0.0, |v| v.unbacked_gb()))
                .sum();
            (unbacked + self.target_headroom_gb - server.pool_free_gb()).max(0.0)
        };

        let mut need = shortfall(server);
        if need <= 1e-9 {
            // Recovered.
            self.triggered = false;
            return actions;
        }

        // 1) Trim cold pages (largest cold stock first).
        if self.policy.trim && need > 0.0 {
            let mut victims: Vec<(VmId, f64)> = server
                .vm_ids()
                .map(|id| (id, server.vm(id).map_or(0.0, |v| v.cold_va_gb())))
                .collect();
            victims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            for (vm, cold) in victims {
                if need <= 0.0 {
                    break;
                }
                if cold <= 1e-9 {
                    continue;
                }
                let trimmed = server.trim(vm, need, dt);
                if trimmed > 0.0 {
                    actions.push(MitigationAction::Trimmed { vm, gb: trimmed });
                    need -= trimmed;
                }
            }
        }

        // 2) Extend the pool from unallocated memory.
        if self.policy.extend && need > 0.0 {
            let added = server.extend_pool(need, dt);
            if added > 0.0 {
                actions.push(MitigationAction::Extended { gb: added });
                need -= added;
            }
        }

        // 3) Migrate the VM with the largest VA demand ("busier VMs cause
        //    more contention"), if nothing else worked and none in flight.
        if self.policy.migrate && need > 0.0 && self.in_flight.is_none() {
            let candidate = server
                .vm_ids()
                .map(|id| {
                    let v = server.vm(id).expect("listed id");
                    // Pre-copy must move PA + resident VA + paged-out cold
                    // memory (page-in during pre-copy, §3.2).
                    let move_gb = v.config.pa_gb + v.va_demand_gb();
                    (id, v.va_demand_gb(), move_gb)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            if let Some((vm, _, move_gb)) = candidate {
                self.in_flight = Some(Migration {
                    vm,
                    remaining_gb: move_gb,
                });
                actions.push(MitigationAction::MigrationStarted {
                    vm,
                    eta_secs: move_gb / MIGRATION_GB_PER_SEC,
                });
            }
        }

        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{MemoryParams, VmMemoryConfig};

    /// 32 GB server, 6 GB pool, one quiet VM with cold memory and one
    /// demanding VM.
    fn pressured_server() -> MemoryServer {
        let mut s = MemoryServer::new(32.0, 2.0, MemoryParams::default());
        s.set_pool_backing(6.0).unwrap();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 3.0))
            .unwrap();
        s.add_vm(VmId::new(2), VmMemoryConfig::split(8.0, 1.0))
            .unwrap();
        // VM1 uses 3 GB of pool, VM2 uses 3 GB: pool exhausted.
        s.set_working_set(VmId::new(1), 6.0);
        s.set_working_set(VmId::new(2), 4.0);
        for _ in 0..5 {
            s.step(1.0);
        }
        s
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(MitigationPolicy::none().label(), "None");
        assert_eq!(MitigationPolicy::trim_only(false).label(), "Trim-Reactive");
        assert_eq!(MitigationPolicy::extend(true).label(), "Extend-Proactive");
        assert_eq!(MitigationPolicy::migrate(false).label(), "Migrate-Reactive");
    }

    #[test]
    fn trim_resolves_when_cold_memory_exists() {
        let mut s = pressured_server();
        // VM1's working set drops back under PA: its 3 GB of resident VA
        // turn cold. VM2 then grows 2 GB beyond the exhausted pool.
        s.set_working_set(VmId::new(1), 2.0);
        s.set_working_set(VmId::new(2), 6.0);
        s.step(1.0);
        // The host pager already reclaimed up to 1.1 GB of the 3 GB stock.
        assert!(s.total_cold_gb() > 1.5, "cold stock expected");
        let mut engine = MitigationEngine::new(MitigationPolicy::trim_only(false), 0.5);
        engine.trigger();
        let mut trimmed_any = false;
        for _ in 0..30 {
            for a in engine.step(&mut s, 1.0) {
                if matches!(a, MitigationAction::Trimmed { .. }) {
                    trimmed_any = true;
                }
            }
            s.step(1.0);
        }
        assert!(trimmed_any, "expected trim actions");
        // Trimming VM1's cold pages freed enough pool for VM2.
        assert!(s.vm(VmId::new(2)).unwrap().unbacked_gb() < 1e-6);
        assert!(!engine.is_triggered(), "engine should stand down");
    }

    #[test]
    fn extend_resolves_pool_exhaustion() {
        let mut s = pressured_server();
        s.set_working_set(VmId::new(2), 8.0); // 7 GB demand, pool only 6
        s.step(1.0);
        let mut engine = MitigationEngine::new(MitigationPolicy::extend(false), 0.5);
        engine.trigger();
        let mut extended = 0.0;
        for _ in 0..10 {
            for a in engine.step(&mut s, 1.0) {
                if let MitigationAction::Extended { gb } = a {
                    extended += gb;
                }
            }
            s.step(1.0);
        }
        assert!(extended > 3.0, "extended only {extended} GB");
        // Contention resolved: demand fully backed.
        let v2 = s.vm(VmId::new(2)).unwrap();
        assert!(v2.unbacked_gb() < 1e-6);
        assert!(!engine.is_triggered(), "engine should stand down");
    }

    #[test]
    fn migration_frees_resources_only_on_completion() {
        let mut s = MemoryServer::new(16.0, 2.0, MemoryParams::default());
        s.set_pool_backing(13.0).unwrap(); // leaves ~0 unallocated after PA
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 0.5))
            .unwrap();
        s.add_vm(VmId::new(2), VmMemoryConfig::split(8.0, 0.5))
            .unwrap();
        s.set_working_set(VmId::new(1), 8.0);
        s.set_working_set(VmId::new(2), 8.0);
        for _ in 0..10 {
            s.step(1.0);
        }
        // 15 GB demand vs 13 GB pool: shortfall that extend cannot cover.
        let mut engine = MitigationEngine::new(MitigationPolicy::migrate(false), 0.5);
        engine.trigger();
        let first = engine.step(&mut s, 1.0);
        assert!(
            first
                .iter()
                .any(|a| matches!(a, MitigationAction::MigrationStarted { .. })),
            "expected migration start, got {first:?}"
        );
        let vm_count_before = s.vm_ids().count();
        assert_eq!(vm_count_before, 2, "nothing freed yet");
        // Drive to completion.
        let mut completed = false;
        for _ in 0..60 {
            for a in engine.step(&mut s, 1.0) {
                if matches!(a, MitigationAction::MigrationCompleted { .. }) {
                    completed = true;
                }
            }
            s.step(1.0);
        }
        assert!(completed, "migration should complete");
        assert_eq!(s.vm_ids().count(), 1);
    }

    #[test]
    fn none_policy_takes_no_action() {
        let mut s = pressured_server();
        s.set_working_set(VmId::new(2), 8.0);
        s.step(1.0);
        let mut engine = MitigationEngine::new(MitigationPolicy::none(), 0.5);
        engine.trigger();
        for _ in 0..5 {
            assert!(engine.step(&mut s, 1.0).is_empty());
            s.step(1.0);
        }
        // Still contended.
        assert!(s.vm(VmId::new(2)).unwrap().unbacked_gb() > 0.0);
    }

    #[test]
    fn engine_stands_down_when_headroom_restored() {
        let mut s = pressured_server();
        let mut engine = MitigationEngine::new(MitigationPolicy::extend(false), 0.25);
        engine.trigger();
        for _ in 0..10 {
            engine.step(&mut s, 1.0);
            s.step(1.0);
            if !engine.is_triggered() {
                return;
            }
        }
        panic!("engine never stood down");
    }
}

//! The per-server oversubscription agent (§3.1/§3.4): monitoring every
//! 20 s, two-level prediction (EWMA + LSTM), and reactive/proactive
//! mitigation.
//!
//! The agent is the glue: it feeds 20-second utilization samples to the
//! per-VM [`LocalPredictor`]s, raises *reactive* triggers when the
//! [`Monitor`] observes contention, and *proactive* triggers when the
//! predictors expect the pool to run short within the next horizon.

use crate::memory::{MemoryServer, VmMemoryStats};
use crate::mitigation::{MitigationAction, MitigationEngine, MitigationPolicy};
use crate::monitor::{ContentionEvent, ContentionKind, Monitor, MonitorConfig};
use coach_predict::{LocalPredictor, LstmParams, LstmScratch};
use coach_types::VmId;
use std::collections::BTreeMap;

/// The oversubscription agent of one server.
#[derive(Debug, Clone, PartialEq)]
pub struct OversubscriptionAgent {
    monitor: Monitor,
    engine: MitigationEngine,
    predictors: BTreeMap<VmId, LocalPredictor>,
    /// Shared LSTM forward/backward scratch, reused across every predictor
    /// and every step — the agent loop allocates nothing in steady state.
    scratch: LstmScratch,
    /// Actions taken, with timestamps (for experiment traces).
    log: Vec<(f64, MitigationAction)>,
    proactive_events: u64,
    reactive_events: u64,
}

impl OversubscriptionAgent {
    /// Create an agent with a monitoring config and mitigation policy.
    pub fn new(monitor: MonitorConfig, policy: MitigationPolicy, target_headroom_gb: f64) -> Self {
        OversubscriptionAgent {
            monitor: Monitor::new(monitor),
            engine: MitigationEngine::new(policy, target_headroom_gb),
            predictors: BTreeMap::new(),
            scratch: LstmScratch::new(LstmParams::default().hidden),
            log: Vec::new(),
            proactive_events: 0,
            reactive_events: 0,
        }
    }

    /// Register a VM (creates its local predictor).
    pub fn add_vm(&mut self, vm: VmId) {
        self.predictors
            .entry(vm)
            .or_insert_with(|| LocalPredictor::new(vm.raw()));
    }

    /// Forget a VM.
    pub fn remove_vm(&mut self, vm: VmId) {
        self.predictors.remove(&vm);
    }

    /// Advance one simulated second. The caller passes the memory server
    /// and the latest per-VM stats (from [`MemoryServer::step`]) plus the
    /// CPU scheduler's wait/utilization signals.
    ///
    /// Returns the mitigation actions taken this second.
    pub fn step(
        &mut self,
        now: f64,
        server: &mut MemoryServer,
        stats: &[VmMemoryStats],
        cpu_wait: f64,
        cpu_util: f64,
    ) -> Vec<MitigationAction> {
        // Monitoring + prediction run on the 20-second cadence.
        if self.monitor.sample_due(now) {
            for s in stats {
                if let Some(p) = self.predictors.get_mut(&s.vm) {
                    p.observe_with(s.utilization, &mut self.scratch);
                }
            }

            if let Some(ev) = self.monitor.sample(now, server, stats, cpu_wait, cpu_util) {
                if ev.kind == ContentionKind::Memory {
                    self.reactive_events += 1;
                    self.engine.trigger();
                }
            } else if self.engine.policy().proactive {
                if let Some(ev) =
                    predict_contention(&self.predictors, &mut self.scratch, now, server)
                {
                    self.monitor.record_predicted(ev);
                    self.proactive_events += 1;
                    self.engine.trigger();
                }
            }
        }

        let actions = self.engine.step(server, 1.0);
        for a in &actions {
            // A migration completion must also drop the predictor.
            if let MitigationAction::MigrationCompleted { vm } = a {
                self.remove_vm(*vm);
            }
            self.log.push((now, *a));
        }
        actions
    }

    /// The mitigation action log (time, action).
    pub fn action_log(&self) -> &[(f64, MitigationAction)] {
        &self.log
    }

    /// (reactive, proactive) trigger counts.
    pub fn trigger_counts(&self) -> (u64, u64) {
        (self.reactive_events, self.proactive_events)
    }

    /// The monitor (for inspecting recorded events).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Whether the mitigation engine is currently active.
    pub fn is_mitigating(&self) -> bool {
        self.engine.is_triggered() || self.engine.migration_in_flight().is_some()
    }

    /// Per-VM predictor access (diagnostics).
    pub fn predictor(&self, vm: VmId) -> Option<&LocalPredictor> {
        self.predictors.get(&vm)
    }
}

/// Proactive check: sum the predicted next-horizon VA demand across VMs
/// and compare with the pool backing. Free-standing so the agent can pass
/// its shared LSTM scratch alongside its predictor map.
fn predict_contention(
    predictors: &BTreeMap<VmId, LocalPredictor>,
    scratch: &mut LstmScratch,
    now: f64,
    server: &MemoryServer,
) -> Option<ContentionEvent> {
    let mut predicted_va = 0.0;
    let mut culprit: Option<(VmId, f64)> = None;
    for (&vm, pred) in predictors {
        let Some(state) = server.vm(vm) else { continue };
        let predicted_util = pred.predict_next_5min_with(scratch);
        let predicted_wss = predicted_util * state.config.size_gb;
        let va = (predicted_wss - state.config.pa_gb)
            .max(0.0)
            .min(state.config.va_gb);
        predicted_va += va;
        let growth = va - state.va_demand_gb();
        if growth > 0.0 && culprit.is_none_or(|(_, g)| growth > g) {
            culprit = Some((vm, growth));
        }
    }
    if predicted_va > server.pool_backing_gb() * 0.8 {
        Some(ContentionEvent {
            at_secs: now,
            kind: ContentionKind::Memory,
            culprit: culprit.map(|(vm, _)| vm),
            predicted: true,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{MemoryParams, VmMemoryConfig};

    fn setup() -> (MemoryServer, OversubscriptionAgent) {
        let mut s = MemoryServer::new(32.0, 2.0, MemoryParams::default());
        s.set_pool_backing(6.0).unwrap();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(8.0, 3.0))
            .unwrap();
        s.add_vm(VmId::new(2), VmMemoryConfig::split(8.0, 1.0))
            .unwrap();
        let mut agent = OversubscriptionAgent::new(
            MonitorConfig::default(),
            MitigationPolicy::extend(false),
            0.5,
        );
        agent.add_vm(VmId::new(1));
        agent.add_vm(VmId::new(2));
        (s, agent)
    }

    #[test]
    fn reactive_agent_mitigates_contention() {
        let (mut s, mut agent) = setup();
        s.set_working_set(VmId::new(1), 6.0);
        s.set_working_set(VmId::new(2), 8.0); // 3 + 7 = 10 GB demand > 6 pool
        let mut acted = false;
        for t in 0..120 {
            let stats = s.step(1.0);
            let actions = agent.step(t as f64, &mut s, &stats, 0.0, 0.0);
            if !actions.is_empty() {
                acted = true;
            }
        }
        assert!(acted, "agent never acted");
        let (reactive, proactive) = agent.trigger_counts();
        assert!(reactive > 0);
        assert_eq!(proactive, 0, "reactive policy must not predict");
        // Contention eventually resolved by pool extension.
        assert!(s.vm(VmId::new(2)).unwrap().unbacked_gb() < 0.5);
    }

    #[test]
    fn quiet_server_no_actions() {
        let (mut s, mut agent) = setup();
        s.set_working_set(VmId::new(1), 2.0);
        s.set_working_set(VmId::new(2), 1.0);
        for t in 0..60 {
            let stats = s.step(1.0);
            let actions = agent.step(t as f64, &mut s, &stats, 0.0, 0.0);
            assert!(actions.is_empty(), "unexpected actions {actions:?}");
        }
        assert_eq!(agent.trigger_counts(), (0, 0));
    }

    #[test]
    fn proactive_agent_triggers_from_prediction() {
        let mut s = MemoryServer::new(32.0, 2.0, MemoryParams::default());
        s.set_pool_backing(6.0).unwrap();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(16.0, 2.0))
            .unwrap();
        let mut agent = OversubscriptionAgent::new(
            MonitorConfig::default(),
            MitigationPolicy::extend(true),
            0.5,
        );
        agent.add_vm(VmId::new(1));
        // Drive utilization to a steady level whose *predicted* VA demand
        // (EWMA fallback) exceeds 80% of the pool while staying above the
        // reactive 10% headroom threshold: wss 7.0 → VA 5.0 of 6 (free 17%).
        s.set_working_set(VmId::new(1), 7.0);
        let mut proactive_seen = false;
        for t in 0..600 {
            let stats = s.step(1.0);
            agent.step(t as f64, &mut s, &stats, 0.0, 0.0);
            if agent.trigger_counts().1 > 0 {
                proactive_seen = true;
                break;
            }
        }
        assert!(proactive_seen, "no proactive trigger");
        assert!(
            agent.monitor().events().iter().any(|e| e.predicted),
            "predicted event recorded"
        );
    }

    #[test]
    fn action_log_is_timestamped_monotone() {
        let (mut s, mut agent) = setup();
        s.set_working_set(VmId::new(2), 8.0);
        for t in 0..80 {
            let stats = s.step(1.0);
            agent.step(t as f64, &mut s, &stats, 0.0, 0.0);
        }
        let log = agent.action_log();
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }
}

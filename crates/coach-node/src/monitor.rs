//! The monitoring component of the oversubscription agent (§3.4).
//!
//! Every 20 seconds it samples utilization and contention metrics (page
//! fault fractions, pool headroom, CPU wait time) and compares them against
//! thresholds "computed using historical data at scale and correlated to
//! performance incidents". Crossing a threshold raises a [`ContentionEvent`]
//! that the mitigation component reacts to.

use crate::memory::{MemoryServer, VmMemoryStats};
use coach_types::VmId;
use serde::{Deserialize, Serialize};

/// Monitoring cadence and thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Sampling interval, seconds (paper: 20 s).
    pub interval_secs: f64,
    /// Memory contention: any VM faulting more than this fraction of
    /// accesses.
    pub fault_fraction_threshold: f64,
    /// Memory pressure: pool free below this fraction of backing.
    pub pool_headroom_threshold: f64,
    /// CPU contention: wait fraction above this at utilization above
    /// `cpu_util_floor` (paper: >0.1 % wait at >20 % utilization).
    pub cpu_wait_threshold: f64,
    /// CPU utilization floor for the wait check.
    pub cpu_util_floor: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval_secs: 20.0,
            fault_fraction_threshold: 1e-3,
            pool_headroom_threshold: 0.10,
            cpu_wait_threshold: 1e-3,
            cpu_util_floor: 0.20,
        }
    }
}

/// What kind of contention was detected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ContentionKind {
    /// Memory: page faults or exhausted pool.
    Memory,
    /// CPU: wait time above threshold.
    Cpu,
}

/// A detected (or predicted) contention episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionEvent {
    /// Simulation time, seconds.
    pub at_secs: f64,
    /// Kind of contention.
    pub kind: ContentionKind,
    /// The VM most responsible (highest faulting / most over demand), if
    /// attributable.
    pub culprit: Option<VmId>,
    /// True when raised by the prediction component ahead of time
    /// (proactive) rather than by observation (reactive).
    pub predicted: bool,
}

/// The monitoring component: samples on its interval and raises events.
#[derive(Debug, Clone, PartialEq)]
pub struct Monitor {
    config: MonitorConfig,
    last_sample_at: Option<f64>,
    events: Vec<ContentionEvent>,
}

impl Monitor {
    /// Create a monitor.
    pub fn new(config: MonitorConfig) -> Self {
        Monitor {
            config,
            last_sample_at: None,
            events: Vec::new(),
        }
    }

    /// Whether a sample is due at time `now`.
    pub fn sample_due(&self, now: f64) -> bool {
        match self.last_sample_at {
            None => true,
            Some(t) => now - t >= self.config.interval_secs - 1e-9,
        }
    }

    /// Take a sample: inspect the latest per-VM stats and server state, and
    /// return a contention event if any threshold is crossed. `cpu_wait`
    /// and `cpu_util` come from the CPU scheduler.
    pub fn sample(
        &mut self,
        now: f64,
        server: &MemoryServer,
        stats: &[VmMemoryStats],
        cpu_wait: f64,
        cpu_util: f64,
    ) -> Option<ContentionEvent> {
        self.last_sample_at = Some(now);

        // Memory: faulting VM?
        let worst = stats
            .iter()
            .filter(|s| s.fault_fraction > self.config.fault_fraction_threshold)
            .max_by(|a, b| a.fault_fraction.partial_cmp(&b.fault_fraction).unwrap());
        if let Some(w) = worst {
            let ev = ContentionEvent {
                at_secs: now,
                kind: ContentionKind::Memory,
                culprit: Some(w.vm),
                predicted: false,
            };
            self.events.push(ev);
            return Some(ev);
        }

        // Memory: pool headroom?
        if server.pool_backing_gb() > 0.0 {
            let headroom = server.pool_free_gb() / server.pool_backing_gb();
            if headroom < self.config.pool_headroom_threshold {
                let culprit = stats
                    .iter()
                    .max_by(|a, b| a.utilization.partial_cmp(&b.utilization).unwrap())
                    .map(|s| s.vm);
                let ev = ContentionEvent {
                    at_secs: now,
                    kind: ContentionKind::Memory,
                    culprit,
                    predicted: false,
                };
                self.events.push(ev);
                return Some(ev);
            }
        }

        // CPU: wait at meaningful utilization?
        if cpu_wait > self.config.cpu_wait_threshold && cpu_util > self.config.cpu_util_floor {
            let ev = ContentionEvent {
                at_secs: now,
                kind: ContentionKind::Cpu,
                culprit: None,
                predicted: false,
            };
            self.events.push(ev);
            return Some(ev);
        }

        None
    }

    /// Record an externally-predicted (proactive) event.
    pub fn record_predicted(&mut self, ev: ContentionEvent) {
        self.events.push(ev);
    }

    /// All events so far.
    pub fn events(&self) -> &[ContentionEvent] {
        &self.events
    }

    /// The configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{MemoryParams, VmMemoryConfig};

    fn server_with_pressure(pool: f64, wss: f64) -> (MemoryServer, Vec<VmMemoryStats>) {
        let mut s = MemoryServer::new(32.0, 2.0, MemoryParams::default());
        s.set_pool_backing(pool).unwrap();
        s.add_vm(VmId::new(1), VmMemoryConfig::split(16.0, 2.0))
            .unwrap();
        s.set_working_set(VmId::new(1), wss);
        let mut stats = Vec::new();
        for _ in 0..8 {
            stats = s.step(1.0);
        }
        (s, stats)
    }

    #[test]
    fn cadence_is_20s() {
        let mut m = Monitor::new(MonitorConfig::default());
        assert!(m.sample_due(0.0));
        let (s, stats) = server_with_pressure(8.0, 1.0);
        m.sample(0.0, &s, &stats, 0.0, 0.0);
        assert!(!m.sample_due(19.0));
        assert!(m.sample_due(20.0));
    }

    #[test]
    fn detects_fault_contention_with_culprit() {
        let (s, stats) = server_with_pressure(4.0, 16.0); // 14 GB demand, 4 GB pool
        let mut m = Monitor::new(MonitorConfig::default());
        let ev = m.sample(40.0, &s, &stats, 0.0, 0.0).expect("contention");
        assert_eq!(ev.kind, ContentionKind::Memory);
        assert_eq!(ev.culprit, Some(VmId::new(1)));
        assert!(!ev.predicted);
        assert_eq!(m.events().len(), 1);
    }

    #[test]
    fn detects_pool_pressure_before_faults() {
        // Demand almost fills the pool: no faults (fully resident) but
        // headroom below 10%.
        let (s, stats) = server_with_pressure(8.0, 9.8); // demand 7.8 of 8
        assert!(stats[0].fault_fraction < 1e-3);
        let mut m = Monitor::new(MonitorConfig::default());
        let ev = m.sample(20.0, &s, &stats, 0.0, 0.0).expect("pressure");
        assert_eq!(ev.kind, ContentionKind::Memory);
    }

    #[test]
    fn quiet_server_raises_nothing() {
        let (s, stats) = server_with_pressure(8.0, 1.5);
        let mut m = Monitor::new(MonitorConfig::default());
        assert!(m.sample(20.0, &s, &stats, 0.0, 0.1).is_none());
    }

    #[test]
    fn cpu_wait_needs_utilization_floor() {
        let (s, stats) = server_with_pressure(8.0, 1.0);
        let mut m = Monitor::new(MonitorConfig::default());
        // High wait at low utilization: ignored (paper thresholds pair wait
        // with a utilization floor).
        assert!(m.sample(20.0, &s, &stats, 0.01, 0.05).is_none());
        let ev = m
            .sample(40.0, &s, &stats, 0.01, 0.5)
            .expect("cpu contention");
        assert_eq!(ev.kind, ContentionKind::Cpu);
    }
}

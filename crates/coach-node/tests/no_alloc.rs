//! Steady-state allocation discipline for the per-server agent loop.
//!
//! The EWMA/LSTM agent used to allocate tens of small `Vec`s per tick
//! (LSTM activation caches, gradient accumulators, the memory server's
//! stats vector). With the shared [`coach_predict::LstmScratch`] and
//! [`MemoryServer::step_into`], a quiet server's monitoring loop — stats
//! sampling, EWMA updates, LSTM window closes and online training, and the
//! proactive prediction sweep — performs **zero** heap allocations once
//! buffers have warmed up. This test pins that with a counting global
//! allocator.

use coach_node::{
    MemoryParams, MemoryServer, MitigationPolicy, MonitorConfig, OversubscriptionAgent,
    VmMemoryConfig, VmMemoryStats,
};
use coach_types::VmId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that counts allocations.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn agent_loop_is_allocation_free_in_steady_state() {
    // A quiet, healthy server: plenty of pool, modest working sets — no
    // contention, no mitigation actions. The *proactive* policy is used so
    // the LSTM prediction sweep runs every sample too.
    let mut server = MemoryServer::new(64.0, 2.0, MemoryParams::default());
    server.set_pool_backing(16.0).unwrap();
    let mut agent = OversubscriptionAgent::new(
        MonitorConfig::default(),
        MitigationPolicy::extend(true),
        0.5,
    );
    for i in 0..4u64 {
        server
            .add_vm(VmId::new(i), VmMemoryConfig::split(8.0, 4.0))
            .unwrap();
        server.set_working_set(VmId::new(i), 3.0);
        agent.add_vm(VmId::new(i));
    }

    let mut stats: Vec<VmMemoryStats> = Vec::new();

    // Warm-up: long enough to stabilize every internal buffer capacity
    // (stats vec, per-predictor history rings, the shared LSTM scratch)
    // and to pass the LSTM's 24-hour gate (288 windows × 15 obs of 20 s,
    // driven here at 20 s per step via the monitor cadence).
    for t in 0..(290 * 15) {
        let now = t as f64 * 20.0;
        server.step_into(20.0, &mut stats);
        let actions = agent.step(now, &mut server, &stats, 0.0, 0.1);
        assert!(actions.is_empty(), "unexpected mitigation at t={now}");
    }
    assert!(
        agent.predictor(VmId::new(0)).unwrap().lstm_ready(),
        "warm-up must pass the LSTM gate so the steady-state loop exercises it"
    );

    // Steady state: the monitored loop must not allocate at all.
    let before = alloc_count();
    for t in (290 * 15)..(290 * 15 + 600) {
        let now = t as f64 * 20.0;
        server.step_into(20.0, &mut stats);
        let actions = agent.step(now, &mut server, &stats, 0.0, 0.1);
        assert!(actions.is_empty(), "unexpected mitigation at t={now}");
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "agent steady-state loop performed {delta} heap allocations over 600 ticks"
    );
}

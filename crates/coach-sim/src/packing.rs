//! The Fig 20 cluster-scale experiment: additional sellable capacity and
//! performance violations per oversubscription policy.
//!
//! The paper replays production VM traces through the real allocator code
//! under four policies (§4.3). We replay a generated trace through
//! [`ClusterScheduler`] instances (one per cluster) with the server budget
//! scaled down so that packing quality is the binding constraint, then
//! simulate the actual utilization of the placed VMs to count contention.
//!
//! The replay is built to scale to million-VM traces: cluster occupancy is
//! tracked incrementally (no per-event scans), probe demands are memoized
//! per rotation, and the violation sweep precomputes per-server VM lifetimes
//! and per-window VA sums once, sampling servers in parallel via
//! [`coach_types::par_map`].

use crate::prediction::Predictor;
use crate::probe::{measure_probe_capacity, paper_probe_times, probe_demand};
use coach_sched::{ClusterScheduler, PlacementHeuristic, PlacementOutcome, Policy, VmDemand};
use coach_trace::Trace;
use coach_types::prelude::*;
use coach_types::{available_threads, par_map, par_map_threads};
use std::collections::HashMap;

/// A named policy point of Fig 20: the scheduling policy plus the
/// prediction percentile it runs at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyConfig {
    /// Display label ("None", "Single", "Coach", "Aggr Coach").
    pub label: &'static str,
    /// Scheduling policy.
    pub policy: Policy,
    /// Prediction percentile for the guaranteed portion.
    pub percentile: Percentile,
}

impl PolicyConfig {
    /// The paper's four policies (Fig 20).
    pub fn paper_set() -> Vec<PolicyConfig> {
        vec![
            PolicyConfig {
                label: "None",
                policy: Policy::None,
                percentile: Percentile::P95,
            },
            PolicyConfig {
                label: "Single",
                policy: Policy::Single,
                percentile: Percentile::P95,
            },
            PolicyConfig {
                label: "Coach",
                policy: Policy::Coach,
                percentile: Percentile::P95,
            },
            PolicyConfig {
                label: "Aggr Coach",
                policy: Policy::Coach,
                percentile: Percentile::P50,
            },
        ]
    }
}

/// Result of one policy's packing replay.
#[derive(Debug, Clone, PartialEq)]
pub struct PackingResult {
    /// Policy label.
    pub label: &'static str,
    /// VMs accepted / rejected.
    pub accepted: u64,
    /// VMs rejected because no server could host them.
    pub rejected: u64,
    /// Accepted capacity in core-hours.
    pub accepted_core_hours: f64,
    /// Accepted capacity in GB-hours.
    pub accepted_gb_hours: f64,
    /// Additional typical VMs that fit on top of the resident population,
    /// averaged over probe times — the paper's "additional sellable
    /// capacity (additional VMs that can be hosted)" (Fig 20a).
    pub probe_capacity: f64,
    /// Peak number of servers hosting at least one VM (consolidation).
    pub peak_servers_in_use: usize,
    /// Fraction of (server, sample) points with CPU contention
    /// (used cores > 50 % of capacity, the paper's definition).
    pub cpu_violation_rate: f64,
    /// Fraction with memory contention: the VMs' combined working set
    /// exceeds the *backed* memory — guaranteed (Formula 3) plus the
    /// multiplexed oversubscribed pool (Formula 4) — ⇒ page faults.
    pub mem_violation_rate: f64,
}

impl PackingResult {
    /// Additional capacity versus a baseline result (Fig 20a's y-axis).
    pub fn additional_capacity_vs(&self, baseline: &PackingResult) -> f64 {
        if baseline.probe_capacity <= 0.0 {
            return 0.0;
        }
        self.probe_capacity / baseline.probe_capacity - 1.0
    }
}

/// Violation-sampling cadence shared by the batch sweep and the online
/// `coach-serve` accountant: actual utilization is sampled every two hours
/// of simulated time.
pub const VIOLATION_SAMPLE_EVERY: SimDuration = SimDuration::from_hours(2);

/// Replay `trace` under one policy with `server_fraction` of each cluster's
/// original servers, and simulate utilization to count violations.
///
/// # Panics
///
/// Panics if `server_fraction` is not in `(0, 1]`.
pub fn packing_experiment(
    trace: &Trace,
    predictions: &dyn Predictor,
    config: PolicyConfig,
    server_fraction: f64,
) -> PackingResult {
    packing_experiment_threads(
        trace,
        predictions,
        config,
        server_fraction,
        available_threads(),
    )
}

/// [`packing_experiment`] with an explicit worker-thread budget for the
/// violation pass — [`policy_sweep`] splits the machine across its four
/// concurrent experiments instead of oversubscribing it 4x.
fn packing_experiment_threads(
    trace: &Trace,
    predictions: &dyn Predictor,
    config: PolicyConfig,
    server_fraction: f64,
    violation_threads: usize,
) -> PackingResult {
    assert!(
        server_fraction > 0.0 && server_fraction <= 1.0,
        "server fraction in (0, 1]"
    );
    let tw = predictions.time_windows();

    // Build one scheduler per cluster with a reduced server budget.
    let mut schedulers: HashMap<ClusterId, ClusterScheduler> = HashMap::new();
    for cluster in &trace.clusters {
        let n = ((cluster.servers.len() as f64 * server_fraction).ceil() as usize).max(1);
        let ids: Vec<ServerId> = cluster.servers.iter().copied().take(n).collect();
        schedulers.insert(
            cluster.id,
            ClusterScheduler::new(
                &ids,
                cluster.hardware.capacity,
                tw.count(),
                PlacementHeuristic::BestFit,
            ),
        );
    }

    // Event replay: arrivals and departures in time order.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum EventKind {
        // Departures first at equal timestamps (free before alloc).
        Depart,
        Arrive,
    }
    let mut events: Vec<(Timestamp, EventKind, usize)> = Vec::with_capacity(trace.vms.len() * 2);
    for (i, vm) in trace.vms.iter().enumerate() {
        events.push((vm.arrival, EventKind::Arrive, i));
        events.push((vm.departure, EventKind::Depart, i));
    }
    events.sort();

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut accepted_core_hours = 0.0;
    let mut accepted_gb_hours = 0.0;
    // Cluster-wide occupancy, tracked incrementally: per-scheduler
    // `servers_in_use` is O(1), and the cross-cluster total is updated by
    // the delta each event causes rather than re-summed per event.
    let mut peak_servers = 0usize;
    let mut in_use_total = 0usize;
    // vm index -> (hosting server, guaranteed memory GB, per-window VA GB).
    let mut placement: HashMap<usize, (ServerId, f64, Vec<f64>)> = HashMap::new();

    // Probe demands depend only on (policy, percentile, windows, rotation):
    // memoize one template per rotation and stamp fresh VM ids per probe.
    let probe_templates: Vec<VmDemand> = (0..tw.count())
        .map(|rotation| probe_demand(0, config.policy, config.percentile, tw.count(), rotation))
        .collect();

    // Probe times: three points spread across the horizon.
    let probe_times = paper_probe_times(trace.horizon);
    let mut probe_idx = 0usize;
    let mut probe_counts: Vec<u64> = Vec::new();

    for (time, kind, i) in events {
        // Measure spare capacity whenever we cross a probe time.
        while probe_idx < probe_times.len() && time >= probe_times[probe_idx] {
            probe_counts.push(measure_probe_capacity(
                schedulers.values_mut(),
                &probe_templates,
            ));
            probe_idx += 1;
        }
        let vm = &trace.vms[i];
        let sched = schedulers.get_mut(&vm.cluster).expect("cluster exists");
        let in_use_before = sched.servers_in_use();
        match kind {
            EventKind::Arrive => {
                let prediction = predictions.predict(vm, config.percentile);
                let demand = VmDemand::from_prediction(
                    vm.id,
                    vm.demand(),
                    config.policy,
                    prediction.as_ref(),
                );
                let pa_mem = demand.guaranteed.memory();
                let va_mem: Vec<f64> = (0..demand.window_count())
                    .map(|w| demand.va_demand(w).memory())
                    .collect();
                match sched.place(demand) {
                    PlacementOutcome::Placed(server) => {
                        accepted += 1;
                        let rh = vm.resource_hours();
                        accepted_core_hours += rh.cpu();
                        accepted_gb_hours += rh.memory();
                        placement.insert(i, (server, pa_mem, va_mem));
                    }
                    PlacementOutcome::Rejected => rejected += 1,
                }
            }
            EventKind::Depart => {
                if placement.contains_key(&i) {
                    sched.remove(vm.id);
                }
            }
        }
        in_use_total += sched.servers_in_use();
        in_use_total -= in_use_before;
        peak_servers = peak_servers.max(in_use_total);
    }
    while probe_idx < probe_times.len() {
        probe_counts.push(measure_probe_capacity(
            schedulers.values_mut(),
            &probe_templates,
        ));
        probe_idx += 1;
    }
    let probe_capacity = if probe_counts.is_empty() {
        0.0
    } else {
        probe_counts.iter().sum::<u64>() as f64 / probe_counts.len() as f64
    };

    // Violation pass: sample actual utilization of the placed VMs. Servers
    // are independent, so they are sampled in parallel; within a server the
    // alive set and its Formula 3/4 sums are maintained by an event sweep
    // over precomputed VM lifetimes instead of re-scanning every hosted VM
    // at every sample time.
    let mut by_server_map: HashMap<ServerId, Vec<usize>> = HashMap::new();
    for (&i, (server, _, _)) in &placement {
        by_server_map.entry(*server).or_default().push(i);
    }
    // Deterministic worker inputs regardless of hash order.
    let mut by_server: Vec<(ServerId, Vec<usize>)> = by_server_map.into_iter().collect();
    by_server.sort_by_key(|(s, _)| *s);
    let capacity_of: HashMap<ServerId, ResourceVec> = trace
        .clusters
        .iter()
        .flat_map(|c| c.servers.iter().map(move |&s| (s, c.hardware.capacity)))
        .collect();

    let sample_every = VIOLATION_SAMPLE_EVERY;
    let per_server = par_map_threads(&by_server, violation_threads, |(server, vm_idxs)| {
        server_violation_stats(
            trace,
            &placement,
            capacity_of[server],
            vm_idxs,
            sample_every,
        )
    });
    let (samples, cpu_violations, mem_violations) = per_server
        .into_iter()
        .fold((0u64, 0u64, 0u64), |(s, c, m), (ds, dc, dm)| {
            (s + ds, c + dc, m + dm)
        });

    PackingResult {
        label: config.label,
        accepted,
        rejected,
        accepted_core_hours,
        accepted_gb_hours,
        probe_capacity,
        peak_servers_in_use: peak_servers,
        cpu_violation_rate: if samples > 0 {
            cpu_violations as f64 / samples as f64
        } else {
            0.0
        },
        mem_violation_rate: if samples > 0 {
            mem_violations as f64 / samples as f64
        } else {
            0.0
        },
    }
}

/// One server's violation statistics: `(samples, cpu_violations,
/// mem_violations)` over 2-hour samples of the trace horizon.
///
/// Lifetimes are sorted once; between samples the alive set is advanced
/// incrementally, carrying the running Formula 3 (guaranteed) and Formula 4
/// (per-window VA) memory sums with it.
fn server_violation_stats(
    trace: &Trace,
    placement: &HashMap<usize, (ServerId, f64, Vec<f64>)>,
    capacity: ResourceVec,
    vm_idxs: &[usize],
    sample_every: SimDuration,
) -> (u64, u64, u64) {
    let mut order: Vec<usize> = vm_idxs.to_vec();
    order.sort_by_key(|&i| (trace.vms[i].arrival, i));

    let mut samples = 0u64;
    let mut cpu_violations = 0u64;
    let mut mem_violations = 0u64;
    let mut next_arrival = 0usize;
    let mut active: Vec<usize> = Vec::new();
    let mut pa_sum = 0.0f64;
    let mut va_sums: Vec<f64> = Vec::new();

    let mut t = Timestamp::ZERO;
    while t < trace.horizon {
        // Admit VMs that have arrived by now (skipping any that already
        // departed between samples), then retire the departed.
        while next_arrival < order.len() && trace.vms[order[next_arrival]].arrival <= t {
            let i = order[next_arrival];
            next_arrival += 1;
            if trace.vms[i].departure > t {
                let (_, pa, va) = &placement[&i];
                pa_sum += pa;
                if va_sums.len() < va.len() {
                    va_sums.resize(va.len(), 0.0);
                }
                for (w, v) in va.iter().enumerate() {
                    va_sums[w] += v;
                }
                active.push(i);
            }
        }
        active.retain(|&i| {
            if trace.vms[i].departure <= t {
                let (_, pa, va) = &placement[&i];
                pa_sum -= pa;
                for (w, v) in va.iter().enumerate() {
                    va_sums[w] -= v;
                }
                false
            } else {
                true
            }
        });

        if !active.is_empty() {
            samples += 1;
            let mut used = ResourceVec::ZERO;
            for &i in &active {
                used += trace.vms[i].used_at(t);
            }
            if used.cpu() > 0.5 * capacity.cpu() {
                cpu_violations += 1;
            }
            // Memory contention: the working set exceeds the *backed*
            // memory — guaranteed (Formula 3) plus the multiplexed pool
            // (Formula 4) — capped at physical capacity. max(0) clamps
            // floating-point dust from the incremental sums.
            let pool = va_sums.iter().copied().fold(0.0, f64::max);
            let backed = (pa_sum.max(0.0) + pool).min(capacity.memory());
            if used.memory() > backed + 1e-9 {
                mem_violations += 1;
            }
        }
        t += sample_every;
    }
    (samples, cpu_violations, mem_violations)
}

/// Run the full Fig 20 policy sweep. The four policies are independent
/// replays, so they run in parallel via [`coach_types::par_map`], each
/// granted an equal share of the machine for its inner violation pass.
pub fn policy_sweep(
    trace: &Trace,
    predictions: &dyn Predictor,
    server_fraction: f64,
) -> Vec<PackingResult> {
    let configs = PolicyConfig::paper_set();
    let inner_threads = available_threads().div_ceil(configs.len()).max(1);
    par_map(&configs, |&c| {
        packing_experiment_threads(trace, predictions, c, server_fraction, inner_threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_trace::{generate, TraceConfig};

    use crate::prediction::Oracle;

    fn setup() -> (Trace, Oracle) {
        let trace = generate(&TraceConfig::small(91));
        (trace, Oracle::new(TimeWindows::paper_default()))
    }

    #[test]
    fn none_policy_rejects_under_tight_budget() {
        let (trace, preds) = setup();
        let cfg = PolicyConfig::paper_set()[0];
        let r = packing_experiment(&trace, &preds, cfg, 0.5);
        assert_eq!(r.accepted + r.rejected, trace.vms.len() as u64);
        assert!(r.rejected > 0, "expected rejections at half the servers");
    }

    #[test]
    fn fig20a_capacity_ordering() {
        // Single > None; Coach > Single; AggrCoach >= Coach (Fig 20a).
        let (trace, preds) = setup();
        let results = policy_sweep(&trace, &preds, 1.0);
        let by = |l: &str| {
            results
                .iter()
                .find(|r| r.label == l)
                .expect("policy present")
        };
        let none = by("None");
        let single = by("Single");
        let coach = by("Coach");
        let aggr = by("Aggr Coach");
        assert!(
            single.probe_capacity > none.probe_capacity,
            "single {} <= none {}",
            single.probe_capacity,
            none.probe_capacity
        );
        assert!(
            coach.probe_capacity > single.probe_capacity,
            "coach {} <= single {}",
            coach.probe_capacity,
            single.probe_capacity
        );
        assert!(
            aggr.probe_capacity >= coach.probe_capacity,
            "aggr {} < coach {}",
            aggr.probe_capacity,
            coach.probe_capacity
        );
        // The headline: Coach hosts substantially more VMs than None
        // (paper: up to ~26% more; generous bounds for the small trace).
        let gain = coach.additional_capacity_vs(none);
        assert!(gain > 0.10, "coach gain over none {gain}");
    }

    #[test]
    fn fig20b_violations_grow_with_aggressiveness() {
        let (trace, preds) = setup();
        let results = policy_sweep(&trace, &preds, 0.5);
        let by = |l: &str| results.iter().find(|r| r.label == l).unwrap();
        // None never violates memory (full reservations).
        assert_eq!(by("None").mem_violation_rate, 0.0);
        // Aggressive oversubscription risks more memory violations than
        // conservative Coach.
        assert!(
            by("Aggr Coach").mem_violation_rate >= by("Coach").mem_violation_rate,
            "aggr {} < coach {}",
            by("Aggr Coach").mem_violation_rate,
            by("Coach").mem_violation_rate
        );
        // Coach keeps memory violations small (paper: <1%).
        assert!(
            by("Coach").mem_violation_rate < 0.05,
            "coach mem violations {}",
            by("Coach").mem_violation_rate
        );
    }

    #[test]
    fn consolidation_reduces_servers() {
        // With a generous budget, Coach packs into fewer servers than None
        // (the paper reports 44% fewer).
        let (trace, preds) = setup();
        let results = policy_sweep(&trace, &preds, 1.0);
        let by = |l: &str| results.iter().find(|r| r.label == l).unwrap();
        assert!(
            by("Coach").peak_servers_in_use <= by("None").peak_servers_in_use,
            "coach {} > none {}",
            by("Coach").peak_servers_in_use,
            by("None").peak_servers_in_use
        );
    }

    #[test]
    #[should_panic(expected = "server fraction")]
    fn bad_fraction_rejected() {
        let (trace, preds) = setup();
        let cfg = PolicyConfig::paper_set()[0];
        let _ = packing_experiment(&trace, &preds, cfg, 0.0);
    }
}

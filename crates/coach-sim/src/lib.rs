//! Cluster-scale simulation of Coach: trace replay through the scheduling
//! policies (Fig 20) and long-term prediction accuracy (Fig 19).
//!
//! The paper assesses Coach at scale by "executing the real production VM
//! scheduler code on the production VM traces" (§4.1). This crate replays
//! the synthetic trace (from [`coach_trace`]) through the
//! [`coach_sched::ClusterScheduler`] under the four §4.3 policies, then
//! simulates the placed VMs' actual 5-minute utilization to measure
//! contention.
//!
//! Experiments take any prediction source behind the object-safe
//! [`Predictor`] trait: the lazy [`Oracle`], the trained [`Model`], the
//! eager [`NaiveReference`] (differential testing), or your own.
//!
//! # Example
//!
//! ```
//! use coach_sim::{packing_experiment, Oracle, PolicyConfig};
//! use coach_trace::{generate, TraceConfig};
//! use coach_types::TimeWindows;
//!
//! let trace = generate(&TraceConfig::small(1));
//! let preds = Oracle::new(TimeWindows::paper_default());
//! let cfg = PolicyConfig::paper_set().remove(2); // Coach
//! let result = packing_experiment(&trace, &preds, cfg, 0.6);
//! assert!(result.accepted > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod packing;
pub mod prediction;
pub mod probe;
pub mod wire;

pub use accuracy::{accuracy_sweep, prediction_accuracy, predictor_accuracy, AccuracyResult};
pub use packing::{
    packing_experiment, policy_sweep, PackingResult, PolicyConfig, VIOLATION_SAMPLE_EVERY,
};
pub use prediction::{Model, NaiveReference, Oracle, Predictor};
pub use probe::{
    estimate_probe_capacity, measure_probe_capacity, paper_probe_times, probe_demand, ProbeMode,
};

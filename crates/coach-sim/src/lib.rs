//! Cluster-scale simulation of Coach: trace replay through the scheduling
//! policies (Fig 20) and long-term prediction accuracy (Fig 19).
//!
//! The paper assesses Coach at scale by "executing the real production VM
//! scheduler code on the production VM traces" (§4.1). This crate replays
//! the synthetic trace (from [`coach_trace`]) through the
//! [`coach_sched::ClusterScheduler`] under the four §4.3 policies, then
//! simulates the placed VMs' actual 5-minute utilization to measure
//! contention.
//!
//! Experiments take any prediction source behind the object-safe
//! [`Predictor`] trait: the lazy [`Oracle`], the trained [`Model`], the
//! eager [`NaiveReference`] (differential testing), or your own.
//!
//! # Example
//!
//! ```
//! use coach_sim::{packing_experiment, Oracle, PolicyConfig};
//! use coach_trace::{generate, TraceConfig};
//! use coach_types::TimeWindows;
//!
//! let trace = generate(&TraceConfig::small(1));
//! let preds = Oracle::new(TimeWindows::paper_default());
//! let cfg = PolicyConfig::paper_set().remove(2); // Coach
//! let result = packing_experiment(&trace, &preds, cfg, 0.6);
//! assert!(result.accepted > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod packing;
pub mod prediction;

pub use accuracy::{accuracy_sweep, prediction_accuracy, predictor_accuracy, AccuracyResult};
pub use packing::{
    measure_probe_capacity, packing_experiment, paper_probe_times, policy_sweep, probe_demand,
    PackingResult, PolicyConfig, VIOLATION_SAMPLE_EVERY,
};
pub use prediction::{Model, NaiveReference, Oracle, Predictor};

//! Fig 19: long-term prediction accuracy — over-allocation error and
//! under-allocation rate per prediction percentile.
//!
//! Train the model on the first week's VMs, predict the second week's, and
//! compare against each VM's *ideal allocation* (the oracle percentiles of
//! its own observed series). Over-allocation = resources that could have
//! been saved; under-allocation = predicted guaranteed portion below the
//! ideal (the dangerous direction, which Coach's design minimizes).

use crate::prediction::{Model, Predictor};
use coach_predict::{ForestParams, ModelConfig, UtilizationModel};
use coach_trace::Trace;
use coach_types::prelude::*;

/// Fig 19 result for one percentile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyResult {
    /// Percentile evaluated.
    pub percentile: Percentile,
    /// Mean over-allocation error (fraction of the VM's allocation), CPU.
    pub cpu_over_allocation: f64,
    /// Mean over-allocation error, memory.
    pub mem_over_allocation: f64,
    /// Fraction of VMs under-allocated on CPU.
    pub cpu_under_allocations: f64,
    /// Fraction of VMs under-allocated on memory.
    pub mem_under_allocations: f64,
    /// Number of VMs evaluated.
    pub vms_evaluated: usize,
}

/// Run the Fig 19 accuracy experiment for one percentile: train the forest
/// on VMs arriving before `split` and evaluate it via
/// [`predictor_accuracy`].
///
/// # Panics
///
/// Panics if the trace has no usable training VMs before `split`.
pub fn prediction_accuracy(
    trace: &Trace,
    percentile: Percentile,
    split: Timestamp,
    forest: ForestParams,
) -> AccuracyResult {
    let (train, _) = trace.split_by_arrival(split);
    let model = UtilizationModel::train(
        &train,
        ModelConfig {
            tw: TimeWindows::paper_default(),
            percentile,
            forest,
        },
    );
    predictor_accuracy(trace, &Model::new(&model), percentile, split)
}

/// Evaluate **any** prediction source against the ideal allocation: compare
/// its guaranteed (PA) fractions with the lazy oracle's for every
/// long-running VM arriving at or after `split`.
pub fn predictor_accuracy(
    trace: &Trace,
    predictor: &dyn Predictor,
    percentile: Percentile,
    split: Timestamp,
) -> AccuracyResult {
    let tw = predictor.time_windows();
    let mut over = [0.0f64; 2];
    let mut under = [0usize; 2];
    let mut n = 0usize;
    // Under-allocation tolerance: one 5% bucket (the platform's own
    // granularity; sub-bucket differences cannot change an allocation).
    const TOL: f64 = 0.05;

    for vm in trace.vms.iter().filter(|vm| vm.arrival >= split) {
        if vm.lifetime() < SimDuration::from_days(1) {
            continue;
        }
        let Some(pred) = predictor.predict(vm, percentile) else {
            continue;
        };
        let ideal = UtilizationModel::oracle(vm, tw, percentile);
        let pred_pa = pred.pa_fraction();
        let ideal_pa = ideal.pa_fraction();
        for (slot, kind) in [(0, ResourceKind::Cpu), (1, ResourceKind::Memory)] {
            let diff = pred_pa[kind] - ideal_pa[kind];
            if diff > 0.0 {
                over[slot] += diff;
            }
            if diff < -TOL {
                under[slot] += 1;
            }
        }
        n += 1;
    }

    let n_f = n.max(1) as f64;
    AccuracyResult {
        percentile,
        cpu_over_allocation: over[0] / n_f,
        mem_over_allocation: over[1] / n_f,
        cpu_under_allocations: under[0] as f64 / n_f,
        mem_under_allocations: under[1] as f64 / n_f,
        vms_evaluated: n,
    }
}

/// The paper's three percentile points (Fig 19).
pub fn accuracy_sweep(
    trace: &Trace,
    split: Timestamp,
    forest: ForestParams,
) -> Vec<AccuracyResult> {
    [
        Percentile::P95,
        Percentile::new(90.0),
        Percentile::new(85.0),
    ]
    .into_iter()
    .map(|p| prediction_accuracy(trace, p, split, forest))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_trace::{generate, TraceConfig};

    fn small_forest() -> ForestParams {
        ForestParams {
            n_trees: 12,
            ..ForestParams::default()
        }
    }

    #[test]
    fn accuracy_in_plausible_ranges() {
        let trace = generate(&TraceConfig::paper_scale(97));
        let r = prediction_accuracy(
            &trace,
            Percentile::P95,
            Timestamp::from_days(7),
            small_forest(),
        );
        assert!(
            r.vms_evaluated > 50,
            "only {} VMs evaluated",
            r.vms_evaluated
        );
        // Over-allocation is bounded (paper: 19-30%); allow a wide band but
        // require it to be non-trivial and far from catastrophic.
        assert!(
            (0.0..0.6).contains(&r.cpu_over_allocation),
            "cpu over {}",
            r.cpu_over_allocation
        );
        assert!(
            (0.0..0.6).contains(&r.mem_over_allocation),
            "mem over {}",
            r.mem_over_allocation
        );
        // Under-allocations are rare (paper: CPU 3-8%, memory 1-2%).
        assert!(
            r.cpu_under_allocations < 0.25,
            "cpu under {}",
            r.cpu_under_allocations
        );
        assert!(
            r.mem_under_allocations < 0.15,
            "mem under {}",
            r.mem_under_allocations
        );
        // Memory is more predictable than CPU (narrow ranges).
        assert!(r.mem_under_allocations <= r.cpu_under_allocations + 0.02);
    }

    #[test]
    fn lower_percentile_reduces_over_allocation() {
        let trace = generate(&TraceConfig::paper_scale(98));
        let sweep = accuracy_sweep(&trace, Timestamp::from_days(7), small_forest());
        assert_eq!(sweep.len(), 3);
        // Paper Fig 19a: "As we decrease the prediction percentile, the
        // [over-allocation] error decreases."
        assert!(
            sweep[2].mem_over_allocation <= sweep[0].mem_over_allocation + 0.02,
            "P85 {} vs P95 {}",
            sweep[2].mem_over_allocation,
            sweep[0].mem_over_allocation
        );
    }
}

//! Spare-capacity probing: the Fig 20a "additional sellable capacity"
//! measurement, shared by the batch replay and the online `coach-serve`
//! controller.
//!
//! Two implementations produce the measurement:
//!
//! * [`measure_probe_capacity`] — the exhaustive reference: greedily
//!   **place** probe VMs into the real schedulers until nothing fits, count
//!   them, then remove them all. Exact by definition, but every probe pays
//!   full scheduler machinery (candidate index updates, VM bookkeeping,
//!   demand clones) twice — once in, once out. At million-VM scale this is
//!   the dominant per-measurement cost (~0.35 s on the reference trace).
//! * [`estimate_probe_capacity`] — the incremental estimator: copy each
//!   server's [`ProbeSummary`](coach_sched::ProbeSummary) (the commitment sums the scheduler already
//!   maintains on every place/remove) into a scratch arena and replay the
//!   *same* greedy fill arithmetically. Because the scratch holds the
//!   scheduler's exact floats and applies the exact `can_fit` predicate and
//!   BestFit ordering, the count is **bit-identical** to the exhaustive
//!   fill — without mutating the scheduler at all (note the `&` vs `&mut`
//!   iterator). Monotonicity of the fill (slack only shrinks) lets it cache
//!   per-(server, rotation) infeasibility, so each server is fully checked
//!   against each rotation at most once after its last successful probe.
//!
//! The equivalence is enforced three ways: unit tests on the edge cases
//! (empty cluster, over-committed server, exact occupancy crossings), a
//! proptest replaying random churn, and `ProbeMode::Differential` in
//! `coach-serve`, which runs both on every measurement of the differential
//! suite and asserts equality.

use coach_sched::{ClusterScheduler, PlacementHeuristic, PlacementOutcome, Policy, VmDemand};
use coach_types::prelude::*;

/// How a serving-path probe measurement is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeMode {
    /// The exhaustive pack/unpack fill ([`measure_probe_capacity`]).
    /// Mutates and restores the schedulers — matching the batch replay's
    /// float trajectory exactly, which the bit-identity differential tests
    /// rely on — and pays full scheduler cost per probe.
    #[default]
    Exhaustive,
    /// The incremental estimator ([`estimate_probe_capacity`]): read-only,
    /// scans the incrementally maintained per-server summaries. Produces
    /// the same count; the schedulers are untouched (so the post-probe
    /// floating-point state can differ from the exhaustive path's
    /// add-then-remove dust by design).
    Estimated,
    /// Run both, assert the counts agree, and keep the exhaustive result
    /// (including its state trajectory). The mode the differential suite
    /// runs under.
    Differential,
}

/// The paper's probe schedule: three spare-capacity measurements spread
/// across the horizon (at 30 %, 55 %, and 80 % of it).
pub fn paper_probe_times(horizon: Timestamp) -> Vec<Timestamp> {
    [0.3, 0.55, 0.8]
        .iter()
        .map(|f| Timestamp::from_ticks((horizon.ticks() as f64 * f) as u64))
        .collect()
}

/// A typical general-purpose probe VM (4 cores / 16 GB), with a diurnal
/// prediction whose peak window rotates with `rotation` so that probes have
/// complementary patterns (as real tenants do, §2.3). The PX (guaranteed)
/// level follows the policy's percentile: P50 guarantees much less than
/// P95, which is where AggrCoach's extra capacity comes from.
///
/// Shared by the batch replay and the online `coach-serve` controller so
/// both measure spare capacity with byte-identical probe streams.
pub fn probe_demand(
    id: u64,
    policy: Policy,
    percentile: Percentile,
    windows: usize,
    rotation: usize,
) -> VmDemand {
    let requested = VmConfig::general_purpose(4).demand();
    if policy == Policy::None {
        return VmDemand::unpredicted(VmId::new(id), requested);
    }
    // Map the percentile to the PX/Pmax ratio of a typical diurnal VM:
    // P95 ≈ 0.85 of the window max, P50 ≈ 0.6.
    let px_ratio = 0.6 + 0.25 * ((percentile.value() - 50.0) / 45.0).clamp(0.0, 1.0);
    let mut pmax = WindowVec::new();
    let mut px = WindowVec::new();
    for w in 0..windows {
        // A raised bump centred on the rotated peak window.
        let d = (w + windows - rotation) % windows;
        let dist = d.min(windows - d) as f64 / (windows as f64 / 2.0);
        let peak = bucket_up(0.35 + 0.45 * (1.0 - dist));
        pmax.push(ResourceVec::splat(peak).clamp(0.0, 1.0));
        px.push(ResourceVec::splat(bucket_up(peak * px_ratio)).clamp(0.0, 1.0));
    }
    let prediction = coach_predict::DemandPrediction {
        tw: TimeWindows::paper_default(),
        pmax,
        px,
    };
    VmDemand::from_prediction(VmId::new(id), requested, policy, Some(&prediction))
}

/// Fill every cluster's spare room with probe VMs (rotating peak windows,
/// cloned from the memoized per-rotation templates), count them, and remove
/// them again — the exhaustive reference measurement.
///
/// The per-cluster probe sequence is deterministic and clusters are
/// independent, so the total is the same whatever order the schedulers are
/// visited in — batch replay passes a `HashMap` iterator, the online
/// controller its sorted shard-local list.
pub fn measure_probe_capacity<'a>(
    schedulers: impl Iterator<Item = &'a mut ClusterScheduler>,
    templates: &[VmDemand],
) -> u64 {
    let windows = templates.len();
    let mut placed_ids: Vec<u64> = Vec::new();
    let mut count = 0u64;
    let mut next_id = 1u64 << 40;
    for sched in schedulers {
        let mut consecutive_rejections = 0usize;
        let mut rotation = 0usize;
        while consecutive_rejections < windows {
            let mut demand = templates[rotation].clone();
            demand.vm = VmId::new(next_id);
            match sched.place(demand) {
                PlacementOutcome::Placed(_) => {
                    placed_ids.push(next_id);
                    count += 1;
                    consecutive_rejections = 0;
                }
                PlacementOutcome::Rejected => consecutive_rejections += 1,
            }
            next_id += 1;
            rotation = (rotation + 1) % windows;
        }
        // Remove this cluster's probes before moving on.
        for &id in placed_ids.iter() {
            sched.remove(VmId::new(id));
        }
        placed_ids.clear();
    }
    count
}

/// One server's scratch commitment state inside the estimator: a copy of
/// its [`ProbeSummary`](coach_sched::ProbeSummary) floats that probe placements are applied to.
struct Scratch {
    capacity: ResourceVec,
    guaranteed_sum: ResourceVec,
    /// Flat per-window sums (stride = the server's window count).
    window_sums: Vec<ResourceVec>,
}

impl Scratch {
    /// `ServerState::can_fit`, verbatim over the scratch floats: the same
    /// additions against the same capacity with the same epsilon, including
    /// the 1-window broadcast rule.
    fn can_fit(&self, d: &VmDemand) -> bool {
        if !(self.guaranteed_sum + d.guaranteed).fits_within(&self.capacity) {
            return false;
        }
        if d.window_count() == self.window_sums.len() {
            d.window_max
                .iter()
                .zip(&self.window_sums)
                .all(|(w, sum)| (*sum + *w).fits_within(&self.capacity))
        } else {
            let w = d.window_max[0];
            self.window_sums
                .iter()
                .all(|sum| (*sum + w).fits_within(&self.capacity))
        }
    }

    /// `ServerState::place`'s commitment updates, verbatim.
    fn place(&mut self, d: &VmDemand) {
        self.guaranteed_sum += d.guaranteed;
        let broadcast = d.window_count() != self.window_sums.len();
        for (w, sum) in self.window_sums.iter_mut().enumerate() {
            *sum += if broadcast {
                d.window_max[0]
            } else {
                d.window_max[w]
            };
        }
    }

    /// `ServerState::free_guaranteed().memory()` — the BestFit/WorstFit
    /// ordering key.
    fn headroom_memory(&self) -> f64 {
        self.capacity.saturating_sub(&self.guaranteed_sum).memory()
    }
}

/// Estimate spare probe capacity without touching the schedulers: scan the
/// per-server [`ProbeSummary`](coach_sched::ProbeSummary)s into scratch state and replay the greedy
/// fill arithmetically.
///
/// Bit-identical to [`measure_probe_capacity`] on the same scheduler state
/// (same floats, same `can_fit` epsilon, same heuristic ordering and
/// tie-breaks, same rotation/termination schedule), at a fraction of the
/// cost: no candidate-index updates, no VM bookkeeping, no demand clones,
/// no removal pass — and `&ClusterScheduler`, so concurrent readers could
/// measure while the scheduler keeps serving.
pub fn estimate_probe_capacity<'a>(
    schedulers: impl Iterator<Item = &'a ClusterScheduler>,
    templates: &[VmDemand],
) -> u64 {
    schedulers
        .map(|sched| estimate_cluster(sched, templates))
        .sum()
}

/// Comparator defining the heuristic's candidate priority: the *first*
/// feasible server in this order is exactly the server the scheduler's
/// exhaustive scan elects — min (BestFit) / max (WorstFit) headroom with
/// the strict-comparison first-by-index tie-break, or plain id order
/// (FirstFit). Headrooms are finite and non-negative, so `total_cmp`
/// agrees with the scan's `<`/`>`.
fn candidate_order(
    heuristic: PlacementHeuristic,
    headroom: &[f64],
    a: usize,
    b: usize,
) -> std::cmp::Ordering {
    match heuristic {
        PlacementHeuristic::FirstFit => a.cmp(&b),
        PlacementHeuristic::BestFit => headroom[a].total_cmp(&headroom[b]).then(a.cmp(&b)),
        PlacementHeuristic::WorstFit => headroom[b].total_cmp(&headroom[a]).then(a.cmp(&b)),
    }
}

fn estimate_cluster(sched: &ClusterScheduler, templates: &[VmDemand]) -> u64 {
    let windows = templates.len();
    if windows == 0 {
        return 0;
    }
    let heuristic = sched.heuristic();
    let mut servers: Vec<Scratch> = sched
        .servers()
        .iter()
        .map(|s| {
            let summary = s.probe_summary();
            Scratch {
                capacity: summary.capacity,
                guaranteed_sum: summary.guaranteed_sum,
                window_sums: summary.window_sums.to_vec(),
            }
        })
        .collect();
    let mut headroom: Vec<f64> = servers.iter().map(Scratch::headroom_memory).collect();
    // Server indices in candidate-priority order; kept sorted as
    // placements move servers toward the front (BestFit) / back (WorstFit).
    let mut order: Vec<usize> = (0..servers.len()).collect();
    order.sort_unstable_by(|&a, &b| candidate_order(heuristic, &headroom, a, b));
    // The fill only commits capacity, so once (server, rotation) rejects it
    // rejects forever within this measurement: cache and skip re-checks.
    let mut infeasible = vec![false; servers.len() * windows];
    // Likewise, once a rotation finds no feasible server at all, it never
    // will again — later attempts are rejections without a walk.
    let mut dead_rotation = vec![false; windows];

    let mut count = 0u64;
    let mut consecutive_rejections = 0usize;
    let mut rotation = 0usize;
    while consecutive_rejections < windows {
        // First feasible in priority order is the scheduler's choice; every
        // failed check is cached, so the walk amortizes to O(1) per
        // position plus one `can_fit` per (server, rotation) infeasibility
        // transition.
        let template = &templates[rotation];
        let winner = if dead_rotation[rotation] {
            None
        } else {
            order.iter().position(|&i| {
                let cache = &mut infeasible[i * windows + rotation];
                if *cache {
                    return false;
                }
                if servers[i].can_fit(template) {
                    true
                } else {
                    *cache = true;
                    false
                }
            })
        };
        match winner {
            Some(pos) => {
                let idx = order.remove(pos);
                servers[idx].place(template);
                headroom[idx] = servers[idx].headroom_memory();
                let dest = order
                    .binary_search_by(|&j| candidate_order(heuristic, &headroom, j, idx))
                    .expect_err("unique (headroom, index) key");
                order.insert(dest, idx);
                // The placement shrank this server's slack: its cached
                // rejections stay valid (monotone), no invalidation needed.
                count += 1;
                consecutive_rejections = 0;
            }
            None => {
                dead_rotation[rotation] = true;
                consecutive_rejections += 1;
            }
        }
        rotation = (rotation + 1) % windows;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_sched::ScanStrategy;

    fn templates_for(policy: Policy, percentile: Percentile, windows: usize) -> Vec<VmDemand> {
        (0..windows)
            .map(|rotation| probe_demand(0, policy, percentile, windows, rotation))
            .collect()
    }

    fn coach_templates() -> Vec<VmDemand> {
        templates_for(
            Policy::Coach,
            Percentile::P95,
            TimeWindows::paper_default().count(),
        )
    }

    fn cluster(servers: u64, capacity: ResourceVec, windows: usize) -> ClusterScheduler {
        let ids: Vec<ServerId> = (0..servers).map(ServerId::new).collect();
        ClusterScheduler::new(&ids, capacity, windows, PlacementHeuristic::BestFit)
    }

    fn assert_modes_agree(sched: &mut ClusterScheduler, templates: &[VmDemand], label: &str) {
        let estimated = estimate_probe_capacity(std::iter::once(&*sched), templates);
        let exhaustive = measure_probe_capacity(std::iter::once(sched), templates);
        assert_eq!(estimated, exhaustive, "{label}");
    }

    #[test]
    fn empty_cluster_agrees() {
        let windows = TimeWindows::paper_default().count();
        let mut sched = cluster(4, ResourceVec::new(96.0, 384.0, 40.0, 4096.0), windows);
        let templates = coach_templates();
        let estimated = estimate_probe_capacity(std::iter::once(&sched), &templates);
        assert!(estimated > 0, "empty servers host probes");
        assert_modes_agree(&mut sched, &templates, "empty cluster");
    }

    #[test]
    fn overcommitted_single_server_agrees_at_zero() {
        let windows = TimeWindows::paper_default().count();
        let mut sched = cluster(1, ResourceVec::new(16.0, 64.0, 10.0, 1024.0), windows);
        // Saturate the server's guaranteed memory completely.
        let full = VmDemand::unpredicted(VmId::new(1), ResourceVec::new(16.0, 64.0, 10.0, 1024.0));
        assert!(matches!(sched.place(full), PlacementOutcome::Placed(_)));
        let templates = coach_templates();
        assert_eq!(
            estimate_probe_capacity(std::iter::once(&sched), &templates),
            0,
            "no slack, no probes"
        );
        assert_modes_agree(&mut sched, &templates, "over-committed server");
    }

    #[test]
    fn exact_occupancy_crossing_agrees() {
        // Leave exactly one probe's guaranteed memory free: feasibility sits
        // on the fits_within epsilon boundary, where any divergence between
        // the estimator's floats and the scheduler's would show.
        let windows = TimeWindows::paper_default().count();
        let templates = coach_templates();
        let probe_guar = templates[0].guaranteed;
        let capacity = ResourceVec::new(16.0, 64.0, 10.0, 1024.0);
        let mut sched = cluster(1, capacity, windows);
        let filler = capacity.saturating_sub(&probe_guar);
        assert!(matches!(
            sched.place(VmDemand::unpredicted(VmId::new(1), filler)),
            PlacementOutcome::Placed(_)
        ));
        assert_modes_agree(&mut sched, &templates, "exact crossing");

        // Just past the boundary on the other side.
        let mut sched = cluster(1, capacity, windows);
        let over = (filler + ResourceVec::splat(1e-7)).min(&capacity);
        assert!(matches!(
            sched.place(VmDemand::unpredicted(VmId::new(1), over)),
            PlacementOutcome::Placed(_)
        ));
        assert_modes_agree(&mut sched, &templates, "just past the crossing");
    }

    #[test]
    fn unpredicted_probes_broadcast_and_agree() {
        // Policy::None probes are 1-window demands against 6-window
        // servers: the broadcast rule must match too.
        let windows = TimeWindows::paper_default().count();
        let mut sched = cluster(3, ResourceVec::new(16.0, 64.0, 10.0, 1024.0), windows);
        let templates = templates_for(Policy::None, Percentile::P95, windows);
        assert_modes_agree(&mut sched, &templates, "unpredicted probes");
    }

    #[test]
    fn all_heuristics_and_scans_agree() {
        let windows = TimeWindows::paper_default().count();
        let templates = coach_templates();
        for heuristic in [
            PlacementHeuristic::BestFit,
            PlacementHeuristic::FirstFit,
            PlacementHeuristic::WorstFit,
        ] {
            for scan in [ScanStrategy::Indexed, ScanStrategy::NaiveReference] {
                let ids: Vec<ServerId> = (0..5).map(ServerId::new).collect();
                let mut sched = ClusterScheduler::with_strategy(
                    &ids,
                    ResourceVec::new(16.0, 64.0, 10.0, 1024.0),
                    windows,
                    heuristic,
                    scan,
                );
                // Uneven pre-load so headroom ordering matters.
                for (i, frac) in [0.7, 0.2, 0.5, 0.0, 0.35].iter().enumerate() {
                    if *frac > 0.0 {
                        let req = ResourceVec::new(16.0, 64.0, 10.0, 1024.0) * *frac;
                        let _ = sched.place(VmDemand::unpredicted(VmId::new(100 + i as u64), req));
                    }
                }
                assert_modes_agree(&mut sched, &templates, &format!("{heuristic:?}/{scan:?}"));
            }
        }
    }

    #[test]
    fn multi_cluster_totals_agree() {
        let windows = TimeWindows::paper_default().count();
        let templates = coach_templates();
        let mut clusters: Vec<ClusterScheduler> = (0..3)
            .map(|c| cluster(2 + c, ResourceVec::new(16.0, 64.0, 10.0, 1024.0), windows))
            .collect();
        let estimated = estimate_probe_capacity(clusters.iter(), &templates);
        let exhaustive = measure_probe_capacity(clusters.iter_mut(), &templates);
        assert_eq!(estimated, exhaustive);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Random churn (places and removes of random multi-window demands)
        /// followed by a probe measurement: the estimator must equal the
        /// exhaustive fill exactly, for every policy's template set.
        #[test]
        fn prop_estimator_matches_exhaustive(
            ops in prop::collection::vec(
                (0u64..60, prop::collection::vec(0.05f64..1.0, 6), 0.05f64..0.9),
                1..60,
            ),
            policy_sel in 0usize..3,
            percentile_sel in 0usize..2,
        ) {
            let windows = TimeWindows::paper_default().count();
            let capacity = ResourceVec::new(16.0, 64.0, 10.0, 1024.0);
            let ids: Vec<ServerId> = (0..4).map(ServerId::new).collect();
            let mut sched = ClusterScheduler::new(
                &ids, capacity, windows, PlacementHeuristic::BestFit,
            );
            for (i, (vm_raw, fracs, guar_frac)) in ops.iter().enumerate() {
                if i % 4 == 3 {
                    sched.remove(VmId::new(1000 + *vm_raw));
                    continue;
                }
                let request = ResourceVec::new(8.0, 32.0, 4.0, 256.0);
                let guaranteed = request * *guar_frac;
                let window_max: Vec<ResourceVec> = fracs
                    .iter()
                    .map(|f| (request * *f).max(&guaranteed))
                    .collect();
                let _ = sched.place(VmDemand {
                    vm: VmId::new(1000 + (i as u64 % 60)),
                    requested: request,
                    guaranteed,
                    window_max: window_max.into(),
                });
            }
            let policy = [Policy::None, Policy::Single, Policy::Coach][policy_sel];
            let percentile = [Percentile::P95, Percentile::P50][percentile_sel];
            let templates: Vec<VmDemand> = (0..windows)
                .map(|r| probe_demand(0, policy, percentile, windows, r))
                .collect();
            let estimated = estimate_probe_capacity(std::iter::once(&sched), &templates);
            let exhaustive = measure_probe_capacity(std::iter::once(&mut sched), &templates);
            prop_assert_eq!(estimated, exhaustive);
        }
    }
}

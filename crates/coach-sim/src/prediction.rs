//! Prediction sources for the cluster simulations: the trained
//! random-forest model or the oracle (the VM's own observed series).

use coach_predict::{DemandPrediction, UtilizationModel};
use coach_trace::VmRecord;
use coach_types::prelude::*;

/// Where per-VM demand predictions come from.
#[derive(Debug)]
pub enum PredictionSource<'a> {
    /// The trained long-term model (§3.3); VMs without group history get
    /// `None` (conservatively not oversubscribed).
    Model(&'a UtilizationModel),
    /// Oracle percentiles computed from each VM's own future series — the
    /// "ideal allocation" reference of Fig 19 and an upper bound for the
    /// packing experiments.
    Oracle(TimeWindows),
}

impl PredictionSource<'_> {
    /// The window partition predictions are expressed over.
    pub fn time_windows(&self) -> TimeWindows {
        match self {
            PredictionSource::Model(m) => m.config().tw,
            PredictionSource::Oracle(tw) => *tw,
        }
    }

    /// Predict per-window demand fractions for a VM.
    ///
    /// For the oracle source, `percentile` selects the PX used for the
    /// guaranteed portion; the model source uses the percentile it was
    /// trained with (its own `ModelConfig`), scaling to `percentile` by
    /// re-deriving from the oracle is intentionally *not* done — the model
    /// *is* the artifact under test.
    pub fn predict(&self, vm: &VmRecord, percentile: Percentile) -> Option<DemandPrediction> {
        match self {
            PredictionSource::Model(m) => m.predict(vm),
            PredictionSource::Oracle(tw) => {
                if vm.lifetime() < SimDuration::from_days(1) {
                    // Short VMs are not oversubscribed (no usable history).
                    return None;
                }
                let mut p = UtilizationModel::oracle(vm, *tw, percentile);
                // Conservative 5% bucket rounding, as the platform does.
                for v in p.pmax.iter_mut().chain(p.px.iter_mut()) {
                    for kind in ResourceKind::ALL {
                        v[kind] = bucket_up(v[kind]);
                    }
                }
                Some(p)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_trace::{generate, TraceConfig};

    #[test]
    fn oracle_skips_short_vms_and_buckets_long_ones() {
        let trace = generate(&TraceConfig::small(95));
        let src = PredictionSource::Oracle(TimeWindows::paper_default());
        let short = trace
            .vms
            .iter()
            .find(|v| v.lifetime() < SimDuration::from_days(1))
            .expect("a short vm");
        assert!(src.predict(short, Percentile::P95).is_none());

        let long = trace.long_running().next().expect("a long vm");
        let p = src.predict(long, Percentile::P95).expect("prediction");
        for v in p.pmax.iter().chain(p.px.iter()) {
            for kind in ResourceKind::ALL {
                let x = v[kind];
                assert!(
                    (x * 20.0 - (x * 20.0).round()).abs() < 1e-6,
                    "{x} not bucketed"
                );
            }
        }
    }

    #[test]
    fn lower_percentile_means_lower_pa() {
        let trace = generate(&TraceConfig::small(96));
        let src = PredictionSource::Oracle(TimeWindows::paper_default());
        let vm = trace.long_running().next().unwrap();
        let p95 = src.predict(vm, Percentile::P95).unwrap();
        let p50 = src.predict(vm, Percentile::P50).unwrap();
        for kind in ResourceKind::ALL {
            assert!(
                p50.pa_fraction()[kind] <= p95.pa_fraction()[kind] + 1e-9,
                "{kind}: p50 pa > p95 pa"
            );
        }
    }
}

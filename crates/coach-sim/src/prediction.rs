//! Prediction sources for the cluster simulations, behind the object-safe
//! [`Predictor`] trait.
//!
//! The experiments (`packing_experiment`, `policy_sweep`,
//! `predictor_accuracy`) take `&dyn Predictor`, so adding a new prediction
//! source is implementing one trait — no enum to extend, no experiment code
//! to touch. Three sources ship:
//!
//! * [`Oracle`] — percentiles of each VM's own utilization, derived
//!   *lazily* from the behavior profile's closed form
//!   ([`VmRecord::window_stats`]) and cached per `(VM, percentile)` so the
//!   parallel four-policy sweep derives each VM once;
//! * [`Model`] — the trained long-term random forest (§3.3);
//! * [`NaiveReference`] — the old eager path (materialize the 5-minute
//!   series, walk its samples), retained purely for differential testing
//!   against [`Oracle`].

use coach_predict::{DemandPrediction, UtilizationModel};
use coach_trace::{EnvelopeCache, EnvelopeKey, VmRecord};
use coach_types::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Where per-VM demand predictions come from.
///
/// Object-safe and `Sync` (experiments fan policies out across threads and
/// share one predictor). Implementations must be deterministic in
/// `(vm, percentile)` — replays assert decision identity across runs.
pub trait Predictor: Sync {
    /// The window partition predictions are expressed over.
    fn time_windows(&self) -> TimeWindows;

    /// Predict per-window demand fractions for a VM, or `None` for the
    /// conservative no-oversubscription fallback.
    ///
    /// `percentile` selects the PX of the guaranteed portion where the
    /// source supports it; model-backed sources use the percentile they
    /// were trained with (the model *is* the artifact under test).
    fn predict(&self, vm: &VmRecord, percentile: Percentile) -> Option<DemandPrediction>;

    /// Predict a whole batch of VMs at once, returning one slot per input
    /// VM **in input order**.
    ///
    /// The default forwards each VM to [`Predictor::predict`]. Sources with
    /// shareable derivation state override it — [`Oracle`] groups the batch
    /// by envelope template so consecutive VMs reuse one envelope table —
    /// but every override must return exactly what the per-item loop would:
    /// `predict_batch` is a throughput entry point, never a semantic one
    /// (the `predict_batch_matches_per_item_loop` differential test holds
    /// all shipped sources to this).
    fn predict_batch(
        &self,
        vms: &[&VmRecord],
        percentile: Percentile,
    ) -> Vec<Option<DemandPrediction>> {
        vms.iter().map(|vm| self.predict(vm, percentile)).collect()
    }
}

/// Conservative 5 % bucket rounding, as the platform applies to every
/// oracle-derived fraction.
fn bucket_prediction(p: &mut DemandPrediction) {
    for v in p.pmax.iter_mut().chain(p.px.iter_mut()) {
        for kind in ResourceKind::ALL {
            v[kind] = bucket_up(v[kind]);
        }
    }
}

/// Short VMs (< 1 day) have no usable history and are never oversubscribed.
fn too_short(vm: &VmRecord) -> bool {
    vm.lifetime() < SimDuration::from_days(1)
}

/// Oracle percentiles computed from each VM's own future utilization — the
/// "ideal allocation" reference of Fig 19 and an upper bound for the
/// packing experiments.
///
/// Derivations go through the lazy analytic [`VmRecord::window_stats`] path
/// and are memoized: `policy_sweep` replays the same trace under four
/// policies concurrently, and the cache collapses those four derivations
/// into one. Single-pass consumers (one prediction per VM, e.g. a batch
/// derive) gain nothing from the memo — it is bounded and correct either
/// way, but a fresh `Oracle` per pass keeps its footprint transient.
#[derive(Debug)]
pub struct Oracle {
    tw: TimeWindows,
    cache: Mutex<HashMap<(VmId, u64, u64), DemandPrediction>>,
    /// Envelope-table reuses across all [`Predictor::predict_batch`] calls.
    env_hits: AtomicU64,
    /// Envelope-table derivations across all [`Predictor::predict_batch`]
    /// calls (one per cache miss).
    env_misses: AtomicU64,
}

impl Oracle {
    /// Derivations cached before the memo stops growing. Deliberately below
    /// million-VM scale: the memo exists for multi-policy reuse on
    /// evaluation-sized traces, not to mirror a whole million-VM replay in
    /// memory. A memoized prediction for the shipped 6-window partition
    /// stays inline (no spill past [`WindowVec::INLINE`]), so an entry is
    /// the key plus `size_of::<DemandPrediction>()` ≈ 0.5 kB of table
    /// payload — `memo_entries_for_paper_windows_stay_inline_and_small`
    /// pins the exact figure — and the cap holds the memo near ~128 MB.
    const MAX_CACHED: usize = 1 << 18;

    /// An oracle over the given window partition.
    pub fn new(tw: TimeWindows) -> Self {
        Oracle {
            tw,
            cache: Mutex::new(HashMap::new()),
            env_hits: AtomicU64::new(0),
            env_misses: AtomicU64::new(0),
        }
    }

    /// Envelope-cache telemetry accumulated over every
    /// [`Predictor::predict_batch`] call: `(hits, misses)`. A *miss* is an
    /// envelope-table derivation, a *hit* a table reuse by a same-template
    /// VM later in a batch; the per-item [`Predictor::predict`] path does
    /// not touch these.
    pub fn envelope_counters(&self) -> (u64, u64) {
        (
            self.env_hits.load(Ordering::Relaxed),
            self.env_misses.load(Ordering::Relaxed),
        )
    }

    /// Cache discriminator beyond the VM id: ids restart at 0 in every
    /// generated trace, so an `Oracle` shared across traces must not serve
    /// trace A's derivation for trace B's VM. Folding the lifetime and the
    /// full behavior profile (the only inputs of the derivation) into the
    /// key makes a stale hit require an identical derivation anyway.
    fn vm_fingerprint(vm: &VmRecord) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a style fold
        let mut mix = |v: u64| {
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(vm.arrival.ticks());
        mix(vm.departure.ticks());
        mix(vm.profile.noise_seed);
        mix(vm.profile.kind as u64);
        for p in &vm.profile.per_resource {
            for v in [
                p.base,
                p.amplitude,
                p.peak_hour,
                p.peak_width_hours,
                p.noise,
                p.weekend_factor,
                p.daily_drift,
            ] {
                mix(v.to_bits());
            }
        }
        h
    }
}

impl Predictor for Oracle {
    fn time_windows(&self) -> TimeWindows {
        self.tw
    }

    fn predict(&self, vm: &VmRecord, percentile: Percentile) -> Option<DemandPrediction> {
        if too_short(vm) {
            return None;
        }
        let key = (
            vm.id,
            percentile.value().to_bits(),
            Self::vm_fingerprint(vm),
        );
        if let Some(hit) = self.cache.lock().expect("oracle cache").get(&key) {
            return Some(hit.clone());
        }
        let mut p = UtilizationModel::oracle(vm, self.tw, percentile);
        bucket_prediction(&mut p);
        let mut cache = self.cache.lock().expect("oracle cache");
        if cache.len() < Self::MAX_CACHED {
            cache.insert(key, p.clone());
        }
        Some(p)
    }

    /// The cold-path batch derivation: sort the batch by envelope template
    /// so equal-envelope VMs are adjacent, then derive them in that order
    /// through one shared [`EnvelopeCache`] — envelope reuse becomes a pure
    /// iteration pattern. Results come back in input order.
    ///
    /// The `(VM, percentile)` memo is deliberately bypassed in both
    /// directions: a batch derives each VM exactly once, so fingerprinting
    /// and locking per VM buys nothing, and a million-VM replay must not
    /// leave a million-entry footprint behind. The memo stays the fallback
    /// for the per-item path, and skipping it cannot change results —
    /// [`UtilizationModel::oracle_cached`] is bit-identical to the fresh
    /// derivation the memo stores.
    fn predict_batch(
        &self,
        vms: &[&VmRecord],
        percentile: Percentile,
    ) -> Vec<Option<DemandPrediction>> {
        let mut order: Vec<u32> = (0..vms.len() as u32).collect();
        order.sort_by_cached_key(|&i| {
            vms[i as usize]
                .profile
                .per_resource
                .each_ref()
                .map(EnvelopeKey::of)
        });
        let mut env = EnvelopeCache::new();
        let mut out = vec![None; vms.len()];
        for &i in &order {
            let vm = vms[i as usize];
            if too_short(vm) {
                continue;
            }
            let mut p = UtilizationModel::oracle_cached(vm, self.tw, percentile, &mut env);
            bucket_prediction(&mut p);
            out[i as usize] = Some(p);
        }
        let (hits, misses) = env.counters();
        self.env_hits.fetch_add(hits, Ordering::Relaxed);
        self.env_misses.fetch_add(misses, Ordering::Relaxed);
        out
    }
}

/// The trained long-term utilization model (§3.3); VMs without group
/// history get `None` (conservatively not oversubscribed).
#[derive(Debug)]
pub struct Model<'a> {
    model: &'a UtilizationModel,
}

impl<'a> Model<'a> {
    /// Wrap a trained model.
    pub fn new(model: &'a UtilizationModel) -> Self {
        Model { model }
    }
}

impl Predictor for Model<'_> {
    fn time_windows(&self) -> TimeWindows {
        self.model.config().tw
    }

    /// The percentile argument is ignored: the model predicts at the
    /// percentile it was trained with (re-deriving from the oracle would
    /// bypass the artifact under test).
    fn predict(&self, vm: &VmRecord, _percentile: Percentile) -> Option<DemandPrediction> {
        self.model.predict(vm)
    }
}

/// The pre-redesign eager oracle: materialize each VM's full 5-minute
/// series and walk its samples. Functionally identical to [`Oracle`] (the
/// differential test `lazy_oracle_matches_eager_reference` holds them
/// equal) but orders of magnitude more expensive — exists only as the
/// reference end of that comparison.
#[derive(Debug, Clone, Copy)]
pub struct NaiveReference {
    tw: TimeWindows,
}

impl NaiveReference {
    /// An eager reference oracle over the given window partition.
    pub fn new(tw: TimeWindows) -> Self {
        NaiveReference { tw }
    }
}

impl Predictor for NaiveReference {
    fn time_windows(&self) -> TimeWindows {
        self.tw
    }

    fn predict(&self, vm: &VmRecord, percentile: Percentile) -> Option<DemandPrediction> {
        if too_short(vm) {
            return None;
        }
        let mut p = UtilizationModel::oracle_eager(vm, self.tw, percentile);
        bucket_prediction(&mut p);
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_trace::{generate, TraceConfig};

    #[test]
    fn oracle_skips_short_vms_and_buckets_long_ones() {
        let trace = generate(&TraceConfig::small(95));
        let src = Oracle::new(TimeWindows::paper_default());
        let short = trace
            .vms
            .iter()
            .find(|v| v.lifetime() < SimDuration::from_days(1))
            .expect("a short vm");
        assert!(src.predict(short, Percentile::P95).is_none());

        let long = trace.long_running().next().expect("a long vm");
        let p = src.predict(long, Percentile::P95).expect("prediction");
        for v in p.pmax.iter().chain(p.px.iter()) {
            for kind in ResourceKind::ALL {
                let x = v[kind];
                assert!(
                    (x * 20.0 - (x * 20.0).round()).abs() < 1e-6,
                    "{x} not bucketed"
                );
            }
        }
        // Cached result is identical.
        let again = src.predict(long, Percentile::P95).expect("cached");
        assert_eq!(p, again);
    }

    #[test]
    fn lower_percentile_means_lower_pa() {
        let trace = generate(&TraceConfig::small(96));
        let src = Oracle::new(TimeWindows::paper_default());
        let vm = trace.long_running().next().unwrap();
        let p95 = src.predict(vm, Percentile::P95).unwrap();
        let p50 = src.predict(vm, Percentile::P50).unwrap();
        for kind in ResourceKind::ALL {
            assert!(
                p50.pa_fraction()[kind] <= p95.pa_fraction()[kind] + 1e-9,
                "{kind}: p50 pa > p95 pa"
            );
        }
    }

    /// The tentpole acceptance: lazy `WindowStats`-based oracle predictions
    /// equal the eager materialized path for every long-running VM across
    /// several seeds and percentiles.
    #[test]
    fn lazy_oracle_matches_eager_reference() {
        let tw = TimeWindows::paper_default();
        for seed in [31u64, 32, 33] {
            let trace = generate(&TraceConfig::small(seed));
            let lazy = Oracle::new(tw);
            let eager = NaiveReference::new(tw);
            let mut compared = 0usize;
            for vm in &trace.vms {
                for percentile in [Percentile::P95, Percentile::P50] {
                    match (lazy.predict(vm, percentile), eager.predict(vm, percentile)) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            compared += 1;
                            for w in tw.indices() {
                                for kind in ResourceKind::ALL {
                                    assert!(
                                        (a.pmax[w][kind] - b.pmax[w][kind]).abs() <= 1e-12,
                                        "seed {seed} vm {} {kind} w{w} pmax: lazy {} eager {}",
                                        vm.id,
                                        a.pmax[w][kind],
                                        b.pmax[w][kind]
                                    );
                                    assert!(
                                        (a.px[w][kind] - b.px[w][kind]).abs() <= 1e-12,
                                        "seed {seed} vm {} {kind} w{w} px: lazy {} eager {}",
                                        vm.id,
                                        a.px[w][kind],
                                        b.px[w][kind]
                                    );
                                }
                            }
                        }
                        (a, b) => panic!(
                            "seed {seed} vm {}: lazy {:?} vs eager {:?}",
                            vm.id,
                            a.is_some(),
                            b.is_some()
                        ),
                    }
                }
            }
            assert!(compared > 50, "seed {seed}: only {compared} comparisons");
        }
    }

    #[test]
    fn oracle_cache_distinguishes_traces_with_colliding_vm_ids() {
        // VM ids restart at 0 in every generated trace; an Oracle reused
        // across traces must key on more than the id.
        let tw = TimeWindows::paper_default();
        let a = generate(&TraceConfig::small(41));
        let b = generate(&TraceConfig::small(42));
        let oracle = Oracle::new(tw);
        let reference = NaiveReference::new(tw);
        let mut checked = 0;
        for (va, vb) in a.vms.iter().zip(&b.vms) {
            assert_eq!(va.id, vb.id, "trace vm ids are expected to collide");
            let first = oracle.predict(va, Percentile::P95);
            let second = oracle.predict(vb, Percentile::P95);
            assert_eq!(second, reference.predict(vb, Percentile::P95));
            if let (Some(x), Some(y)) = (first, second) {
                checked += usize::from(x != y);
            }
        }
        assert!(checked > 5, "colliding ids never diverged: {checked}");
    }

    /// `predict_batch` is a throughput entry point, never a semantic one:
    /// for every shipped source it must equal the per-item loop exactly.
    /// `Oracle` overrides it (shared envelope cache, memo bypassed), so
    /// this differentially pins the override; `Model` and `NaiveReference`
    /// exercise the default loop.
    #[test]
    fn predict_batch_matches_per_item_loop() {
        use coach_predict::{ForestParams, ModelConfig};

        let tw = TimeWindows::paper_default();
        let trace = generate(&TraceConfig::small(97));
        let vms: Vec<&VmRecord> = trace.vms.iter().collect();

        let model = UtilizationModel::train(
            &vms,
            ModelConfig {
                tw,
                percentile: Percentile::P95,
                forest: ForestParams {
                    n_trees: 4,
                    ..ForestParams::default()
                },
            },
        );

        let oracle = Oracle::new(tw);
        let trained = Model::new(&model);
        let reference = NaiveReference::new(tw);
        let sources: Vec<(&str, &dyn Predictor)> = vec![
            ("oracle", &oracle),
            ("model", &trained),
            ("naive", &reference),
        ];
        for (name, src) in sources {
            for percentile in [Percentile::P95, Percentile::P50] {
                let batch = src.predict_batch(&vms, percentile);
                assert_eq!(batch.len(), vms.len(), "{name}: batch length");
                for (vm, got) in vms.iter().zip(&batch) {
                    let want = src.predict(vm, percentile);
                    assert_eq!(*got, want, "{name} vm {}: batch != per-item", vm.id);
                }
            }
        }

        // The override's telemetry is consistent: every long VM asked the
        // shared cache for its four per-resource envelope tables.
        let long = trace.long_running().count() as u64;
        let (hits, misses) = oracle.envelope_counters();
        assert_eq!(hits + misses, 2 * 4 * long, "oracle envelope lookups");
        assert!(misses > 0, "batch derived no envelope tables");
    }

    /// Pins the memo sizing arithmetic that justifies [`Oracle::MAX_CACHED`]:
    /// a prediction for the shipped 6-window partition stays inline (no
    /// [`WindowVec`] spill), and the per-entry estimate the cap comment
    /// cites — key + inline prediction — stays a hair under 0.5 kB, keeping
    /// the full memo near ~128 MB.
    #[test]
    fn memo_entries_for_paper_windows_stay_inline_and_small() {
        use std::mem::size_of;

        let trace = generate(&TraceConfig::small(98));
        let oracle = Oracle::new(TimeWindows::paper_default());
        let vm = trace.long_running().next().expect("a long vm");
        let p = oracle.predict(vm, Percentile::P95).expect("prediction");
        assert!(
            !p.pmax.spilled() && !p.px.spilled(),
            "6-window predictions must stay inline"
        );

        let entry = size_of::<(VmId, u64, u64)>() + size_of::<DemandPrediction>();
        assert!(
            (256..=512).contains(&entry),
            "memo entry estimate drifted from ~0.5 kB: {entry} B"
        );
        let total_mb = (Oracle::MAX_CACHED * entry) >> 20;
        assert!(
            (64..=160).contains(&total_mb),
            "capped memo no longer ~128 MB: {total_mb} MB"
        );
    }

    #[test]
    fn predictors_are_object_safe() {
        let oracle = Oracle::new(TimeWindows::paper_default());
        let reference = NaiveReference::new(TimeWindows::paper_default());
        let sources: Vec<&dyn Predictor> = vec![&oracle, &reference];
        for s in sources {
            assert_eq!(s.time_windows().count(), 6);
        }
    }
}

//! [`coach_wire`] codecs for experiment configuration and results.
//!
//! [`PolicyConfig`] and [`PackingResult`] carry `&'static str` labels, so
//! they cannot be decoded from arbitrary bytes directly — the codec ships
//! the label as a string and re-interns it against the paper's four labels
//! ([`PolicyConfig::paper_set`]) on decode. A label outside that set is a
//! [`WireError::UnknownTag`]: the process-worker protocol only ever speaks
//! the paper policies.

use coach_wire::{Decode, Decoder, Encode, Encoder, WireError};

use crate::packing::{PackingResult, PolicyConfig};
use crate::probe::ProbeMode;

/// The paper's four policy labels (Fig 20), the only ones that exist on
/// the wire.
const LABELS: [&str; 4] = ["None", "Single", "Coach", "Aggr Coach"];

/// Re-intern a decoded label against [`LABELS`].
fn intern_label(label: &str) -> Result<&'static str, WireError> {
    LABELS
        .iter()
        .find(|l| **l == label)
        .copied()
        .ok_or(WireError::UnknownTag {
            context: "policy label",
            tag: label.len() as u64,
        })
}

impl Encode for PolicyConfig {
    fn encode(&self, e: &mut Encoder) {
        e.str(self.label);
        self.policy.encode(e);
        self.percentile.encode(e);
    }
}

impl Decode for PolicyConfig {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let label = intern_label(d.str("PolicyConfig label")?)?;
        Ok(PolicyConfig {
            label,
            policy: Decode::decode(d)?,
            percentile: Decode::decode(d)?,
        })
    }
}

impl Encode for ProbeMode {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            ProbeMode::Exhaustive => 0,
            ProbeMode::Estimated => 1,
            ProbeMode::Differential => 2,
        });
    }
}

impl Decode for ProbeMode {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8("ProbeMode")? {
            0 => Ok(ProbeMode::Exhaustive),
            1 => Ok(ProbeMode::Estimated),
            2 => Ok(ProbeMode::Differential),
            tag => Err(WireError::UnknownTag {
                context: "ProbeMode",
                tag: tag as u64,
            }),
        }
    }
}

impl Encode for PackingResult {
    fn encode(&self, e: &mut Encoder) {
        e.str(self.label);
        e.u64(self.accepted);
        e.u64(self.rejected);
        e.f64(self.accepted_core_hours);
        e.f64(self.accepted_gb_hours);
        e.f64(self.probe_capacity);
        e.usize(self.peak_servers_in_use);
        e.f64(self.cpu_violation_rate);
        e.f64(self.mem_violation_rate);
    }
}

impl Decode for PackingResult {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let label = intern_label(d.str("PackingResult label")?)?;
        Ok(PackingResult {
            label,
            accepted: d.u64("PackingResult accepted")?,
            rejected: d.u64("PackingResult rejected")?,
            accepted_core_hours: d.f64("PackingResult accepted_core_hours")?,
            accepted_gb_hours: d.f64("PackingResult accepted_gb_hours")?,
            probe_capacity: d.f64("PackingResult probe_capacity")?,
            peak_servers_in_use: d.usize("PackingResult peak_servers_in_use")?,
            cpu_violation_rate: d.f64("PackingResult cpu_violation_rate")?,
            mem_violation_rate: d.f64("PackingResult mem_violation_rate")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_wire::{open_frame, seal_frame};

    #[test]
    fn policy_configs_roundtrip_with_interned_labels() {
        for cfg in PolicyConfig::paper_set() {
            let frame = seal_frame(&cfg);
            let back: PolicyConfig = open_frame(&frame).expect("decode PolicyConfig");
            assert_eq!(back, cfg);
            // The decoded label is re-interned, so pointer identity with the
            // paper set's literal is preserved for downstream `&'static str`.
            assert!(std::ptr::eq(back.label, cfg.label) || back.label == cfg.label);
        }
    }

    #[test]
    fn foreign_label_is_rejected() {
        let mut e = coach_wire::Encoder::new();
        e.str("Bespoke");
        let mut frame = Vec::from(coach_wire::MAGIC);
        frame.extend_from_slice(&coach_wire::VERSION.to_le_bytes());
        frame.extend_from_slice(&e.into_bytes());
        assert!(matches!(
            open_frame::<PolicyConfig>(&frame),
            Err(WireError::UnknownTag { .. })
        ));
    }

    #[test]
    fn packing_result_roundtrips_bit_exactly() {
        let result = PackingResult {
            label: "Coach",
            accepted: 12_345,
            rejected: 67,
            accepted_core_hours: 1.23456789e7,
            accepted_gb_hours: 9.87654321e7,
            probe_capacity: 321.5,
            peak_servers_in_use: 864,
            cpu_violation_rate: 0.001953125,
            mem_violation_rate: 0.0,
        };
        let frame = seal_frame(&result);
        let back: PackingResult = open_frame(&frame).expect("decode PackingResult");
        assert_eq!(back, result);
    }
}

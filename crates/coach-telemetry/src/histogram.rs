//! Mergeable log2-bucket histograms.
//!
//! Two flavours share one bucket layout:
//!
//! * [`Histogram`] — a plain value type used for snapshots, merging, and
//!   wire transport. This subsumes the serving layer's former
//!   `LatencyHistogram` (PR 9): identical bucketing, identical quantile
//!   estimator, so re-exporting it is a drop-in migration.
//! * [`AtomicHistogram`] — the live instrument handed out by the
//!   [`Registry`](crate::Registry): lock-free `fetch_add`s on the hot path,
//!   snapshot into a [`Histogram`] at export time.
//!
//! Buckets are powers of two: bucket `i` covers `[2^(i-1), 2^i)` nanoseconds
//! (bucket 0 is `0..1`), 64 buckets total, so any `u64` duration lands
//! somewhere and merging two histograms is a plain element-wise add.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// Geometric midpoint factor used by the quantile estimator: a sample in
/// bucket `[lo, 2*lo)` is reported as `lo * sqrt(2)`.
const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Index of the log2 bucket for a duration in nanoseconds.
#[inline]
fn bucket_of(ns: u64) -> usize {
    ((64 - ns.leading_zeros()).min(63)) as usize
}

/// A fixed-size log2 histogram of durations in nanoseconds.
///
/// Plain value type: recording is a single array increment, merging is an
/// element-wise add (associative and commutative), and `parts`/`from_parts`
/// expose the raw state for wire codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean duration in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Approximate quantile in nanoseconds using the geometric midpoint of
    /// the bucket containing the `q`-th sample (0.0 when empty).
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == 0 {
                    return 0.0;
                }
                let lo = (1u64 << (i - 1)) as f64;
                return lo * SQRT_2; // geometric midpoint of [2^(i-1), 2^i)
            }
        }
        unreachable!("rank is bounded by count")
    }

    /// Approximate quantile in microseconds.
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.quantile_ns(q) / 1_000.0
    }

    /// Fold another histogram into this one (element-wise add).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Raw state `(buckets, count, sum_ns)` for wire codecs.
    pub fn parts(&self) -> (&[u64; BUCKETS], u64, u64) {
        (&self.buckets, self.count, self.sum_ns)
    }

    /// Rebuild from raw wire state.
    pub fn from_parts(buckets: [u64; BUCKETS], count: u64, sum_ns: u64) -> Self {
        Self {
            buckets,
            count,
            sum_ns,
        }
    }
}

/// Lock-free histogram instrument: shared via `Arc`, recorded into from any
/// thread with relaxed atomics, snapshotted into a [`Histogram`] for export.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty instrument.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one duration in nanoseconds. Allocation-free and wait-free.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state into a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        Histogram {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }

    /// Take the current state, resetting the instrument to zero. Used when
    /// shipping deltas across processes.
    pub fn drain(&self) -> Histogram {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.swap(0, Ordering::Relaxed);
        }
        Histogram {
            buckets,
            count: self.count.swap(0, Ordering::Relaxed),
            sum_ns: self.sum_ns.swap(0, Ordering::Relaxed),
        }
    }

    /// Fold a plain histogram back into the live instrument (used when the
    /// parent merges a child's shipped delta).
    pub fn add(&self, other: &Histogram) {
        for (dst, &src) in self.buckets.iter().zip(other.buckets.iter()) {
            if src != 0 {
                dst.fetch_add(src, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum_ns.fetch_add(other.sum_ns, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets() {
        let mut h = Histogram::new();
        h.record_ns(0);
        h.record_ns(1);
        h.record_ns(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 1001);
        assert!(h.mean_ns() > 333.0 && h.mean_ns() < 334.0);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.record_ns(i * 100);
        }
        let p50 = h.quantile_ns(0.5);
        let p99 = h.quantile_ns(0.99);
        assert!(p50 <= p99);
        assert!(p50 > 0.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_ns(10);
        b.record_ns(10_000);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum_ns(), 10_010);
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for ns in [0u64, 1, 7, 1024, 1 << 60] {
            atomic.record_ns(ns);
            plain.record_ns(ns);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn atomic_drain_resets() {
        let atomic = AtomicHistogram::new();
        atomic.record_ns(42);
        let first = atomic.drain();
        assert_eq!(first.count(), 1);
        assert_eq!(atomic.snapshot(), Histogram::new());
        atomic.add(&first);
        assert_eq!(atomic.snapshot(), first);
    }

    #[test]
    fn parts_roundtrip() {
        let mut h = Histogram::new();
        h.record_ns(123_456);
        let (buckets, count, sum) = h.parts();
        let back = Histogram::from_parts(*buckets, count, sum);
        assert_eq!(back, h);
    }
}

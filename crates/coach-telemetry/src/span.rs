//! Scoped span timers recorded into fixed-capacity per-thread rings.
//!
//! A [`SpanRing`] is owned by exactly one thread (no locks, no atomics): the
//! controller or dispatcher that instruments itself holds its ring and
//! records `(name, tid, start_ns, dur_ns)` events with two clock reads and
//! one in-capacity `Vec::push`. When the ring is full, new events are
//! **dropped and counted** — the hot path never blocks and never
//! reallocates. Rings from many threads are exported together as Chrome
//! `trace_event` JSON (load in `chrome://tracing` or Perfetto).
//!
//! Timestamps are relative to a shared origin `Instant` so spans from
//! different rings line up on one timeline; pass the same origin to every
//! ring of a deployment (see [`SpanRing::with_origin`]).

use std::time::Instant;

/// Default ring capacity (events per thread).
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (dot-separated convention: `serve.admit`, `dispatch.merge`).
    pub name: &'static str,
    /// Logical thread id (shard index; dispatcher uses a distinct id).
    pub tid: u32,
    /// Start, nanoseconds since the ring's origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// An in-flight span: returned by [`SpanRing::begin`], closed by
/// [`SpanRing::end`]. Not `Clone` — each start closes at most once.
#[derive(Debug)]
pub struct SpanStart {
    at: Instant,
}

/// A fixed-capacity, single-owner span buffer with drop counting.
#[derive(Debug)]
pub struct SpanRing {
    origin: Instant,
    tid: u32,
    events: Vec<SpanEvent>,
    capacity: usize,
    dropped: u64,
    drops_synced: u64,
}

impl SpanRing {
    /// A ring with its own origin (single-ring deployments).
    pub fn new(tid: u32, capacity: usize) -> Self {
        Self::with_origin(Instant::now(), tid, capacity)
    }

    /// A ring sharing `origin` with sibling rings so exported spans share
    /// one timeline.
    pub fn with_origin(origin: Instant, tid: u32, capacity: usize) -> Self {
        SpanRing {
            origin,
            tid,
            events: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
            drops_synced: 0,
        }
    }

    /// The shared timeline origin.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// This ring's logical thread id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Start a span (one clock read; no ring access, so it cannot drop).
    #[inline]
    pub fn begin() -> SpanStart {
        SpanStart { at: Instant::now() }
    }

    /// Close a span started with [`SpanRing::begin`]. One clock read plus an
    /// in-capacity push; drops (counted) when the ring is full.
    #[inline]
    pub fn end(&mut self, name: &'static str, start: SpanStart) {
        let dur_ns = start.at.elapsed().as_nanos() as u64;
        let start_ns = start.at.duration_since(self.origin).as_nanos() as u64;
        self.record(name, start_ns, dur_ns);
    }

    /// Record a pre-measured span.
    #[inline]
    pub fn record(&mut self, name: &'static str, start_ns: u64, dur_ns: u64) {
        if self.events.len() == self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(SpanEvent {
            name,
            tid: self.tid,
            start_ns,
            dur_ns,
        });
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops since the last call (for mirroring into a drop counter at
    /// export barriers without double counting).
    pub fn take_drop_delta(&mut self) -> u64 {
        let delta = self.dropped - self.drops_synced;
        self.drops_synced = self.dropped;
        delta
    }

    /// Total duration of recorded spans with `name`, nanoseconds.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.dur_ns)
            .sum()
    }

    /// Number of recorded spans with `name`.
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// Forget recorded events (drop counters are preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Render rings as a Chrome `trace_event` JSON document (complete "X"
/// events; `ts`/`dur` in fractional microseconds).
pub fn chrome_trace<'r>(rings: impl IntoIterator<Item = &'r SpanRing>) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for ring in rings {
        for e in ring.events() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"coach\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                e.name,
                e.tid,
                e.start_ns as f64 / 1_000.0,
                e.dur_ns as f64 / 1_000.0,
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_with_shared_origin() {
        let origin = Instant::now();
        let mut a = SpanRing::with_origin(origin, 0, 16);
        let mut b = SpanRing::with_origin(origin, 1, 16);
        let s = SpanRing::begin();
        a.end("serve.admit", s);
        b.record("dispatch.merge", 10, 20);
        assert_eq!(a.events().len(), 1);
        assert_eq!(a.events()[0].name, "serve.admit");
        assert_eq!(a.events()[0].tid, 0);
        assert_eq!(b.events()[0].tid, 1);
        assert_eq!(b.total_ns("dispatch.merge"), 20);
        assert_eq!(b.count("dispatch.merge"), 1);
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_blocking() {
        let mut ring = SpanRing::new(0, 4);
        for i in 0..10u64 {
            ring.record("x", i, 1);
        }
        assert_eq!(ring.events().len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.take_drop_delta(), 6);
        ring.record("x", 99, 1);
        assert_eq!(ring.take_drop_delta(), 1);
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let mut ring = SpanRing::new(3, 8);
        ring.record("serve.tick", 1_000, 2_000);
        ring.record("serve.probe", 5_000, 500);
        let json = chrome_trace([&ring]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"serve.tick\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"ts\":1,\"dur\":2"));
        let empty = chrome_trace([]);
        assert!(empty.contains("\"traceEvents\":[]"));
    }
}

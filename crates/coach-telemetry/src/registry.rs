//! The metrics registry: named, labeled, atomically-updated instruments.
//!
//! Registration (name + label resolution, one small allocation per new
//! series) happens once, at wiring time; the returned `Arc` handles are then
//! updated lock-free on the hot path. Export walks the registry under its
//! lock, snapshots every instrument, and renders deterministically (sorted
//! by name, then labels), so two registries that accumulated the same events
//! render the same text regardless of registration or merge order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{AtomicHistogram, Histogram};

/// Static identity of a metric: its exposition name and help text.
///
/// Declared as `const`s in an instrument catalog so every call site agrees
/// on spelling; the registry keys series by `(name, labels)`.
#[derive(Debug, Clone, Copy)]
pub struct MetricId {
    /// Exposition name, e.g. `coach_serve_accepted_total`.
    pub name: &'static str,
    /// One-line help text for the text exposition.
    pub help: &'static str,
}

impl MetricId {
    /// Declare a metric identity.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self { name, help }
    }
}

/// A label value: static string or integer (formatted at registration).
#[derive(Debug, Clone, Copy)]
pub enum LabelValue {
    /// A static string value, e.g. a policy or lane-kind name.
    Str(&'static str),
    /// An integer value, e.g. a shard index.
    U64(u64),
}

/// One label pair attached at registration time.
pub type Label = (&'static str, LabelValue);

fn resolve_labels(labels: &[Label]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| {
            let value = match v {
                LabelValue::Str(s) => (*s).to_string(),
                LabelValue::U64(n) => n.to_string(),
            };
            ((*k).to_string(), value)
        })
        .collect()
}

/// A monotonically increasing counter. Wait-free, allocation-free updates.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Take the current value, resetting to zero (delta shipping).
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A last-written-value gauge storing an `f64` (as bits in an atomic).
///
/// Merging two registries keeps the **maximum** gauge value — gauges here
/// record throughputs and rates where "hottest shard wins" is the useful
/// cross-shard summary and max is commutative, associative, and idempotent.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Raise the gauge to `value` if larger (merge semantics).
    pub fn raise(&self, value: f64) {
        if value > self.get() {
            self.set(value);
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// An exported instrument value (plain data, wire-friendly).
///
/// The histogram variant is kept inline (~0.5 KB of buckets) rather than
/// boxed: snapshot entries are built on every session-barrier drain, and
/// boxing would add a per-histogram allocation to that path for vectors
/// that live only until the merge.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// A counter's value (or delta).
    Counter(u64),
    /// A gauge's value.
    Gauge(f64),
    /// A histogram's state (or delta).
    Histogram(Histogram),
}

/// One exported series: name, labels, help, value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Exposition name.
    pub name: String,
    /// Resolved label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// The value.
    pub value: MetricValue,
}

/// A point-in-time (or drained-delta) copy of a registry, sorted by
/// `(name, labels)` — the unit of cross-process telemetry shipping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Exported series, sorted by `(name, labels)`.
    pub entries: Vec<MetricEntry>,
}

/// One exported counter series: `(name, resolved labels, value)`.
pub type CounterSeries = (String, Vec<(String, String)>, u64);

impl RegistrySnapshot {
    /// Look up a counter series by name and resolved labels.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.entries.iter().find_map(|e| {
            if e.name == name && labels_match(&e.labels, labels) {
                match e.value {
                    MetricValue::Counter(v) => Some(v),
                    _ => None,
                }
            } else {
                None
            }
        })
    }

    /// All counter series whose name starts with `prefix`, as
    /// `(name, labels, value)` — sorted, so two snapshots with equal
    /// counter state compare equal.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<CounterSeries> {
        self.entries
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .filter_map(|e| match e.value {
                MetricValue::Counter(v) => Some((e.name.clone(), e.labels.clone(), v)),
                _ => None,
            })
            .collect()
    }
}

fn labels_match(resolved: &[(String, String)], wanted: &[(&str, &str)]) -> bool {
    resolved.len() == wanted.len()
        && resolved
            .iter()
            .zip(wanted.iter())
            .all(|((k, v), (wk, wv))| k == wk && v == wv)
}

/// The instrument registry. Cheap to share (`Arc<Registry>`); instruments
/// are registered once and updated lock-free thereafter.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create a counter series.
    ///
    /// # Panics
    /// If the series exists with a different instrument kind.
    pub fn counter(&self, id: MetricId, labels: &[Label]) -> Arc<Counter> {
        let resolved = resolve_labels(labels);
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == id.name && e.labels == resolved)
        {
            match &e.instrument {
                Instrument::Counter(c) => return Arc::clone(c),
                _ => panic!("metric {} registered with a different kind", id.name),
            }
        }
        let handle = Arc::new(Counter::default());
        entries.push(Entry {
            name: id.name.to_string(),
            help: id.help.to_string(),
            labels: resolved,
            instrument: Instrument::Counter(Arc::clone(&handle)),
        });
        handle
    }

    /// Get or create a gauge series.
    ///
    /// # Panics
    /// If the series exists with a different instrument kind.
    pub fn gauge(&self, id: MetricId, labels: &[Label]) -> Arc<Gauge> {
        let resolved = resolve_labels(labels);
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == id.name && e.labels == resolved)
        {
            match &e.instrument {
                Instrument::Gauge(g) => return Arc::clone(g),
                _ => panic!("metric {} registered with a different kind", id.name),
            }
        }
        let handle = Arc::new(Gauge::default());
        entries.push(Entry {
            name: id.name.to_string(),
            help: id.help.to_string(),
            labels: resolved,
            instrument: Instrument::Gauge(Arc::clone(&handle)),
        });
        handle
    }

    /// Get or create a histogram series.
    ///
    /// # Panics
    /// If the series exists with a different instrument kind.
    pub fn histogram(&self, id: MetricId, labels: &[Label]) -> Arc<AtomicHistogram> {
        let resolved = resolve_labels(labels);
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == id.name && e.labels == resolved)
        {
            match &e.instrument {
                Instrument::Histogram(h) => return Arc::clone(h),
                _ => panic!("metric {} registered with a different kind", id.name),
            }
        }
        let handle = Arc::new(AtomicHistogram::new());
        entries.push(Entry {
            name: id.name.to_string(),
            help: id.help.to_string(),
            labels: resolved,
            instrument: Instrument::Histogram(Arc::clone(&handle)),
        });
        handle
    }

    fn export(&self, drain: bool) -> RegistrySnapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out: Vec<MetricEntry> = entries
            .iter()
            .map(|e| {
                let value = match &e.instrument {
                    Instrument::Counter(c) => {
                        MetricValue::Counter(if drain { c.take() } else { c.get() })
                    }
                    // Gauges are levels, not flows: deltas report the level
                    // without resetting it.
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => {
                        MetricValue::Histogram(if drain { h.drain() } else { h.snapshot() })
                    }
                };
                MetricEntry {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    help: e.help.clone(),
                    value,
                }
            })
            .collect();
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        RegistrySnapshot { entries: out }
    }

    /// Snapshot every series (cumulative values), sorted.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.export(false)
    }

    /// Drain counters and histograms to zero, returning the delta since the
    /// previous drain; gauges report their level without resetting. This is
    /// what a child shard worker ships over the wire at each barrier.
    pub fn drain_delta(&self) -> RegistrySnapshot {
        self.export(true)
    }

    /// Fold a snapshot (typically a child's shipped delta) into this
    /// registry: counters and histograms add, gauges keep the maximum.
    /// Series absent here are created, so merge is order-insensitive.
    pub fn merge(&self, delta: &RegistrySnapshot) {
        for entry in &delta.entries {
            let mut entries = self.entries.lock().expect("registry poisoned");
            let existing = entries
                .iter()
                .find(|e| e.name == entry.name && e.labels == entry.labels)
                .map(|e| e.instrument.clone());
            match (existing, &entry.value) {
                (Some(Instrument::Counter(c)), MetricValue::Counter(v)) => c.add(*v),
                (Some(Instrument::Gauge(g)), MetricValue::Gauge(v)) => g.raise(*v),
                (Some(Instrument::Histogram(h)), MetricValue::Histogram(v)) => h.add(v),
                (Some(_), _) => panic!("metric {} merged with a different kind", entry.name),
                (None, value) => {
                    let instrument = match value {
                        MetricValue::Counter(v) => {
                            let c = Counter::default();
                            c.add(*v);
                            Instrument::Counter(Arc::new(c))
                        }
                        MetricValue::Gauge(v) => {
                            let g = Gauge::default();
                            g.set(*v);
                            Instrument::Gauge(Arc::new(g))
                        }
                        MetricValue::Histogram(v) => {
                            let h = AtomicHistogram::new();
                            h.add(v);
                            Instrument::Histogram(Arc::new(h))
                        }
                    };
                    entries.push(Entry {
                        name: entry.name.clone(),
                        help: entry.help.clone(),
                        labels: entry.labels.clone(),
                        instrument,
                    });
                }
            }
        }
    }

    /// Convenience: current value of a counter series, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.snapshot().counter(name, labels)
    }

    /// Render the Prometheus-style text exposition (sorted, deterministic).
    pub fn render_text(&self) -> String {
        render_text(&self.snapshot())
    }

    /// Render one JSON object per series (sorted, deterministic).
    pub fn render_jsonl(&self) -> String {
        render_jsonl(&self.snapshot())
    }
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus-style text exposition of a snapshot. `# HELP`/`# TYPE` are
/// emitted once per metric name; histograms render cumulative `_bucket`
/// lines (only buckets that gained samples, plus `+Inf`), `_sum`, `_count`.
pub fn render_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for e in &snapshot.entries {
        if e.name != last_name {
            out.push_str(&format!("# HELP {} {}\n", e.name, escape(&e.help)));
            let kind = match e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# TYPE {} {}\n", e.name, kind));
            last_name = &e.name;
        }
        let labels = label_block(&e.labels);
        match &e.value {
            MetricValue::Counter(v) => out.push_str(&format!("{}{} {}\n", e.name, labels, v)),
            MetricValue::Gauge(v) => out.push_str(&format!("{}{} {}\n", e.name, labels, v)),
            MetricValue::Histogram(h) => {
                let (buckets, count, sum) = h.parts();
                let mut cumulative = 0u64;
                for (i, &c) in buckets.iter().enumerate() {
                    cumulative += c;
                    if c != 0 {
                        // Upper bound of log2 bucket i is 2^i ns (i == 0
                        // covers only the zero-duration sample).
                        let le = if i == 0 { 1u128 } else { 1u128 << i };
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            e.name,
                            bucket_labels(&e.labels, &le.to_string()),
                            cumulative
                        ));
                    }
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    e.name,
                    bucket_labels(&e.labels, "+Inf"),
                    count
                ));
                out.push_str(&format!("{}_sum{} {}\n", e.name, labels, sum));
                out.push_str(&format!("{}_count{} {}\n", e.name, labels, count));
            }
        }
    }
    out
}

fn bucket_labels(labels: &[(String, String)], le: &str) -> String {
    let mut all: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    all.push(format!("le=\"{le}\""));
    format!("{{{}}}", all.join(","))
}

/// JSONL exposition: one JSON object per series, sorted like the snapshot.
pub fn render_jsonl(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for e in &snapshot.entries {
        let labels: Vec<String> = e
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
            .collect();
        let value = match &e.value {
            MetricValue::Counter(v) => format!("\"type\":\"counter\",\"value\":{v}"),
            MetricValue::Gauge(v) => format!("\"type\":\"gauge\",\"value\":{v}"),
            MetricValue::Histogram(h) => {
                let (buckets, count, sum) = h.parts();
                let nonzero: Vec<String> = buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0)
                    .map(|(i, &c)| format!("[{i},{c}]"))
                    .collect();
                format!(
                    "\"type\":\"histogram\",\"count\":{count},\"sum_ns\":{sum},\"buckets\":[{}]",
                    nonzero.join(",")
                )
            }
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"labels\":{{{}}},{}}}\n",
            escape(&e.name),
            labels.join(","),
            value
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const HITS: MetricId = MetricId::new("test_hits_total", "Test hits.");
    const TEMP: MetricId = MetricId::new("test_temp", "Test temperature.");
    const LAT: MetricId = MetricId::new("test_latency_ns", "Test latency.");

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter(HITS, &[("shard", LabelValue::U64(0))]);
        let b = r.counter(HITS, &[("shard", LabelValue::U64(0))]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = r.counter(HITS, &[("shard", LabelValue::U64(1))]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_lookup_works() {
        let r = Registry::new();
        r.counter(HITS, &[("shard", LabelValue::U64(1))]).add(5);
        r.counter(HITS, &[("shard", LabelValue::U64(0))]).add(7);
        r.gauge(TEMP, &[]).set(1.5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap.counter("test_hits_total", &[("shard", "0")]), Some(7));
        assert_eq!(snap.counter("test_hits_total", &[("shard", "1")]), Some(5));
        assert_eq!(snap.counter("test_hits_total", &[("shard", "2")]), None);
    }

    #[test]
    fn drain_delta_resets_counters_and_histograms_not_gauges() {
        let r = Registry::new();
        r.counter(HITS, &[]).add(3);
        r.gauge(TEMP, &[]).set(9.0);
        r.histogram(LAT, &[]).record_ns(100);
        let delta = r.drain_delta();
        assert_eq!(delta.counter("test_hits_total", &[]), Some(3));
        let after = r.snapshot();
        assert_eq!(after.counter("test_hits_total", &[]), Some(0));
        assert!(matches!(
            after.entries.iter().find(|e| e.name == "test_temp").unwrap().value,
            MetricValue::Gauge(v) if v == 9.0
        ));
        assert!(matches!(
            &after.entries.iter().find(|e| e.name == "test_latency_ns").unwrap().value,
            MetricValue::Histogram(h) if h.count() == 0
        ));
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_creates_missing() {
        let parent = Registry::new();
        parent.counter(HITS, &[]).add(1);
        parent.gauge(TEMP, &[]).set(2.0);
        let child = Registry::new();
        child.counter(HITS, &[]).add(10);
        child.gauge(TEMP, &[]).set(1.0);
        child.histogram(LAT, &[]).record_ns(50);
        parent.merge(&child.drain_delta());
        let snap = parent.snapshot();
        assert_eq!(snap.counter("test_hits_total", &[]), Some(11));
        assert!(matches!(
            snap.entries.iter().find(|e| e.name == "test_temp").unwrap().value,
            MetricValue::Gauge(v) if v == 2.0
        ));
        assert!(matches!(
            &snap.entries.iter().find(|e| e.name == "test_latency_ns").unwrap().value,
            MetricValue::Histogram(h) if h.count() == 1
        ));
    }

    #[test]
    fn render_text_shape() {
        let r = Registry::new();
        r.counter(HITS, &[("policy", LabelValue::Str("Coach"))])
            .add(4);
        r.histogram(LAT, &[]).record_ns(1000);
        let text = r.render_text();
        assert!(text.contains("# HELP test_hits_total Test hits.\n"));
        assert!(text.contains("# TYPE test_hits_total counter\n"));
        assert!(text.contains("test_hits_total{policy=\"Coach\"} 4\n"));
        assert!(text.contains("test_latency_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("test_latency_ns_sum 1000\n"));
        assert!(text.contains("test_latency_ns_count 1\n"));
    }

    #[test]
    fn render_jsonl_one_object_per_line() {
        let r = Registry::new();
        r.counter(HITS, &[]).add(2);
        r.gauge(TEMP, &[]).set(0.5);
        let jsonl = r.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(jsonl.contains("\"type\":\"counter\",\"value\":2"));
    }

    #[test]
    fn counters_with_prefix_filters() {
        let r = Registry::new();
        r.counter(HITS, &[("shard", LabelValue::U64(0))]).add(1);
        r.gauge(TEMP, &[]).set(1.0);
        let series = r.snapshot().counters_with_prefix("test_hits");
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].2, 1);
    }
}

//! Unified observability for the Coach serving control plane.
//!
//! Three pieces, all dependency-free and allocation-free on the hot path:
//!
//! * **Instruments** — [`Counter`], [`Gauge`], and log2-bucket
//!   [`Histogram`]/[`AtomicHistogram`], addressed by static [`MetricId`]s
//!   with labels (shard, policy, lane kind) through a [`Registry`].
//!   Registration allocates once per series; updates are relaxed atomics.
//! * **Spans** — scoped timers recorded into per-thread fixed-capacity
//!   [`SpanRing`]s with drop counters; full rings drop (and count) instead
//!   of blocking, so tracing never perturbs the event loop it measures.
//! * **Export** — deterministic (sorted) renderings: Prometheus-style text
//!   ([`Registry::render_text`]), JSONL ([`Registry::render_jsonl`]), and
//!   Chrome `trace_event` JSON for spans ([`chrome_trace`]). Registries
//!   snapshot into plain-data [`RegistrySnapshot`]s that merge
//!   associatively and commutatively — the unit a child shard worker ships
//!   over the wire at each barrier for the parent to
//!   [`Registry::merge`].
//!
//! The serving layer selects a [`TelemetryConfig`] per deployment: `Off`
//! keeps every guard on the cold side of a `None` check (pinned
//! allocation-free by the counting-allocator harness), `CountersOnly`
//! arms instruments, `Full` adds span tracing. Decisions are bit-identical
//! across all three — telemetry observes, never steers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod registry;
mod span;

pub use histogram::{AtomicHistogram, Histogram, BUCKETS};
pub use registry::{
    render_jsonl, render_text, Counter, CounterSeries, Gauge, Label, LabelValue, MetricEntry,
    MetricId, MetricValue, Registry, RegistrySnapshot,
};
pub use span::{chrome_trace, SpanEvent, SpanRing, SpanStart, DEFAULT_SPAN_CAPACITY};

/// How much telemetry a deployment records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryConfig {
    /// No registry, no spans: instrumented call sites reduce to a `None`
    /// check. The default.
    #[default]
    Off,
    /// Counters, gauges, and histograms; no span tracing.
    CountersOnly,
    /// Counters plus span rings (Chrome-trace exportable).
    Full,
}

impl TelemetryConfig {
    /// Whether any instruments are armed.
    pub fn counters_enabled(self) -> bool {
        !matches!(self, TelemetryConfig::Off)
    }

    /// Whether span tracing is armed.
    pub fn spans_enabled(self) -> bool {
        matches!(self, TelemetryConfig::Full)
    }

    /// Whether telemetry is fully disabled.
    pub fn is_off(self) -> bool {
        matches!(self, TelemetryConfig::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_gates() {
        assert!(TelemetryConfig::Off.is_off());
        assert!(!TelemetryConfig::Off.counters_enabled());
        assert!(!TelemetryConfig::Off.spans_enabled());
        assert!(TelemetryConfig::CountersOnly.counters_enabled());
        assert!(!TelemetryConfig::CountersOnly.spans_enabled());
        assert!(TelemetryConfig::Full.counters_enabled());
        assert!(TelemetryConfig::Full.spans_enabled());
        assert_eq!(TelemetryConfig::default(), TelemetryConfig::Off);
    }
}

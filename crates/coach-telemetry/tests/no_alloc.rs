//! Hot-path allocation discipline for the telemetry instruments.
//!
//! The contract that lets telemetry live inside the serving event loop:
//! after registration (which allocates once per series) every instrument
//! update — counter increments, gauge stores, histogram records, span ring
//! pushes, and the full-ring *drop* path — performs **zero** heap
//! allocations. Pinned with a counting global allocator, the same harness
//! that pins the node agent loop.

use coach_telemetry::{LabelValue, MetricId, Registry, SpanRing};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that counts allocations.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const HITS: MetricId = MetricId::new("noalloc_hits_total", "Hits.");
const DEPTH: MetricId = MetricId::new("noalloc_depth", "Depth.");
const LAT: MetricId = MetricId::new("noalloc_latency_ns", "Latency.");

#[test]
fn instrument_updates_are_allocation_free() {
    // Registration allocates (series names, label strings, Arc) — done once
    // at wiring time, outside the measured window.
    let registry = Registry::new();
    let counter = registry.counter(HITS, &[("shard", LabelValue::U64(0))]);
    let gauge = registry.gauge(DEPTH, &[]);
    let histogram = registry.histogram(LAT, &[("policy", LabelValue::Str("Coach"))]);
    let mut ring = SpanRing::new(0, 256);

    // Warm-up: touch every path once.
    counter.inc();
    gauge.set(1.0);
    histogram.record_ns(100);
    let start = SpanRing::begin();
    ring.end("warm.up", start);

    let before = alloc_count();
    for i in 0..10_000u64 {
        counter.inc();
        counter.add(3);
        gauge.set(i as f64);
        histogram.record_ns(i * 17);
        let start = SpanRing::begin();
        ring.end("steady.state", start);
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "instrument hot path performed {delta} allocations"
    );

    // The ring filled long ago (capacity 256 < 10k records): overflow must
    // have dropped-and-counted, never grown the buffer.
    assert_eq!(ring.events().len(), ring.capacity());
    assert!(ring.dropped() > 0);

    // The drop path itself, measured in isolation, is also allocation-free.
    let before = alloc_count();
    for _ in 0..1_000 {
        ring.record("overflow", 0, 1);
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "span ring drop path performed {delta} allocations"
    );
    assert_eq!(counter.get(), 1 + 10_000 * 4);
}

//! Registry merge laws: shard merge order must not change rendered metrics.
//!
//! Counters and histograms merge by addition, gauges by maximum — all
//! commutative and associative — so a parent that merges child deltas in
//! any arrival order (threads finishing in any interleaving, process
//! replies drained in any shard order) renders identical output. These
//! properties randomize the event stream *and* its partition across three
//! child registries, then compare full text renderings.

use coach_telemetry::{LabelValue, MetricId, Registry};
use proptest::prelude::*;

const EVENTS: MetricId = MetricId::new("prop_events_total", "Events.");
const DEPTH: MetricId = MetricId::new("prop_depth", "Depth gauge.");
const LAT: MetricId = MetricId::new("prop_latency_ns", "Latency.");

/// One synthetic telemetry event: `(kind, shard, value)`.
type Event = (usize, u64, u64);

fn apply(registry: &Registry, events: &[Event]) {
    for &(kind, shard, value) in events {
        let labels = [("shard", LabelValue::U64(shard))];
        match kind % 3 {
            0 => registry.counter(EVENTS, &labels).add(value),
            1 => registry.gauge(DEPTH, &labels).raise(value as f64),
            _ => registry.histogram(LAT, &labels).record_ns(value),
        }
    }
}

/// Partition events across three child registries by each event's
/// partition tag, returning their drained deltas.
fn child_deltas(events: &[(usize, Event)]) -> [coach_telemetry::RegistrySnapshot; 3] {
    let children = [Registry::new(), Registry::new(), Registry::new()];
    for &(part, event) in events {
        apply(&children[part % 3], &[event]);
    }
    [
        children[0].drain_delta(),
        children[1].drain_delta(),
        children[2].drain_delta(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging child deltas in any of the six orders renders identically.
    #[test]
    fn prop_merge_is_order_insensitive(
        tagged in prop::collection::vec((0usize..3, (0usize..3, 0u64..4, 1u64..1_000_000)), 1..80),
    ) {
        let [a, b, c] = child_deltas(&tagged);
        let mut renders = Vec::new();
        for order in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let parent = Registry::new();
            for idx in order {
                parent.merge([&a, &b, &c][idx]);
            }
            renders.push((parent.render_text(), parent.render_jsonl(), parent.snapshot()));
        }
        for other in &renders[1..] {
            prop_assert_eq!(&renders[0].0, &other.0);
            prop_assert_eq!(&renders[0].1, &other.1);
            prop_assert_eq!(&renders[0].2, &other.2);
        }
    }

    /// Merging is associative: (A ∪ B) ∪ C == A ∪ (B ∪ C), comparing via
    /// snapshot equality of materialized parents.
    #[test]
    fn prop_merge_is_associative(
        tagged in prop::collection::vec((0usize..3, (0usize..3, 0u64..4, 1u64..1_000_000)), 1..80),
    ) {
        let [a, b, c] = child_deltas(&tagged);

        // (A ∪ B) materialized first, then C.
        let left_inner = Registry::new();
        left_inner.merge(&a);
        left_inner.merge(&b);
        let left = Registry::new();
        left.merge(&left_inner.snapshot());
        left.merge(&c);

        // A, then (B ∪ C) materialized.
        let right_inner = Registry::new();
        right_inner.merge(&b);
        right_inner.merge(&c);
        let right = Registry::new();
        right.merge(&a);
        right.merge(&right_inner.snapshot());

        prop_assert_eq!(left.snapshot(), right.snapshot());
        prop_assert_eq!(left.render_text(), right.render_text());
    }

    /// A sharded deployment and a single registry that saw every event
    /// agree exactly (counters and histograms; gauges agree because the
    /// synthetic stream only raises them).
    #[test]
    fn prop_sharded_merge_matches_unsharded(
        tagged in prop::collection::vec((0usize..3, (0usize..3, 0u64..4, 1u64..1_000_000)), 1..80),
    ) {
        let single = Registry::new();
        let events: Vec<_> = tagged.iter().map(|&(_, e)| e).collect();
        apply(&single, &events);

        let [a, b, c] = child_deltas(&tagged);
        let parent = Registry::new();
        parent.merge(&a);
        parent.merge(&b);
        parent.merge(&c);

        prop_assert_eq!(parent.render_text(), single.render_text());
    }
}

//! The four VM configurations of the §4.2 performance study and the
//! performance model that converts memory behavior into key-metric
//! slowdowns.

use crate::catalog::{KeyMetric, Workload};
use coach_node::memory::VmMemoryConfig;
use coach_types::bucket_up;
use serde::{Deserialize, Serialize};

/// The §4.2 VM configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmSetup {
    /// Fully guaranteed (all PA): the baseline.
    Gpvm,
    /// Coach's PA/VA split from the P95 working-set prediction.
    Cvm,
    /// Coach's split with the guaranteed portion under-allocated by 1 GB.
    CvmFloor,
    /// Fully oversubscribed (all VA).
    Ovm,
}

impl VmSetup {
    /// All setups in the paper's plotting order.
    pub const ALL: [VmSetup; 4] = [VmSetup::Gpvm, VmSetup::Cvm, VmSetup::CvmFloor, VmSetup::Ovm];

    /// The memory shape this setup gives a workload's VM.
    ///
    /// Coach's PA sizing follows §3.3: the P95 of observed utilization
    /// (steady working set + oscillation ≈ P95 of the samples), rounded up
    /// to a 5 % bucket of the VM size.
    pub fn memory_config(self, w: &Workload) -> VmMemoryConfig {
        let size = w.vm_size_gb;
        match self {
            VmSetup::Gpvm => VmMemoryConfig::fully_guaranteed(size),
            VmSetup::Ovm => VmMemoryConfig::fully_oversubscribed(size),
            VmSetup::Cvm => {
                let p95 = (w.working_set_gb + w.oscillation_gb) / size;
                VmMemoryConfig::split(size, (bucket_up(p95) * size).min(size))
            }
            VmSetup::CvmFloor => {
                let cvm = VmSetup::Cvm.memory_config(w);
                VmMemoryConfig::split(size, (cvm.pa_gb - 1.0).max(0.0))
            }
        }
    }
}

impl std::fmt::Display for VmSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VmSetup::Gpvm => "GPVM",
            VmSetup::Cvm => "CVM",
            VmSetup::CvmFloor => "CVM-Floor",
            VmSetup::Ovm => "OVM",
        })
    }
}

/// Per-workload performance-model coefficients.
///
/// Two penalty channels map memory behavior onto the key metric (both
/// saturating, exponent ¼ — small spills already hurt tail latency, but the
/// effect grows sublinearly):
///
/// * **spill**: the fraction of the working set living in the VA portion.
///   Latency-critical workloads access that memory on their request path
///   (§4.2's explanation of KV-Store/Cache degradation).
/// * **alloc**: on-demand allocation churn landing in the VA portion — the
///   "limited memory reuse and frequent turnover stress the lower TLB reach
///   and on-demand allocation" effect that makes LLM-FT the most sensitive
///   batch workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Amplitude of the spill penalty.
    pub spill_amp: f64,
    /// Amplitude of the allocation-churn penalty.
    pub alloc_amp: f64,
    /// Amplification of backing-store paging slowdown into the metric.
    pub disk_amp: f64,
}

impl PerfModel {
    /// Calibrated coefficients per Table 2 workload (see `DESIGN.md` —
    /// targets are the §4.2 numbers: CVM ≤ 10 %, KV-Store OVM ≈ 2.35×,
    /// CVM-Floor ≈ 1.8× for KV-Store, LLM-FT CVM ≈ 1.24×).
    pub fn for_workload(w: &Workload) -> PerfModel {
        let (spill_amp, alloc_amp) = match w.name {
            "Cache" => (1.10, 0.10),
            "Database" => (0.30, 0.05),
            "Big Data" => (0.20, 0.10),
            "Web" => (0.40, 0.05),
            "KV-Store" => (1.45, 0.10),
            "Graph" => (0.15, 0.05),
            "Microservice" => (0.80, 0.10),
            "LLM-FT" => (0.30, 0.50),
            "Video Conf" => (0.30, 0.10),
            _ => (0.50, 0.10),
        };
        let disk_amp = match w.metric {
            KeyMetric::TailLatencyMs => 10.0,
            _ => 3.0,
        };
        PerfModel {
            spill_amp,
            alloc_amp,
            disk_amp,
        }
    }

    /// Memory slowdown factor for one observation.
    ///
    /// * `spill_frac` — fraction of the working set resident in VA;
    /// * `va_share` — VA fraction of the VM's address space (drives where
    ///   churned allocations land);
    /// * `paging_slowdown` — the raw slowdown reported by the memory
    ///   substrate (≥ 1.0; > 1.0 only when the pool is short and accesses
    ///   hit the backing store).
    pub fn slowdown(&self, spill_frac: f64, va_share: f64, paging_slowdown: f64) -> f64 {
        let spill = if spill_frac > 1e-9 {
            self.spill_amp * spill_frac.clamp(0.0, 1.0).powf(0.25)
        } else {
            0.0
        };
        let alloc = if va_share > 1e-9 {
            self.alloc_amp * va_share.clamp(0.0, 1.0).powf(0.25)
        } else {
            0.0
        };
        1.0 + spill + alloc + self.disk_amp * (paging_slowdown.max(1.0) - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_configs_partition_vm_size() {
        for w in Workload::catalog() {
            for setup in VmSetup::ALL {
                let c = setup.memory_config(&w);
                assert!(
                    (c.pa_gb + c.va_gb - c.size_gb).abs() < 1e-9,
                    "{} {setup}",
                    w.name
                );
                assert!(c.pa_gb >= 0.0 && c.va_gb >= 0.0);
            }
        }
    }

    #[test]
    fn cvm_pa_covers_p95_working_set() {
        for w in Workload::catalog() {
            let c = VmSetup::Cvm.memory_config(&w);
            assert!(
                c.pa_gb + 1e-9 >= w.working_set_gb + w.oscillation_gb,
                "{}: pa {} < p95 wss {}",
                w.name,
                c.pa_gb,
                w.working_set_gb + w.oscillation_gb
            );
        }
    }

    #[test]
    fn floor_is_one_gb_under_cvm() {
        let w = Workload::by_name("KV-Store").unwrap();
        let cvm = VmSetup::Cvm.memory_config(&w);
        let floor = VmSetup::CvmFloor.memory_config(&w);
        assert!((cvm.pa_gb - floor.pa_gb - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gpvm_and_ovm_extremes() {
        let w = Workload::by_name("Cache").unwrap();
        assert_eq!(VmSetup::Gpvm.memory_config(&w).va_gb, 0.0);
        assert_eq!(VmSetup::Ovm.memory_config(&w).pa_gb, 0.0);
    }

    #[test]
    fn slowdown_is_monotone_in_all_channels() {
        let m = PerfModel::for_workload(&Workload::by_name("KV-Store").unwrap());
        assert_eq!(m.slowdown(0.0, 0.0, 1.0), 1.0);
        assert!(m.slowdown(0.1, 0.0, 1.0) < m.slowdown(0.5, 0.0, 1.0));
        assert!(m.slowdown(0.0, 0.1, 1.0) < m.slowdown(0.0, 0.9, 1.0));
        assert!(m.slowdown(0.0, 0.0, 1.2) > m.slowdown(0.0, 0.0, 1.0));
    }

    #[test]
    fn small_spills_already_hurt_tail_latency() {
        // The ^0.25 saturation: a 1% spill produces a sizeable fraction of
        // the full-spill penalty (the §4.2 CVM-Floor effect).
        let m = PerfModel::for_workload(&Workload::by_name("KV-Store").unwrap());
        let small = m.slowdown(0.01, 0.0, 1.0) - 1.0;
        let full = m.slowdown(1.0, 0.0, 1.0) - 1.0;
        assert!(small > 0.25 * full, "small {small} vs full {full}");
    }

    #[test]
    fn disk_amplification_larger_for_latency_metrics() {
        let kv = PerfModel::for_workload(&Workload::by_name("KV-Store").unwrap());
        let graph = PerfModel::for_workload(&Workload::by_name("Graph").unwrap());
        assert!(kv.disk_amp > graph.disk_amp);
    }
}

//! The nine Table 2 cloud-workload models and the single-server
//! experiments of the Coach paper (§4.2/§4.4).
//!
//! The paper runs real applications (memcached, SQL Server, TeraSort,
//! SpecJBB, a KV-store, PageRank, DeathStarBench, BERT fine-tuning, video
//! conferencing) on a production server. This crate substitutes calibrated
//! synthetic models: each [`Workload`] is a deterministic working-set
//! driver plus a key-metric performance model ([`PerfModel`]) that converts
//! memory-substrate behavior (spill into the VA portion, allocation churn,
//! backing-store paging) into the metric the paper reports.
//!
//! The [`experiment`] module reproduces Fig 15 (PA/VA-ratio sweep), Fig 18
//! (workload performance under GPVM/CVM/CVM-Floor/OVM), and Fig 21
//! (mitigation-policy comparison).
//!
//! # Example
//!
//! ```
//! use coach_workloads::{Workload, VmSetup};
//!
//! let kv = Workload::by_name("KV-Store").unwrap();
//! let cvm = VmSetup::Cvm.memory_config(&kv);
//! // Coach's guaranteed portion covers the P95 working set.
//! assert!(cvm.pa_gb >= kv.working_set_gb);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod experiment;
pub mod vmsetup;

pub use catalog::{KeyMetric, Workload};
pub use experiment::{
    mitigation_experiment, pa_va_sweep, workload_performance, MitigationRun, PaVaCell,
    WorkloadResult,
};
pub use vmsetup::{PerfModel, VmSetup};

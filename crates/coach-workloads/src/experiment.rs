//! The single-server experiments of §3.2 and §4.2/§4.4: the PA/VA-ratio
//! sweep (Fig 15), the per-workload VM-configuration study (Fig 18), and
//! the mitigation-policy comparison (Fig 21).

use crate::catalog::Workload;
use crate::vmsetup::{PerfModel, VmSetup};
use coach_node::agent::OversubscriptionAgent;
use coach_node::memory::{MemoryParams, MemoryServer, VmMemoryConfig};
use coach_node::mitigation::MitigationPolicy;
use coach_node::monitor::MonitorConfig;
use coach_types::VmId;

/// One cell of the Fig 15 heatmaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaVaCell {
    /// PA-backed allocation, GB.
    pub pa_gb: f64,
    /// VA-backed allocation, GB.
    pub va_gb: f64,
    /// Whether the configuration is valid (PA+VA = VM size and > 0).
    pub valid: bool,
    /// Performance slowdown vs the fully-PA VM (Fig 15a).
    pub slowdown: f64,
    /// Total physical memory allocated: PA + 70 % of VA (Fig 15b).
    pub total_allocation_gb: f64,
}

/// Fig 15: sweep the PA/VA split of a `vm_gb` VM running a memory-sensitive
/// workload with an `wss_gb` working set; VA is backed by 70 % physical
/// memory. Returns one cell per (PA, VA) grid point at `step_gb`
/// granularity.
pub fn pa_va_sweep(vm_gb: f64, wss_gb: f64, step_gb: f64) -> Vec<PaVaCell> {
    assert!(step_gb > 0.0 && vm_gb > 0.0 && wss_gb <= vm_gb);
    const VA_BACKING: f64 = 0.70;
    // A generic memory-sensitive application (the paper's Fig 15 subject).
    let model = PerfModel {
        spill_amp: 0.30,
        alloc_amp: 0.05,
        disk_amp: 10.0,
    };
    let params = MemoryParams::default();

    let mut cells = Vec::new();
    let steps = (vm_gb / step_gb) as usize;
    for i in 0..=steps {
        for j in 0..=steps {
            let pa = i as f64 * step_gb;
            let va = j as f64 * step_gb;
            // White region (§3.2): "configurations with more memory than
            // the 32GB VM size or with no memory".
            let valid = (pa + va) > 0.0 && pa + va <= vm_gb + 1e-9;
            if !valid {
                cells.push(PaVaCell {
                    pa_gb: pa,
                    va_gb: va,
                    valid: false,
                    slowdown: f64::NAN,
                    total_allocation_gb: f64::NAN,
                });
                continue;
            }

            // Spill for this split. In the Fig 15a performance experiment
            // the VA portion is fully backed; the red region is where the
            // VM simply cannot hold its working set (pa + va < wss), so it
            // pages against the backing store continuously.
            let spill_gb = (wss_gb - pa).max(0.0).min(va);
            let impossible_gb = (wss_gb - pa - va).max(0.0);
            let fault_fraction = (impossible_gb / wss_gb).clamp(0.0, 1.0);
            let paging = 1.0
                + fault_fraction * 0.01 * (params.fault_latency_ns / params.dram_latency_ns - 1.0);
            let spill_frac = spill_gb / wss_gb;
            let va_share = va / vm_gb;
            let slowdown = model.slowdown(spill_frac, va_share, paging);

            cells.push(PaVaCell {
                pa_gb: pa,
                va_gb: va,
                valid: true,
                slowdown,
                total_allocation_gb: pa + VA_BACKING * va,
            });
        }
    }
    cells
}

/// One Fig 18 measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Workload name.
    pub workload: &'static str,
    /// VM configuration.
    pub setup: VmSetup,
    /// Key-metric value.
    pub metric_value: f64,
    /// Slowdown normalized to the GPVM baseline (Fig 18's y-axis).
    pub normalized_slowdown: f64,
}

/// Fig 18: run every Table 2 workload under every VM configuration on an
/// isolated eval server and report normalized key-metric slowdowns.
///
/// Each (workload, setup) runs `duration_secs` of simulated time; the
/// steady-state window (t > 60 s) is averaged.
pub fn workload_performance(duration_secs: usize) -> Vec<WorkloadResult> {
    let mut out = Vec::new();
    for w in Workload::catalog() {
        for setup in VmSetup::ALL {
            // The PerfModel emits the *metric-level* slowdown directly (its
            // amplitudes are calibrated per workload), so apply it to the
            // baseline without the generic sensitivity amplification.
            let slowdown = run_isolated(&w, setup, duration_secs);
            let metric_value = match w.metric {
                crate::catalog::KeyMetric::ThroughputOps => w.baseline / slowdown,
                _ => w.baseline * slowdown,
            };
            out.push(WorkloadResult {
                workload: w.name,
                setup,
                metric_value,
                normalized_slowdown: w.normalized_slowdown(metric_value),
            });
        }
    }
    out
}

/// Simulate one workload alone on the §4.1 eval server (512 GB, 4 GB host
/// reserve); returns the steady-state average memory slowdown.
fn run_isolated(w: &Workload, setup: VmSetup, duration_secs: usize) -> f64 {
    let config = setup.memory_config(w);
    let mut server = MemoryServer::new(512.0, 4.0, MemoryParams::default());
    // In isolation the pool fully backs the VA portion (the 70 % backing is
    // the Fig 15 knob, not the §4.2 setup).
    server
        .set_pool_backing(config.va_gb)
        .expect("512 GB server fits one VM");
    server.add_vm(VmId::new(1), config).expect("fresh server");

    let model = PerfModel::for_workload(w);
    let va_share = config.va_gb / config.size_gb;
    let mut acc = 0.0;
    let mut n = 0usize;
    for t in 0..duration_secs {
        let wss = w.wss_at(t as f64);
        server.set_working_set(VmId::new(1), wss);
        let stats = server.step(1.0);
        if t <= 60 {
            continue; // warm-up excluded, as in the paper's measurements
        }
        let st = server.vm(VmId::new(1)).expect("vm present");
        let spill_frac = if wss > 0.0 {
            st.va_demand_gb() / wss
        } else {
            0.0
        };
        acc += model.slowdown(spill_frac, va_share, stats[0].slowdown);
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        acc / n as f64
    }
}

/// Time series of one Fig 21 run.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationRun {
    /// Policy label (paper legend).
    pub policy: String,
    /// Available oversubscribed memory per second (Fig 21a).
    pub pool_free_gb: Vec<f64>,
    /// Cache VM normalized slowdown per second (Fig 21b).
    pub cache_slowdown: Vec<f64>,
    /// KV-Store VM normalized slowdown per second (Fig 21c).
    pub kv_slowdown: Vec<f64>,
    /// Seconds at which the two contentions start.
    pub contention_starts: (f64, f64),
}

impl MitigationRun {
    /// Worst slowdown seen by either latency VM.
    pub fn worst_slowdown(&self) -> f64 {
        self.cache_slowdown
            .iter()
            .chain(&self.kv_slowdown)
            .fold(1.0, |a, &b| a.max(b))
    }

    /// Mean pool headroom after the second contention (recovery signal).
    pub fn recovered_headroom(&self) -> f64 {
        let start = self.contention_starts.1 as usize + 40;
        if start >= self.pool_free_gb.len() {
            return 0.0;
        }
        let tail = &self.pool_free_gb[start..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Fig 21: Cache + KV-Store colocated with a Video Conf VM that twice
/// outgrows its prediction, under one mitigation policy.
///
/// Setup per §4.4: three 8 GB CoachVMs — Cache and KV-Store with 3 GB PA
/// (4 GB working sets), Video Conf with 1 GB PA and a 5 GB working set that
/// grows at t = 135 s and again at t = 255 s; the oversubscribed pool starts
/// at 6 GB.
pub fn mitigation_experiment(policy: MitigationPolicy, duration_secs: usize) -> MitigationRun {
    let cache = VmId::new(1);
    let kv = VmId::new(2);
    let video = VmId::new(3);

    let mut server = MemoryServer::new(32.0, 2.0, MemoryParams::default());
    server.set_pool_backing(6.0).expect("fits");
    server
        .add_vm(cache, VmMemoryConfig::split(8.0, 3.0))
        .expect("fresh");
    server
        .add_vm(kv, VmMemoryConfig::split(8.0, 3.0))
        .expect("fresh");
    server
        .add_vm(video, VmMemoryConfig::split(8.0, 1.0))
        .expect("fresh");

    // Contention detection via faults; the pool legitimately runs at zero
    // headroom in this scenario (6 GB backs 17 GB of VA).
    let monitor = MonitorConfig {
        pool_headroom_threshold: 0.0,
        ..MonitorConfig::default()
    };
    let mut agent = OversubscriptionAgent::new(monitor, policy, 0.25);
    for id in [cache, kv, video] {
        agent.add_vm(id);
    }

    let cache_w = Workload::by_name("Cache").unwrap();
    let kv_w = Workload::by_name("KV-Store").unwrap();
    let cache_model = PerfModel::for_workload(&cache_w);
    let kv_model = PerfModel::for_workload(&kv_w);

    // Working-set drivers. Cache/KV warm up to 4 GB and settle at 3.5 GB
    // (leaving 0.5 GB of cold resident VA each — the stock trimming uses);
    // Video Conf reaches its predicted 5 GB, then exceeds the prediction
    // twice: 6 GB at 135 s and 7.5 GB at 255 s.
    let wss_latency = |t: f64| -> f64 {
        if t < 20.0 {
            4.0 * t / 20.0
        } else if t < 40.0 {
            4.0
        } else {
            3.5
        }
    };
    let wss_video = |t: f64| -> f64 {
        if t < 30.0 {
            5.0 * t / 30.0
        } else if t < 135.0 {
            5.0
        } else if t < 255.0 {
            6.0
        } else {
            7.5
        }
    };

    let mut run = MitigationRun {
        policy: policy.label(),
        pool_free_gb: Vec::with_capacity(duration_secs),
        cache_slowdown: Vec::with_capacity(duration_secs),
        kv_slowdown: Vec::with_capacity(duration_secs),
        contention_starts: (135.0, 255.0),
    };

    for t in 0..duration_secs {
        let tf = t as f64;
        server.set_working_set(cache, wss_latency(tf));
        server.set_working_set(kv, wss_latency(tf));
        // The video VM may have been migrated away.
        if server.vm(video).is_some() {
            server.set_working_set(video, wss_video(tf));
        }
        let stats = server.step(1.0);
        agent.step(tf, &mut server, &stats, 0.0, 0.0);

        run.pool_free_gb.push(server.pool_free_gb());
        for (vm, model, series) in [
            (cache, &cache_model, &mut run.cache_slowdown),
            (kv, &kv_model, &mut run.kv_slowdown),
        ] {
            let paging = stats
                .iter()
                .find(|s| s.vm == vm)
                .map_or(1.0, |s| s.slowdown);
            let st = server.vm(vm).expect("latency VMs never migrate");
            let wss = st.working_set_gb.max(1e-9);
            let spill = st.va_demand_gb() / wss;
            series.push(model.slowdown(spill, st.config.va_gb / 8.0, paging));
        }
    }

    // Fig 21b/c normalize to the VM's own uncontended performance: divide
    // by the pre-contention (t ∈ [100, 130)) mean.
    for series in [&mut run.cache_slowdown, &mut run.kv_slowdown] {
        let window = &series[100.min(series.len().saturating_sub(1))..130.min(series.len())];
        let base = if window.is_empty() {
            1.0
        } else {
            window.iter().sum::<f64>() / window.len() as f64
        };
        if base > 0.0 {
            for v in series.iter_mut() {
                *v /= base;
            }
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_shape() {
        let cells = pa_va_sweep(32.0, 18.0, 4.0);
        let get = |pa: f64, va: f64| {
            cells
                .iter()
                .find(|c| c.pa_gb == pa && c.va_gb == va)
                .copied()
                .unwrap()
        };
        // Fully-PA VM: no slowdown, full allocation.
        let base = get(32.0, 0.0);
        assert!(base.valid);
        assert!((base.slowdown - 1.0).abs() < 1e-9);
        assert_eq!(base.total_allocation_gb, 32.0);
        // 16 PA + 16 VA: minor slowdown (backed 11.2 ≥ spill 2), saves 4.8.
        let mid = get(16.0, 16.0);
        assert!(mid.valid);
        assert!(mid.slowdown < 1.5, "mid slowdown {}", mid.slowdown);
        assert!((mid.total_allocation_gb - (16.0 + 0.7 * 16.0)).abs() < 1e-9);
        // Red region: PA + VA below the working set — continuous paging.
        let red = get(0.0, 12.0);
        assert!(red.slowdown > 2.0, "red slowdown {}", red.slowdown);
        // A fully-VA VM that can hold the working set is slower but not red.
        let all_va = get(0.0, 32.0);
        assert!(
            all_va.slowdown > 1.1 && all_va.slowdown < 2.0,
            "all-va {}",
            all_va.slowdown
        );
        // Off-diagonal (pa+va > size) invalid.
        assert!(!get(32.0, 32.0).valid);
        // Slowdown grows as PA shrinks along the diagonal.
        assert!(get(8.0, 24.0).slowdown >= get(20.0, 12.0).slowdown - 1e-9);
    }

    #[test]
    fn fig18_shapes() {
        let results = workload_performance(240);
        assert_eq!(results.len(), 9 * 4);
        let get = |name: &str, setup: VmSetup| {
            results
                .iter()
                .find(|r| r.workload == name && r.setup == setup)
                .unwrap()
                .normalized_slowdown
        };

        // GPVM is the 1.0 baseline everywhere.
        for w in Workload::catalog() {
            let g = get(w.name, VmSetup::Gpvm);
            assert!((g - 1.0).abs() < 0.02, "{}: gpvm {g}", w.name);
        }

        // CVM: modest degradation; worst case ≤ ~25% (LLM-FT), latency
        // workloads ≤ ~12%.
        for w in Workload::catalog() {
            let c = get(w.name, VmSetup::Cvm);
            assert!(c < 1.30, "{}: cvm {c}", w.name);
        }
        assert!(get("KV-Store", VmSetup::Cvm) < 1.15);
        // LLM-FT is the most sensitive batch workload under CVM (§4.2).
        assert!(
            get("LLM-FT", VmSetup::Cvm) > 1.1,
            "llm {}",
            get("LLM-FT", VmSetup::Cvm)
        );

        // OVM: the latency-critical workloads degrade the most, roughly
        // 2-3x for KV-Store (paper: 2.35x worst case).
        let kv_ovm = get("KV-Store", VmSetup::Ovm);
        assert!(kv_ovm > 1.8 && kv_ovm < 3.5, "kv ovm {kv_ovm}");
        for w in Workload::catalog() {
            assert!(
                kv_ovm >= get(w.name, VmSetup::Ovm) - 1.0,
                "{} vs kv",
                w.name
            );
        }

        // CVM-Floor: between CVM and OVM; KV-Store ~1.8x (paper), Cache
        // also sensitive; batch workloads barely affected.
        let kv_floor = get("KV-Store", VmSetup::CvmFloor);
        assert!(kv_floor > 1.3 && kv_floor < 2.2, "kv floor {kv_floor}");
        let cache_floor = get("Cache", VmSetup::CvmFloor);
        assert!(
            cache_floor > 1.05 && cache_floor <= kv_floor + 0.1,
            "cache floor {cache_floor}"
        );
        assert!(get("Graph", VmSetup::CvmFloor) < 1.15);
        // Ordering for the sensitive workloads: CVM <= Floor <= OVM.
        for name in ["KV-Store", "Cache", "Microservice"] {
            assert!(get(name, VmSetup::Cvm) <= get(name, VmSetup::CvmFloor) + 0.05);
            assert!(get(name, VmSetup::CvmFloor) <= get(name, VmSetup::Ovm) + 0.05);
        }
    }

    /// Mean latency-VM slowdown over a time window.
    fn window_slowdown(run: &MitigationRun, from: usize, to: usize) -> f64 {
        let n = (to - from) * 2;
        let sum: f64 = run.cache_slowdown[from..to]
            .iter()
            .chain(&run.kv_slowdown[from..to])
            .sum();
        sum / n as f64
    }

    #[test]
    fn fig21_policies_ordering() {
        let none = mitigation_experiment(MitigationPolicy::none(), 340);
        let trim = mitigation_experiment(MitigationPolicy::trim_only(false), 340);
        let extend = mitigation_experiment(MitigationPolicy::extend(false), 340);
        let extend_pro = mitigation_experiment(MitigationPolicy::extend(true), 340);
        let migrate = mitigation_experiment(MitigationPolicy::migrate(false), 340);

        // Quiet before the first contention: no fault-driven slowdown.
        for run in [&none, &trim, &extend] {
            let pre = window_slowdown(run, 100, 130);
            assert!(pre < 1.25, "{}: pre-contention slowdown {pre}", run.policy);
        }

        // None: the host pager thrashes the latency VMs during contention
        // ("frequently pages out memory that is paged in later").
        let none_c2 = window_slowdown(&none, 260, 340);
        assert!(none_c2 > 1.3, "none 2nd-contention slowdown {none_c2}");

        // Trim resolves the FIRST contention (enough cold memory)...
        let trim_c1_late = window_slowdown(&trim, 170, 250);
        assert!(
            trim_c1_late < 1.25,
            "trim after 1st contention {trim_c1_late}"
        );
        // ...but not the second (insufficient cold memory).
        let trim_c2 = window_slowdown(&trim, 300, 340);
        let extend_c2 = window_slowdown(&extend, 300, 340);
        assert!(
            extend_c2 < trim_c2 + 1e-9,
            "extend {extend_c2} should beat trim {trim_c2}"
        );
        // Extend fully recovers the second contention.
        assert!(extend_c2 < 1.25, "extend end-state slowdown {extend_c2}");

        // Migrate also recovers (by evicting the Video Conf VM), though it
        // takes longer than extend.
        let migrate_c2_end = window_slowdown(&migrate, 320, 340);
        assert!(migrate_c2_end < 1.3, "migrate end-state {migrate_c2_end}");

        // Mitigation beats no mitigation overall.
        assert!(extend.worst_slowdown() <= none.worst_slowdown() + 1e-9);
        // Proactive acts earlier, so it's no worse than reactive.
        assert!(
            window_slowdown(&extend_pro, 260, 340) <= window_slowdown(&extend, 260, 340) + 0.05
        );
    }
}

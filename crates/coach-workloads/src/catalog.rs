//! The nine cloud workloads of Table 2, as parameterized memory/metric
//! models.
//!
//! The paper runs unmodified applications (memcached, SQL, TeraSort,
//! SpecJBB, a KV-store, PageRank, DeathStarBench, BERT fine-tuning, video
//! conferencing). We model each as (a) a deterministic working-set driver
//! `wss(t)` and (b) a key-metric sensitivity that converts memory-access
//! slowdown into the metric the paper reports (P99 tail latency, run time,
//! or throughput). The parameters encode the qualitative facts §4.2
//! establishes: the latency-critical workloads touch oversubscribed memory
//! on their critical path; LLM-FT has the largest working set and high
//! allocation churn; the rest are tolerant.

use serde::{Deserialize, Serialize};

/// The metric a workload reports (Table 2's "Key metric").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyMetric {
    /// P99 tail latency, milliseconds — lower is better.
    TailLatencyMs,
    /// Run time, minutes — lower is better.
    RunTimeMins,
    /// Throughput, operations/s — higher is better.
    ThroughputOps,
}

impl std::fmt::Display for KeyMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KeyMetric::TailLatencyMs => "P99 latency (ms)",
            KeyMetric::RunTimeMins => "run time (min)",
            KeyMetric::ThroughputOps => "throughput (ops/s)",
        })
    }
}

/// A workload model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Short name as in Table 2.
    pub name: &'static str,
    /// What it is.
    pub description: &'static str,
    /// VM size it runs on, GB.
    pub vm_size_gb: f64,
    /// Steady-state working set, GB.
    pub working_set_gb: f64,
    /// Warm-up peak: many workloads touch more memory while loading than
    /// they keep hot (this is what creates trimmable cold pages).
    pub warmup_peak_gb: f64,
    /// Amplitude of steady-state working-set oscillation, GB.
    pub oscillation_gb: f64,
    /// Oscillation period, seconds.
    pub period_secs: f64,
    /// Allocation churn: GB/s of fresh allocations replacing old ones
    /// (LLM-FT allocates/frees every training iteration).
    pub churn_gb_per_sec: f64,
    /// Key metric kind.
    pub metric: KeyMetric,
    /// Baseline metric value on a fully PA-backed VM (§4.2 numbers).
    pub baseline: f64,
    /// How strongly memory slowdown amplifies into the key metric
    /// (tail latency is far more sensitive than run time).
    pub sensitivity: f64,
}

impl Workload {
    /// Deterministic working set at time `t` seconds after VM start.
    ///
    /// Shape: a 30-second warm-up ramp to `warmup_peak_gb`, decay to the
    /// steady working set by t = 60 s, then a slow sinusoidal oscillation.
    /// Churn does not change the set's *size* — it changes which pages are
    /// hot, which the performance model charges separately.
    pub fn wss_at(&self, t: f64) -> f64 {
        let wss = if t < 30.0 {
            self.warmup_peak_gb * (t / 30.0)
        } else if t < 60.0 {
            let k = (t - 30.0) / 30.0;
            self.warmup_peak_gb * (1.0 - k) + self.working_set_gb * k
        } else {
            self.working_set_gb
                + self.oscillation_gb * (std::f64::consts::TAU * t / self.period_secs).sin()
        };
        wss.clamp(0.0, self.vm_size_gb)
    }

    /// Convert an average memory slowdown factor (≥1) plus a churn fault
    /// penalty into the key metric value.
    ///
    /// * latency metrics scale up with sensitivity-amplified slowdown;
    /// * run time scales likewise (but sensitivities are small);
    /// * throughput scales down.
    pub fn metric_under_slowdown(&self, mem_slowdown: f64) -> f64 {
        let s = 1.0 + self.sensitivity * (mem_slowdown.max(1.0) - 1.0);
        match self.metric {
            KeyMetric::TailLatencyMs | KeyMetric::RunTimeMins => self.baseline * s,
            KeyMetric::ThroughputOps => self.baseline / s,
        }
    }

    /// Normalized slowdown of a measured metric vs the baseline (≥ 1 means
    /// worse), direction-adjusted per metric kind (Fig 18's y-axis).
    pub fn normalized_slowdown(&self, measured: f64) -> f64 {
        match self.metric {
            KeyMetric::TailLatencyMs | KeyMetric::RunTimeMins => measured / self.baseline,
            KeyMetric::ThroughputOps => self.baseline / measured,
        }
    }

    /// The full Table 2 catalog.
    pub fn catalog() -> Vec<Workload> {
        vec![
            Workload {
                name: "Cache",
                description: "Memcached read/writes",
                vm_size_gb: 32.0,
                working_set_gb: 12.0,
                warmup_peak_gb: 16.0,
                oscillation_gb: 1.8,
                period_secs: 120.0,
                churn_gb_per_sec: 0.02,
                metric: KeyMetric::TailLatencyMs,
                baseline: 6.32,
                sensitivity: 14.0,
            },
            Workload {
                name: "Database",
                description: "Queries on a SQL database",
                vm_size_gb: 32.0,
                working_set_gb: 20.0,
                warmup_peak_gb: 22.0,
                oscillation_gb: 1.5,
                period_secs: 180.0,
                churn_gb_per_sec: 0.01,
                metric: KeyMetric::TailLatencyMs,
                baseline: 40.0,
                sensitivity: 5.0,
            },
            Workload {
                name: "Big Data",
                description: "Sorting with TeraSort",
                vm_size_gb: 32.0,
                working_set_gb: 24.0,
                warmup_peak_gb: 24.0,
                oscillation_gb: 3.0,
                period_secs: 90.0,
                churn_gb_per_sec: 0.05,
                metric: KeyMetric::RunTimeMins,
                baseline: 12.0,
                sensitivity: 1.2,
            },
            Workload {
                name: "Web",
                description: "3-tier web application (SpecJBB)",
                vm_size_gb: 32.0,
                working_set_gb: 14.0,
                warmup_peak_gb: 17.0,
                oscillation_gb: 2.0,
                period_secs: 150.0,
                churn_gb_per_sec: 0.02,
                metric: KeyMetric::ThroughputOps,
                baseline: 25_000.0,
                sensitivity: 2.0,
            },
            Workload {
                name: "KV-Store",
                description: "Querying a KV-store",
                vm_size_gb: 32.0,
                working_set_gb: 10.0,
                warmup_peak_gb: 13.0,
                oscillation_gb: 0.8,
                period_secs: 100.0,
                churn_gb_per_sec: 0.02,
                metric: KeyMetric::TailLatencyMs,
                baseline: 0.41,
                sensitivity: 16.0,
            },
            Workload {
                name: "Graph",
                description: "Computing PageRank",
                vm_size_gb: 32.0,
                working_set_gb: 22.0,
                warmup_peak_gb: 22.0,
                oscillation_gb: 1.0,
                period_secs: 200.0,
                churn_gb_per_sec: 0.01,
                metric: KeyMetric::RunTimeMins,
                baseline: 9.0,
                sensitivity: 1.0,
            },
            Workload {
                name: "Microservice",
                description: "Social network (DeathStarBench)",
                vm_size_gb: 32.0,
                working_set_gb: 11.0,
                warmup_peak_gb: 14.0,
                oscillation_gb: 1.2,
                period_secs: 80.0,
                churn_gb_per_sec: 0.03,
                metric: KeyMetric::TailLatencyMs,
                baseline: 2.71,
                sensitivity: 15.0,
            },
            Workload {
                name: "LLM-FT",
                description: "BERT LLM fine-tuning",
                vm_size_gb: 32.0,
                working_set_gb: 26.0,
                warmup_peak_gb: 26.0,
                oscillation_gb: 3.0,
                period_secs: 40.0,
                churn_gb_per_sec: 0.5, // allocates/frees every iteration
                metric: KeyMetric::RunTimeMins,
                baseline: 3.7,
                sensitivity: 3.0,
            },
            Workload {
                name: "Video Conf",
                description: "Video conference application",
                vm_size_gb: 32.0,
                working_set_gb: 8.0,
                warmup_peak_gb: 9.0,
                oscillation_gb: 1.0,
                period_secs: 60.0,
                churn_gb_per_sec: 0.05,
                metric: KeyMetric::ThroughputOps,
                baseline: 900.0,
                sensitivity: 1.5,
            },
        ]
    }

    /// Look up a workload by name.
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::catalog().into_iter().find(|w| w.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_nine_workloads() {
        let c = Workload::catalog();
        assert_eq!(c.len(), 9);
        let names: std::collections::HashSet<_> = c.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 9, "names must be unique");
        // Table 2's metric assignment.
        assert_eq!(
            Workload::by_name("Cache").unwrap().metric,
            KeyMetric::TailLatencyMs
        );
        assert_eq!(
            Workload::by_name("Big Data").unwrap().metric,
            KeyMetric::RunTimeMins
        );
        assert_eq!(
            Workload::by_name("Web").unwrap().metric,
            KeyMetric::ThroughputOps
        );
        assert!(Workload::by_name("nope").is_none());
    }

    #[test]
    fn wss_respects_vm_size_and_warmup() {
        for w in Workload::catalog() {
            assert!(w.working_set_gb <= w.vm_size_gb);
            for t in 0..400 {
                let wss = w.wss_at(t as f64);
                assert!((0.0..=w.vm_size_gb).contains(&wss), "{}: wss {wss}", w.name);
            }
            // Warm-up reaches the peak at t=30.
            assert!((w.wss_at(30.0) - w.warmup_peak_gb.min(w.vm_size_gb)).abs() < 1e-9);
            // Steady state around the working set.
            let steady = w.wss_at(1000.0);
            assert!((steady - w.working_set_gb).abs() <= w.oscillation_gb + 1e-9);
        }
    }

    #[test]
    fn llm_ft_has_largest_working_set_and_churn() {
        // §4.2: "LLM-FT is the most sensitive [batch workload] because it
        // has the largest working set and frequently allocates/deallocates".
        let c = Workload::catalog();
        let llm = c.iter().find(|w| w.name == "LLM-FT").unwrap();
        for w in &c {
            assert!(llm.working_set_gb >= w.working_set_gb, "{}", w.name);
            assert!(llm.churn_gb_per_sec >= w.churn_gb_per_sec, "{}", w.name);
        }
    }

    #[test]
    fn latency_workloads_most_sensitive() {
        let c = Workload::catalog();
        let max_latency_sens = c
            .iter()
            .filter(|w| w.metric == KeyMetric::TailLatencyMs)
            .map(|w| w.sensitivity)
            .fold(0.0, f64::max);
        let max_batch_sens = c
            .iter()
            .filter(|w| w.metric != KeyMetric::TailLatencyMs)
            .map(|w| w.sensitivity)
            .fold(0.0, f64::max);
        assert!(max_latency_sens > max_batch_sens);
    }

    #[test]
    fn metric_conversion_directions() {
        let kv = Workload::by_name("KV-Store").unwrap();
        assert_eq!(kv.metric_under_slowdown(1.0), kv.baseline);
        assert!(kv.metric_under_slowdown(1.1) > kv.baseline);
        assert!(kv.normalized_slowdown(kv.baseline * 2.0) == 2.0);

        let web = Workload::by_name("Web").unwrap();
        assert!(web.metric_under_slowdown(1.1) < web.baseline);
        // Normalized slowdown of halved throughput is 2×.
        assert_eq!(web.normalized_slowdown(web.baseline / 2.0), 2.0);
    }
}

//! Per-server scheduling state: the W+1-dimensional feasibility vectors and
//! the Formula 3/4 memory-pool accounting.
//!
//! The hot path (`can_fit` → `place`/`remove`) is allocation-free: demands
//! whose window count differs from the server's are broadcast by iteration,
//! never by materializing a normalized vector, and the Formula 3/4 pools are
//! maintained incrementally so queries never re-walk the hosted VMs.

use crate::demand::VmDemand;
use coach_types::prelude::*;
use std::collections::HashMap;

/// One server's packing state under time-window scheduling (§3.3).
///
/// Feasibility is the combined vector check the paper describes: for each
/// resource, `Σ window_max[w] ≤ capacity` in every window *and*
/// `Σ guaranteed ≤ capacity` — "the scheduler considers the number of
/// windows plus one for each resource".
#[derive(Debug, Clone, PartialEq)]
pub struct ServerState {
    id: ServerId,
    capacity: ResourceVec,
    windows: usize,
    guaranteed_sum: ResourceVec,
    window_sum: Vec<ResourceVec>,
    /// Elementwise min over windows of `capacity - window_sum[w]`: the
    /// tightest per-resource window slack. A demand whose per-window peak
    /// fits in this is feasible in every window without scanning them.
    min_window_slack: ResourceVec,
    /// Elementwise max over windows of `capacity - window_sum[w]`: the
    /// loosest window slack. A demand whose per-window trough exceeds this
    /// on any resource overflows every window — fast reject.
    max_window_slack: ResourceVec,
    /// Per-window Σ over hosted VMs of VA (oversubscribed) memory GB —
    /// Formula 4's inner sums, maintained incrementally on place/remove.
    va_mem_sum: Vec<f64>,
    /// Σ over hosted VMs of their peak VA memory (the non-multiplexed
    /// ablation), maintained incrementally.
    va_peak_mem_sum: f64,
    vms: HashMap<VmId, VmDemand>,
}

impl ServerState {
    /// Create an empty server with `windows` time windows per day.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero or capacity is invalid.
    pub fn new(id: ServerId, capacity: ResourceVec, windows: usize) -> Self {
        assert!(windows > 0, "need at least one window");
        assert!(
            capacity.is_valid() && !capacity.is_zero(),
            "invalid capacity"
        );
        ServerState {
            id,
            capacity,
            windows,
            guaranteed_sum: ResourceVec::ZERO,
            window_sum: vec![ResourceVec::ZERO; windows],
            min_window_slack: capacity,
            max_window_slack: capacity,
            va_mem_sum: vec![0.0; windows],
            va_peak_mem_sum: 0.0,
            vms: HashMap::new(),
        }
    }

    /// Server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Hardware capacity.
    pub fn capacity(&self) -> ResourceVec {
        self.capacity
    }

    /// Number of hosted VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Hosted VM ids.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        self.vms.keys().copied()
    }

    /// The demand record of a hosted VM.
    pub fn demand(&self, vm: VmId) -> Option<&VmDemand> {
        self.vms.get(&vm)
    }

    /// Validate the demand's window count against the server's, panicking on
    /// a real mismatch. Returns `true` when the demand must be broadcast
    /// (it has exactly one window, the server more).
    #[inline]
    fn check_windows(&self, d: &VmDemand) -> bool {
        let n = d.window_count();
        if n == self.windows {
            false
        } else if n == 1 {
            true
        } else {
            panic!("demand has {} windows but server packs {}", n, self.windows);
        }
    }

    /// The combined feasibility check (§3.3).
    ///
    /// # Panics
    ///
    /// Panics if the demand's window count is neither 1 nor the server's.
    pub fn can_fit(&self, d: &VmDemand) -> bool {
        self.check_windows(d);
        if !(self.guaranteed_sum + d.guaranteed).fits_within(&self.capacity) {
            return false;
        }
        self.windows_fit_exact(d)
    }

    /// The same check with the demand's precomputed per-window elementwise
    /// peak and trough (see [`VmDemand::window_peak`] /
    /// [`VmDemand::window_trough`]) used against the cached slack summaries
    /// to accept or reject most candidates in O(resources) instead of
    /// O(windows × resources). Exactly equivalent to [`ServerState::can_fit`].
    ///
    /// # Panics
    ///
    /// Panics if the demand's window count is neither 1 nor the server's.
    pub fn can_fit_with_bounds(
        &self,
        d: &VmDemand,
        peak: &ResourceVec,
        trough: &ResourceVec,
    ) -> bool {
        self.check_windows(d);
        if !(self.guaranteed_sum + d.guaranteed).fits_within(&self.capacity) {
            return false;
        }
        // Quick accept: the worst window demand fits the tightest slack.
        if peak.fits_within(&self.min_window_slack) {
            return true;
        }
        // Quick reject: the mildest window demand overflows the loosest
        // slack on some resource, so every window overflows there.
        if !trough.fits_within(&self.max_window_slack) {
            return false;
        }
        self.windows_fit_exact(d)
    }

    /// Exact per-window feasibility scan (no allocation).
    #[inline]
    fn windows_fit_exact(&self, d: &VmDemand) -> bool {
        if d.window_count() == self.windows {
            d.window_max
                .iter()
                .zip(&self.window_sum)
                .all(|(w, sum)| (*sum + *w).fits_within(&self.capacity))
        } else {
            let w = d.window_max[0];
            self.window_sum
                .iter()
                .all(|sum| (*sum + w).fits_within(&self.capacity))
        }
    }

    /// Recompute the cached min/max window-slack summaries from `window_sum`.
    fn refresh_slack(&mut self) {
        let mut min = self.capacity - self.window_sum[0];
        let mut max = min;
        for sum in &self.window_sum[1..] {
            let slack = self.capacity - *sum;
            min = min.min(&slack);
            max = max.max(&slack);
        }
        self.min_window_slack = min;
        self.max_window_slack = max;
    }

    /// Place a VM.
    ///
    /// # Errors
    ///
    /// Returns the demand back if it does not fit or the VM is already
    /// hosted. The `Err` variant is the full (now inline-buffered, hence
    /// large) demand by design: boxing it would reintroduce the
    /// per-placement heap allocation the inline `WindowVec` removed from
    /// this hot path, and rejection is the rare branch.
    #[allow(clippy::result_large_err)]
    pub fn place(&mut self, d: VmDemand) -> Result<(), VmDemand> {
        if self.vms.contains_key(&d.vm) || !self.can_fit(&d) {
            return Err(d);
        }
        self.guaranteed_sum += d.guaranteed;
        let guar_mem = d.guaranteed.memory();
        let mut va_peak = 0.0f64;
        let broadcast = d.window_count() != self.windows;
        for (w, sum) in self.window_sum.iter_mut().enumerate() {
            let wd = if broadcast {
                &d.window_max[0]
            } else {
                &d.window_max[w]
            };
            *sum += *wd;
            let va = (wd.memory() - guar_mem).max(0.0);
            self.va_mem_sum[w] += va;
            va_peak = va_peak.max(va);
        }
        self.va_peak_mem_sum += va_peak;
        self.refresh_slack();
        self.vms.insert(d.vm, d);
        Ok(())
    }

    /// Remove a VM, returning its demand record.
    pub fn remove(&mut self, vm: VmId) -> Option<VmDemand> {
        let d = self.vms.remove(&vm)?;
        self.guaranteed_sum -= d.guaranteed;
        let guar_mem = d.guaranteed.memory();
        let mut va_peak = 0.0f64;
        let broadcast = d.window_count() != self.windows;
        for (w, sum) in self.window_sum.iter_mut().enumerate() {
            let wd = if broadcast {
                &d.window_max[0]
            } else {
                &d.window_max[w]
            };
            *sum -= *wd;
            // Clamp floating-point dust.
            *sum = sum.max(&ResourceVec::ZERO);
            let va = (wd.memory() - guar_mem).max(0.0);
            self.va_mem_sum[w] = (self.va_mem_sum[w] - va).max(0.0);
            va_peak = va_peak.max(va);
        }
        self.guaranteed_sum = self.guaranteed_sum.max(&ResourceVec::ZERO);
        self.va_peak_mem_sum = (self.va_peak_mem_sum - va_peak).max(0.0);
        self.refresh_slack();
        Some(d)
    }

    /// Formula (3): total guaranteed memory, GB.
    pub fn guaranteed_memory(&self) -> f64 {
        self.guaranteed_sum.memory()
    }

    /// Formula (4): the multiplexed oversubscribed memory pool —
    /// `max over windows of Σ VA_demand(vm, w)`, GB. O(windows): the
    /// per-window sums are maintained incrementally.
    pub fn oversub_pool_memory(&self) -> f64 {
        self.va_mem_sum.iter().copied().fold(0.0, f64::max)
    }

    /// The non-multiplexed alternative: `Σ over VMs of max_w VA_demand` —
    /// what you'd reserve without exploiting complementary patterns (the
    /// Formula 4 ablation; always ≥ [`ServerState::oversub_pool_memory`]).
    pub fn oversub_pool_memory_summed(&self) -> f64 {
        self.va_peak_mem_sum
    }

    /// Total allocated memory under Coach = guaranteed + multiplexed pool.
    pub fn total_memory_allocation(&self) -> f64 {
        self.guaranteed_memory() + self.oversub_pool_memory()
    }

    /// Remaining guaranteed headroom per resource.
    pub fn free_guaranteed(&self) -> ResourceVec {
        self.capacity.saturating_sub(&self.guaranteed_sum)
    }

    /// The cached tightest per-resource window slack (min over windows of
    /// `capacity - window_sum[w]`).
    pub fn min_window_slack(&self) -> ResourceVec {
        self.min_window_slack
    }

    /// The worst (largest) per-window committed fraction of capacity.
    pub fn peak_commitment(&self) -> ResourceVec {
        self.window_sum
            .iter()
            .fold(ResourceVec::ZERO, |acc, v| acc.max(v))
            .fraction_of(&self.capacity)
    }

    /// The server's probe-headroom summary: a borrowed view of exactly the
    /// commitment vectors [`ServerState::can_fit`] evaluates, maintained
    /// incrementally by [`ServerState::place`] / [`ServerState::remove`].
    ///
    /// This is the scan unit of the incremental spare-capacity estimator
    /// (`coach_sim::estimate_probe_capacity`): because the sums here are
    /// the *same floats* `can_fit` adds the candidate demand to, a consumer
    /// that copies them and replays placements arithmetically reproduces
    /// the scheduler's accept/reject decisions bit-for-bit — no probe VM
    /// ever has to be placed into (and unwound from) the real scheduler.
    pub fn probe_summary(&self) -> ProbeSummary<'_> {
        ProbeSummary {
            capacity: self.capacity,
            guaranteed_sum: self.guaranteed_sum,
            window_sums: &self.window_sum,
        }
    }

    /// Serialize the full packing state for snapshot/restore.
    ///
    /// The incrementally maintained floating-point sums are captured *as
    /// they are* — never re-derived from the hosted demands — so a restored
    /// server continues from the scheduler's exact arithmetic state and all
    /// subsequent `can_fit` decisions are bit-identical to the uninterrupted
    /// run. Hosted demands are emitted sorted by [`VmId`] (the map itself is
    /// order-insensitive; sorting makes the encoding canonical).
    pub fn dump(&self) -> ServerStateDump {
        let mut vms: Vec<VmDemand> = self.vms.values().cloned().collect();
        vms.sort_unstable_by_key(|d| d.vm);
        ServerStateDump {
            id: self.id,
            capacity: self.capacity,
            windows: self.windows,
            guaranteed_sum: self.guaranteed_sum,
            window_sum: self.window_sum.clone(),
            va_mem_sum: self.va_mem_sum.clone(),
            va_peak_mem_sum: self.va_peak_mem_sum,
            vms,
        }
    }

    /// Rebuild a server from a [`ServerStateDump`].
    ///
    /// The slack summaries are recomputed with the same pure function the
    /// live path uses (`ServerState::refresh_slack` is deterministic in
    /// `capacity`/`window_sum`), so they match the dumped instance exactly.
    ///
    /// # Panics
    ///
    /// Panics if the dump is structurally inconsistent (zero windows,
    /// mismatched per-window vector lengths, or duplicate VM ids).
    pub fn from_dump(dump: ServerStateDump) -> Self {
        assert!(dump.windows > 0, "dump has zero windows");
        assert_eq!(dump.window_sum.len(), dump.windows, "window_sum length");
        assert_eq!(dump.va_mem_sum.len(), dump.windows, "va_mem_sum length");
        let mut vms = HashMap::with_capacity(dump.vms.len());
        for d in dump.vms {
            let id = d.vm;
            assert!(vms.insert(id, d).is_none(), "duplicate VM {id} in dump");
        }
        let mut server = ServerState {
            id: dump.id,
            capacity: dump.capacity,
            windows: dump.windows,
            guaranteed_sum: dump.guaranteed_sum,
            window_sum: dump.window_sum,
            min_window_slack: dump.capacity,
            max_window_slack: dump.capacity,
            va_mem_sum: dump.va_mem_sum,
            va_peak_mem_sum: dump.va_peak_mem_sum,
            vms,
        };
        server.refresh_slack();
        server
    }
}

/// A [`ServerState`] flattened for snapshot/restore: the incrementally
/// maintained sums verbatim plus the hosted demands sorted by id.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStateDump {
    /// Server id.
    pub id: ServerId,
    /// Hardware capacity.
    pub capacity: ResourceVec,
    /// Time windows per day.
    pub windows: usize,
    /// Σ guaranteed over hosted VMs, exactly as maintained.
    pub guaranteed_sum: ResourceVec,
    /// Per-window commitment sums, exactly as maintained.
    pub window_sum: Vec<ResourceVec>,
    /// Per-window VA memory sums (Formula 4), exactly as maintained.
    pub va_mem_sum: Vec<f64>,
    /// Σ of per-VM peak VA memory (the non-multiplexed ablation).
    pub va_peak_mem_sum: f64,
    /// Hosted demands, sorted ascending by [`VmId`].
    pub vms: Vec<VmDemand>,
}

/// A server's spare-capacity summary as seen by the probe estimator: the
/// incrementally maintained commitment sums that fully determine
/// [`ServerState::can_fit`] and the BestFit headroom key.
///
/// Invariant: after any sequence of `place`/`remove` calls,
/// `guaranteed_sum` and `window_sums` equal what a from-scratch re-sum over
/// the hosted demands would produce *in the order they were applied* — so a
/// scratch copy seeded from this summary starts from the scheduler's exact
/// floating-point state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSummary<'s> {
    /// Hardware capacity (the `can_fit` right-hand side).
    pub capacity: ResourceVec,
    /// Σ over hosted VMs of `guaranteed` (the Formula 3 dimension).
    pub guaranteed_sum: ResourceVec,
    /// Per-window Σ over hosted VMs of `window_max[w]` (broadcast demands
    /// contribute their single window to every slot).
    pub window_sums: &'s [ResourceVec],
}

impl ProbeSummary<'_> {
    /// The BestFit/WorstFit ordering key [`ServerState::free_guaranteed`]
    /// exposes: remaining guaranteed memory headroom, GB.
    pub fn headroom_memory(&self) -> f64 {
        self.capacity.saturating_sub(&self.guaranteed_sum).memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(vm: u64, guar_mem: f64, win_mem: [f64; 3]) -> VmDemand {
        let g = ResourceVec::new(1.0, guar_mem, 0.1, 1.0);
        VmDemand {
            vm: VmId::new(vm),
            requested: ResourceVec::new(4.0, 32.0, 1.0, 64.0),
            guaranteed: g,
            window_max: win_mem
                .iter()
                .map(|&m| ResourceVec::new(1.0, m.max(guar_mem), 0.1, 1.0))
                .collect(),
        }
    }

    fn server() -> ServerState {
        ServerState::new(
            ServerId::new(0),
            ResourceVec::new(48.0, 48.0, 40.0, 4096.0),
            3,
        )
    }

    #[test]
    fn paper_fig16_example() {
        // Two 32 GB CoachVMs in a 48 GB server with 3 windows (Fig 16).
        // CVM1: PA-demand 16, window max {28, 8, 22} -> VA {12, 0, 6}.
        // CVM2: PA-demand 12, window max {10, 18, 24} -> VA {0, 6, 12}.
        let mut s = server();
        let cvm1 = demand(1, 16.0, [28.0, 8.0, 22.0]);
        let cvm2 = demand(2, 12.0, [10.0, 18.0, 24.0]);
        assert!(s.can_fit(&cvm1));
        s.place(cvm1).unwrap();
        assert!(s.can_fit(&cvm2));
        s.place(cvm2).unwrap();

        // Formula 3: guaranteed = 16 + 12 = 28 GB.
        assert_eq!(s.guaranteed_memory(), 28.0);
        // Formula 4: multiplexed VA = max(12+0, 0+6, 6+12) = 18... the
        // paper's figure maps to a 16 GB VA pool after granularity; our raw
        // formula value is max over windows of summed VA.
        assert_eq!(s.oversub_pool_memory(), 18.0);
        // Non-multiplexed: 12 + 12 = 24 GB > 18 GB.
        assert_eq!(s.oversub_pool_memory_summed(), 24.0);
        // Total allocation = 28 + 18 = 46 <= 48 GB for two 32 GB VMs.
        assert!(s.total_memory_allocation() <= 48.0);
    }

    #[test]
    fn feasibility_is_per_window() {
        let mut s = server();
        // Fills window 0 with 40 GB.
        s.place(demand(1, 8.0, [40.0, 8.0, 8.0])).unwrap();
        // Another 40 GB peak in window 0 cannot fit (80 > 48)...
        assert!(!s.can_fit(&demand(2, 8.0, [40.0, 8.0, 8.0])));
        // ...but a complementary VM peaking in window 1 fits.
        assert!(s.can_fit(&demand(3, 8.0, [8.0, 40.0, 8.0])));
    }

    #[test]
    fn guaranteed_dimension_checked() {
        let mut s = server();
        // Three VMs each guaranteeing 20 GB: windows fine, guaranteed not.
        s.place(demand(1, 20.0, [20.0, 20.0, 20.0])).unwrap();
        s.place(demand(2, 20.0, [20.0, 20.0, 20.0])).unwrap();
        let third = demand(3, 20.0, [20.0, 20.0, 20.0]);
        assert!(!s.can_fit(&third), "3 x 20 GB guaranteed > 48 GB");
    }

    #[test]
    fn place_remove_roundtrip() {
        let mut s = server();
        let d = demand(1, 16.0, [28.0, 8.0, 22.0]);
        s.place(d.clone()).unwrap();
        assert_eq!(s.vm_count(), 1);
        let back = s.remove(VmId::new(1)).unwrap();
        assert_eq!(back, d);
        assert_eq!(s.vm_count(), 0);
        assert_eq!(s.guaranteed_memory(), 0.0);
        assert_eq!(s.oversub_pool_memory(), 0.0);
        assert!(s.remove(VmId::new(1)).is_none());
    }

    #[test]
    fn duplicate_placement_rejected() {
        let mut s = server();
        s.place(demand(1, 8.0, [8.0, 8.0, 8.0])).unwrap();
        assert!(s.place(demand(1, 8.0, [8.0, 8.0, 8.0])).is_err());
    }

    #[test]
    fn single_window_demand_broadcasts() {
        let mut s = server();
        let d = VmDemand::unpredicted(VmId::new(9), ResourceVec::new(4.0, 16.0, 1.0, 64.0));
        assert_eq!(d.window_count(), 1);
        s.place(d).unwrap();
        assert_eq!(s.guaranteed_memory(), 16.0);
        // All three windows carry the same load.
        assert_eq!(s.peak_commitment().memory(), 16.0 / 48.0);
    }

    #[test]
    #[should_panic(expected = "windows")]
    fn mismatched_window_count_panics() {
        let s = server();
        let mut d = demand(1, 8.0, [8.0, 8.0, 8.0]);
        // Truncate to 2 windows vs the server's 3.
        d.window_max = d.window_max.iter().take(2).copied().collect();
        let _ = s.can_fit(&d);
    }

    #[test]
    fn multiplexed_pool_never_exceeds_summed() {
        let mut s = server();
        for i in 0..4 {
            let mut win = [4.0, 4.0, 4.0];
            win[(i % 3) as usize] = 10.0;
            let _ = s.place(demand(i, 2.0, win));
        }
        assert!(s.oversub_pool_memory() <= s.oversub_pool_memory_summed() + 1e-9);
    }

    #[test]
    fn can_fit_with_bounds_matches_can_fit() {
        let mut s = server();
        s.place(demand(1, 8.0, [40.0, 8.0, 8.0])).unwrap();
        for (guar, win) in [
            (8.0, [40.0, 8.0, 8.0]),
            (8.0, [8.0, 40.0, 8.0]),
            (20.0, [20.0, 20.0, 20.0]),
            (1.0, [1.0, 1.0, 1.0]),
            (45.0, [45.0, 45.0, 45.0]),
        ] {
            let d = demand(99, guar, win);
            let peak = d.window_peak();
            let trough = d.window_trough();
            assert_eq!(
                s.can_fit(&d),
                s.can_fit_with_bounds(&d, &peak, &trough),
                "bounds check diverged for guar={guar} win={win:?}"
            );
        }
    }

    #[test]
    fn probe_summary_tracks_place_remove() {
        let mut s = server();
        let fresh = s.probe_summary();
        assert_eq!(fresh.guaranteed_sum, ResourceVec::ZERO);
        assert_eq!(fresh.headroom_memory(), 48.0);
        assert_eq!(fresh.window_sums.len(), 3);

        s.place(demand(1, 16.0, [28.0, 8.0, 22.0])).unwrap();
        let loaded = s.probe_summary();
        assert_eq!(loaded.guaranteed_sum, ResourceVec::new(1.0, 16.0, 0.1, 1.0));
        assert_eq!(loaded.window_sums[0].memory(), 28.0);
        assert_eq!(loaded.headroom_memory(), 48.0 - 16.0);
        // The summary is the can_fit left-hand side: adding a candidate to
        // the summed vectors reproduces the feasibility verdict.
        let cand = demand(2, 16.0, [28.0, 8.0, 22.0]);
        let guar_ok = (loaded.guaranteed_sum + cand.guaranteed).fits_within(&loaded.capacity);
        let windows_ok = cand
            .window_max
            .iter()
            .zip(loaded.window_sums)
            .all(|(w, sum)| (*sum + *w).fits_within(&loaded.capacity));
        assert_eq!(guar_ok && windows_ok, s.can_fit(&cand));

        s.remove(VmId::new(1)).unwrap();
        assert_eq!(s.probe_summary().headroom_memory(), 48.0);
    }

    #[test]
    fn slack_summaries_track_window_sums() {
        let mut s = server();
        s.place(demand(1, 8.0, [40.0, 8.0, 8.0])).unwrap();
        // Tightest window is w0: 48 - 40 = 8 GB slack.
        assert_eq!(s.min_window_slack().memory(), 8.0);
        s.remove(VmId::new(1)).unwrap();
        assert_eq!(s.min_window_slack().memory(), 48.0);
    }
}

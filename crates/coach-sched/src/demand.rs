//! VM demand under an oversubscription policy: the quantities the scheduler
//! packs (§3.3, Formulas 1–4).

use coach_predict::DemandPrediction;
use coach_types::prelude::*;
use serde::{Deserialize, Serialize};

/// The oversubscription policies evaluated in §4.3 (Fig 20).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// No oversubscription: allocate the full request for the VM lifetime.
    None,
    /// A single static oversubscription rate per VM (state-of-the-art
    /// baseline, e.g. Resource Central): allocate the predicted lifetime
    /// peak.
    Single,
    /// Coach: time-window-based demand with guaranteed/oversubscribed split
    /// (the paper runs it at P95; `AggrCoach` is the same policy at P50 —
    /// choose via the prediction percentile fed to the model).
    Coach,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Policy::None => "None",
            Policy::Single => "Single",
            Policy::Coach => "Coach",
        })
    }
}

/// A VM's absolute resource demand as seen by the scheduler.
///
/// All vectors are absolute quantities (cores, GB, …), obtained by scaling
/// the VM's request by predicted utilization fractions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmDemand {
    /// The VM.
    pub vm: VmId,
    /// What the customer asked for.
    pub requested: ResourceVec,
    /// Guaranteed portion (Formula 1 × request): always allocated.
    pub guaranteed: ResourceVec,
    /// Predicted maximum demand per time window (PA+VA working set).
    ///
    /// Stored in an inline-capable [`WindowVec`]: for the shipped window
    /// partitions (≤ 6 windows per day) a `VmDemand` owns no heap memory at
    /// all — the ROADMAP's per-VM allocation hot spot at million-VM scale.
    pub window_max: WindowVec,
}

impl VmDemand {
    /// Build the demand for a policy from a prediction.
    ///
    /// * `None` ignores the prediction: guaranteed = requested everywhere.
    /// * `Single` allocates the predicted lifetime peak (max over windows)
    ///   as a static, fully-guaranteed allocation.
    /// * `Coach` applies Formulas 1–2: guaranteed = max over windows of the
    ///   PX prediction; per-window max = predicted window maximum.
    ///
    /// A `None` prediction (no group history) falls back to the full
    /// request — the paper's conservative no-oversubscription default.
    pub fn from_prediction(
        vm: VmId,
        requested: ResourceVec,
        policy: Policy,
        prediction: Option<&DemandPrediction>,
    ) -> VmDemand {
        let Some(p) = prediction else {
            return VmDemand::unpredicted(vm, requested);
        };
        match policy {
            Policy::None => VmDemand::unpredicted(vm, requested),
            Policy::Single => {
                let peak_fraction = p.pmax.iter().fold(ResourceVec::ZERO, |acc, v| acc.max(v));
                let alloc = requested.scale_by(&peak_fraction).min(&requested);
                VmDemand {
                    vm,
                    requested,
                    guaranteed: alloc,
                    window_max: WindowVec::from_elem(alloc, 1),
                }
            }
            Policy::Coach => {
                let pa = requested.scale_by(&p.pa_fraction()).min(&requested);
                let window_max = p
                    .pmax
                    .iter()
                    .map(|f| requested.scale_by(f).min(&requested).max(&pa))
                    .collect();
                VmDemand {
                    vm,
                    requested,
                    guaranteed: pa,
                    window_max,
                }
            }
        }
    }

    /// Demand for a VM without prediction history: fully guaranteed.
    pub fn unpredicted(vm: VmId, requested: ResourceVec) -> VmDemand {
        VmDemand {
            vm,
            requested,
            guaranteed: requested,
            window_max: WindowVec::from_elem(requested, 1),
        }
    }

    /// Number of time windows this demand is expressed over.
    pub fn window_count(&self) -> usize {
        self.window_max.len()
    }

    /// Elementwise maximum over the per-window maxima: the worst single
    /// window this demand presents to any server. Used with
    /// [`crate::ServerState::can_fit_with_bounds`] to accept candidates
    /// without a per-window scan.
    #[inline]
    pub fn window_peak(&self) -> ResourceVec {
        self.window_max
            .iter()
            .fold(ResourceVec::ZERO, |acc, v| acc.max(v))
    }

    /// Elementwise minimum over the per-window maxima: the mildest window.
    /// Used with [`crate::ServerState::can_fit_with_bounds`] to reject
    /// candidates without a per-window scan.
    #[inline]
    pub fn window_trough(&self) -> ResourceVec {
        let mut it = self.window_max.iter();
        let first = *it.next().expect("demand has at least one window");
        it.fold(first, |acc, v| acc.min(v))
    }

    /// Formula (2): the oversubscribed (VA) portion in window `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.window_count()`.
    pub fn va_demand(&self, w: usize) -> ResourceVec {
        self.window_max[w].saturating_sub(&self.guaranteed)
    }

    /// The peak VA demand across windows (what a non-multiplexing allocator
    /// would reserve — the ablation baseline for Formula 4).
    pub fn va_peak(&self) -> ResourceVec {
        (0..self.window_count())
            .map(|w| self.va_demand(w))
            .fold(ResourceVec::ZERO, |acc, v| acc.max(&v))
    }

    /// Resources saved versus a full-request allocation, using the peak
    /// (window-max) footprint.
    pub fn savings(&self) -> ResourceVec {
        self.requested.saturating_sub(&self.window_peak())
    }

    /// Internal consistency: guaranteed ≤ every window max ≤ requested.
    pub fn is_well_formed(&self) -> bool {
        !self.window_max.is_empty()
            && self.guaranteed.is_valid()
            && self.guaranteed.fits_within(&self.requested)
            && self.window_max.iter().all(|w| {
                w.is_valid() && self.guaranteed.fits_within(w) && w.fits_within(&self.requested)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_types::TimeWindows;

    fn prediction() -> DemandPrediction {
        let tw = TimeWindows::new(3);
        DemandPrediction {
            tw,
            // CPU fractions per window: 0.25 / 0.75 / 0.5; memory 0.5/0.5/0.75.
            pmax: [
                ResourceVec::new(0.25, 0.50, 0.1, 0.1),
                ResourceVec::new(0.75, 0.50, 0.1, 0.1),
                ResourceVec::new(0.50, 0.75, 0.1, 0.1),
            ]
            .into(),
            px: [
                ResourceVec::new(0.20, 0.45, 0.1, 0.1),
                ResourceVec::new(0.60, 0.45, 0.1, 0.1),
                ResourceVec::new(0.40, 0.70, 0.1, 0.1),
            ]
            .into(),
        }
    }

    fn request() -> ResourceVec {
        ResourceVec::new(8.0, 32.0, 4.0, 128.0)
    }

    #[test]
    fn none_policy_allocates_request() {
        let d =
            VmDemand::from_prediction(VmId::new(1), request(), Policy::None, Some(&prediction()));
        assert_eq!(d.guaranteed, request());
        assert_eq!(d.window_max, WindowVec::from_elem(request(), 1));
        assert!(d.is_well_formed());
        assert!(d.savings().is_zero());
    }

    #[test]
    fn single_policy_allocates_lifetime_peak() {
        let d =
            VmDemand::from_prediction(VmId::new(1), request(), Policy::Single, Some(&prediction()));
        // Peak fractions: cpu 0.75, mem 0.75.
        assert_eq!(d.guaranteed.cpu(), 6.0);
        assert_eq!(d.guaranteed.memory(), 24.0);
        assert_eq!(d.window_count(), 1);
        assert!(d.is_well_formed());
        // Saves 25% of CPU and memory.
        assert_eq!(d.savings().cpu(), 2.0);
    }

    #[test]
    fn coach_policy_formulas() {
        let d =
            VmDemand::from_prediction(VmId::new(1), request(), Policy::Coach, Some(&prediction()));
        // Formula 1: PA fraction = max(px) = cpu 0.6, mem 0.7.
        assert_eq!(d.guaranteed.cpu(), 4.8);
        assert!((d.guaranteed.memory() - 22.4).abs() < 1e-9);
        assert_eq!(d.window_count(), 3);
        assert!(d.is_well_formed());
        // Formula 2: VA in window 1 (cpu window max 6.0 > PA 4.8).
        assert!((d.va_demand(1).cpu() - 1.2).abs() < 1e-9);
        assert_eq!(d.va_demand(0).cpu(), 0.0);
        // va_peak is the elementwise max.
        assert!((d.va_peak().cpu() - 1.2).abs() < 1e-9);
        assert!((d.va_peak().memory() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn missing_prediction_falls_back_to_request() {
        let d = VmDemand::from_prediction(VmId::new(2), request(), Policy::Coach, None);
        assert_eq!(d.guaranteed, request());
        assert!(d.is_well_formed());
    }

    #[test]
    fn window_max_never_below_guaranteed() {
        // Even if pmax < px in a window (possible with separate forests),
        // from_prediction clamps window_max up to the PA.
        let mut p = prediction();
        p.pmax[0] = ResourceVec::new(0.1, 0.1, 0.0, 0.0);
        let d = VmDemand::from_prediction(VmId::new(3), request(), Policy::Coach, Some(&p));
        assert!(d.is_well_formed());
    }
}

//! The cluster scheduler: vector bin-packing with time-window dimensions.
//!
//! Traditional VM schedulers solve bin-packing with heuristics over a
//! per-resource requirement vector (§3.3, citing Protean). Coach extends the
//! vector with one dimension per time window plus one for the guaranteed
//! portion; the placement heuristic itself (best-fit) is unchanged, which is
//! why the overhead is < 1 ms per VM (§4.5).

use crate::demand::VmDemand;
use crate::server::ServerState;
use coach_types::prelude::*;
use std::collections::HashMap;

/// Placement heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementHeuristic {
    /// Pack into the feasible server with the least remaining memory
    /// headroom (maximizes consolidation — the paper reports Coach reduces
    /// required servers by 44 %).
    #[default]
    BestFit,
    /// First feasible server in id order.
    FirstFit,
    /// Feasible server with the most remaining memory headroom (spreading).
    WorstFit,
}

/// Outcome of a placement attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementOutcome {
    /// Placed on this server.
    Placed(ServerId),
    /// No server can currently host the demand.
    Rejected,
}

/// A cluster of servers being packed by one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterScheduler {
    servers: Vec<ServerState>,
    by_id: HashMap<ServerId, usize>,
    vm_to_server: HashMap<VmId, ServerId>,
    heuristic: PlacementHeuristic,
    rejected: u64,
    placed: u64,
}

impl ClusterScheduler {
    /// Create a scheduler over homogeneous servers.
    ///
    /// # Panics
    ///
    /// Panics if `server_ids` is empty or contains duplicates, or if
    /// `windows` is zero.
    pub fn new(
        server_ids: &[ServerId],
        capacity: ResourceVec,
        windows: usize,
        heuristic: PlacementHeuristic,
    ) -> Self {
        assert!(!server_ids.is_empty(), "need at least one server");
        let servers: Vec<ServerState> = server_ids
            .iter()
            .map(|&id| ServerState::new(id, capacity, windows))
            .collect();
        let by_id: HashMap<ServerId, usize> = server_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        assert_eq!(by_id.len(), servers.len(), "duplicate server ids");
        ClusterScheduler {
            servers,
            by_id,
            vm_to_server: HashMap::new(),
            heuristic,
            rejected: 0,
            placed: 0,
        }
    }

    /// Try to place a VM demand; returns where it landed.
    pub fn place(&mut self, demand: VmDemand) -> PlacementOutcome {
        self.place_excluding(demand, &[])
    }

    /// Place, skipping the servers in `excluded` (used when the runtime
    /// layer refuses a logically-feasible placement and the caller retries
    /// elsewhere).
    pub fn place_excluding(&mut self, demand: VmDemand, excluded: &[ServerId]) -> PlacementOutcome {
        let candidate = self.pick_server(&demand, excluded);
        match candidate {
            Some(idx) => {
                let id = self.servers[idx].id();
                let vm = demand.vm;
                self.servers[idx]
                    .place(demand)
                    .expect("picked server must fit");
                self.vm_to_server.insert(vm, id);
                self.placed += 1;
                PlacementOutcome::Placed(id)
            }
            None => {
                self.rejected += 1;
                PlacementOutcome::Rejected
            }
        }
    }

    fn pick_server(&self, demand: &VmDemand, excluded: &[ServerId]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in self.servers.iter().enumerate() {
            if excluded.contains(&s.id()) || !s.can_fit(demand) {
                continue;
            }
            let headroom = s.free_guaranteed().memory();
            match self.heuristic {
                PlacementHeuristic::FirstFit => return Some(i),
                PlacementHeuristic::BestFit => {
                    if best.is_none_or(|(_, h)| headroom < h) {
                        best = Some((i, headroom));
                    }
                }
                PlacementHeuristic::WorstFit => {
                    if best.is_none_or(|(_, h)| headroom > h) {
                        best = Some((i, headroom));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Deallocate a VM (no-op if unknown).
    pub fn remove(&mut self, vm: VmId) -> Option<VmDemand> {
        let server = self.vm_to_server.remove(&vm)?;
        let idx = self.by_id[&server];
        self.servers[idx].remove(vm)
    }

    /// The server hosting a VM.
    pub fn server_of(&self, vm: VmId) -> Option<ServerId> {
        self.vm_to_server.get(&vm).copied()
    }

    /// All server states.
    pub fn servers(&self) -> &[ServerState] {
        &self.servers
    }

    /// A server state by id.
    pub fn server(&self, id: ServerId) -> Option<&ServerState> {
        self.by_id.get(&id).map(|&i| &self.servers[i])
    }

    /// Number of VMs currently placed.
    pub fn vm_count(&self) -> usize {
        self.vm_to_server.len()
    }

    /// Lifetime counters: (placed, rejected).
    pub fn counters(&self) -> (u64, u64) {
        (self.placed, self.rejected)
    }

    /// Number of servers hosting at least one VM (consolidation metric).
    pub fn servers_in_use(&self) -> usize {
        self.servers.iter().filter(|s| s.vm_count() > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<ServerId> {
        (0..n).map(ServerId::new).collect()
    }

    fn cap() -> ResourceVec {
        ResourceVec::new(16.0, 64.0, 10.0, 1024.0)
    }

    fn full_demand(vm: u64, cores: f64, mem: f64) -> VmDemand {
        VmDemand::unpredicted(VmId::new(vm), ResourceVec::new(cores, mem, 0.5, 16.0))
    }

    #[test]
    fn places_until_capacity_then_rejects() {
        let mut s = ClusterScheduler::new(&ids(2), cap(), 1, PlacementHeuristic::FirstFit);
        // Each server fits 4 x (4c, 16GB).
        for i in 0..8 {
            assert!(matches!(
                s.place(full_demand(i, 4.0, 16.0)),
                PlacementOutcome::Placed(_)
            ));
        }
        assert_eq!(
            s.place(full_demand(99, 4.0, 16.0)),
            PlacementOutcome::Rejected
        );
        assert_eq!(s.counters(), (8, 1));
        assert_eq!(s.vm_count(), 8);
    }

    #[test]
    fn best_fit_consolidates_worst_fit_spreads() {
        let mut best = ClusterScheduler::new(&ids(3), cap(), 1, PlacementHeuristic::BestFit);
        let mut worst = ClusterScheduler::new(&ids(3), cap(), 1, PlacementHeuristic::WorstFit);
        for i in 0..3 {
            best.place(full_demand(i, 2.0, 8.0));
            worst.place(full_demand(i, 2.0, 8.0));
        }
        assert_eq!(best.servers_in_use(), 1, "best-fit should stack");
        assert_eq!(worst.servers_in_use(), 3, "worst-fit should spread");
    }

    #[test]
    fn remove_frees_capacity() {
        let mut s = ClusterScheduler::new(&ids(1), cap(), 1, PlacementHeuristic::BestFit);
        for i in 0..4 {
            s.place(full_demand(i, 4.0, 16.0));
        }
        assert_eq!(
            s.place(full_demand(9, 4.0, 16.0)),
            PlacementOutcome::Rejected
        );
        assert!(s.remove(VmId::new(0)).is_some());
        assert!(matches!(
            s.place(full_demand(9, 4.0, 16.0)),
            PlacementOutcome::Placed(_)
        ));
        assert!(s.remove(VmId::new(12345)).is_none());
    }

    #[test]
    fn server_of_tracks_placement() {
        let mut s = ClusterScheduler::new(&ids(2), cap(), 1, PlacementHeuristic::FirstFit);
        s.place(full_demand(7, 2.0, 8.0));
        let srv = s.server_of(VmId::new(7)).unwrap();
        assert_eq!(s.server(srv).unwrap().vm_count(), 1);
        s.remove(VmId::new(7));
        assert!(s.server_of(VmId::new(7)).is_none());
    }

    #[test]
    fn complementary_windows_pack_tighter() {
        // Two VMs that both peak at 48 GB would not fit a 64 GB server if
        // scheduled on lifetime peaks; with complementary windows they do.
        let mk = |vm: u64, peak_w: usize| {
            let mut window_max = vec![ResourceVec::new(2.0, 12.0, 0.5, 16.0); 2];
            window_max[peak_w] = ResourceVec::new(2.0, 44.0, 0.5, 16.0);
            VmDemand {
                vm: VmId::new(vm),
                requested: ResourceVec::new(4.0, 48.0, 0.5, 16.0),
                guaranteed: ResourceVec::new(2.0, 12.0, 0.5, 16.0),
                window_max,
            }
        };
        let mut s = ClusterScheduler::new(&ids(1), cap(), 2, PlacementHeuristic::BestFit);
        assert!(matches!(s.place(mk(1, 0)), PlacementOutcome::Placed(_)));
        // Peak sum in window 0 would be 88 GB for same-peak VMs: rejected.
        assert_eq!(s.place(mk(2, 0)), PlacementOutcome::Rejected);
        // Complementary peak fits: window sums are {56, 56} <= 64.
        assert!(matches!(s.place(mk(3, 1)), PlacementOutcome::Placed(_)));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        let _ = ClusterScheduler::new(&[], cap(), 1, PlacementHeuristic::BestFit);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random churn of placements and removals must never overcommit any
    /// server on any dimension, and bookkeeping must stay consistent.
    fn arb_demand(windows: usize) -> impl Strategy<Value = (u64, Vec<f64>, f64)> {
        (
            0u64..200,
            prop::collection::vec(0.05f64..1.0, windows),
            0.05f64..1.0,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_never_overcommits(ops in prop::collection::vec(arb_demand(3), 1..80)) {
            let capacity = ResourceVec::new(16.0, 64.0, 10.0, 1024.0);
            let ids: Vec<ServerId> = (0..3).map(ServerId::new).collect();
            let mut sched = ClusterScheduler::new(&ids, capacity, 3, PlacementHeuristic::BestFit);
            let request = ResourceVec::new(8.0, 32.0, 4.0, 256.0);

            for (i, (vm_raw, window_fracs, guar_frac)) in ops.iter().enumerate() {
                if i % 5 == 4 {
                    // Periodically remove an arbitrary placed VM.
                    sched.remove(VmId::new(*vm_raw));
                    continue;
                }
                let vm = VmId::new(1000 + i as u64);
                let guaranteed = request * *guar_frac;
                let window_max: Vec<ResourceVec> = window_fracs
                    .iter()
                    .map(|f| (request * *f).max(&guaranteed))
                    .collect();
                let demand = VmDemand {
                    vm,
                    requested: request,
                    guaranteed,
                    window_max,
                };
                prop_assert!(demand.is_well_formed());
                let _ = sched.place(demand);

                // Invariants after every operation.
                for s in sched.servers() {
                    let commitment = s.peak_commitment();
                    prop_assert!(commitment.max_element() <= 1.0 + 1e-9,
                        "overcommitted: {commitment:?}");
                    prop_assert!(s.free_guaranteed().is_valid());
                }
            }
            let placed_total: usize = sched.servers().iter().map(|s| s.vm_count()).sum();
            prop_assert_eq!(placed_total, sched.vm_count());
        }

        #[test]
        fn prop_place_remove_roundtrip(fracs in prop::collection::vec(0.05f64..1.0, 6)) {
            let capacity = ResourceVec::new(96.0, 384.0, 40.0, 4096.0);
            let ids = [ServerId::new(0)];
            let mut sched = ClusterScheduler::new(&ids, capacity, 6, PlacementHeuristic::BestFit);
            let request = ResourceVec::new(4.0, 16.0, 1.0, 64.0);
            let guaranteed = request * fracs[0].min(0.9);
            let demand = VmDemand {
                vm: VmId::new(1),
                requested: request,
                guaranteed,
                window_max: fracs.iter().map(|f| (request * *f).max(&guaranteed)).collect(),
            };
            let before = sched.server(ServerId::new(0)).unwrap().clone();
            prop_assert!(matches!(sched.place(demand), PlacementOutcome::Placed(_)));
            sched.remove(VmId::new(1));
            let after = sched.server(ServerId::new(0)).unwrap();
            // State returns to (numerically) where it started.
            prop_assert!(after.free_guaranteed().fits_within(&(before.free_guaranteed() + ResourceVec::splat(1e-6))));
            prop_assert_eq!(after.vm_count(), 0);
        }
    }
}

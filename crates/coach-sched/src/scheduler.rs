//! The cluster scheduler: vector bin-packing with time-window dimensions.
//!
//! Traditional VM schedulers solve bin-packing with heuristics over a
//! per-resource requirement vector (§3.3, citing Protean). Coach extends the
//! vector with one dimension per time window plus one for the guaranteed
//! portion; the placement heuristic itself (best-fit) is unchanged, which is
//! why the overhead is < 1 ms per VM (§4.5).
//!
//! To keep that envelope at million-VM scale the scheduler maintains a
//! **headroom index**: servers are bucketed by their free guaranteed memory,
//! so BestFit scans only the lowest-headroom buckets (and WorstFit the
//! highest) instead of the whole cluster. The original exhaustive scan is
//! retained as [`ScanStrategy::NaiveReference`] for differential testing —
//! both strategies are decision-identical by construction and by proptest.

use crate::demand::VmDemand;
use crate::server::ServerState;
use coach_types::prelude::*;
use std::collections::HashMap;

/// Placement heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementHeuristic {
    /// Pack into the feasible server with the least remaining memory
    /// headroom (maximizes consolidation — the paper reports Coach reduces
    /// required servers by 44 %).
    #[default]
    BestFit,
    /// First feasible server in id order.
    FirstFit,
    /// Feasible server with the most remaining memory headroom (spreading).
    WorstFit,
}

/// How the scheduler searches for a feasible server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanStrategy {
    /// Headroom-bucketed candidate index: BestFit/WorstFit stop at the
    /// first bucket containing a feasible server (default).
    #[default]
    Indexed,
    /// The seed's exhaustive linear scan over all servers, kept as the
    /// reference implementation for differential testing and benchmarking.
    NaiveReference,
}

/// Outcome of a placement attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementOutcome {
    /// Placed on this server.
    Placed(ServerId),
    /// No server can currently host the demand.
    Rejected,
}

/// Number of headroom buckets in the candidate index. Headroom lives in
/// `[0, capacity.memory()]`, split uniformly.
const HEADROOM_BUCKETS: usize = 64;

/// Epsilon matching [`ResourceVec::fits_within`]'s feasibility slack; bucket
/// pruning must be at least this permissive to stay decision-identical.
const FIT_EPS: f64 = 1e-9;

/// Servers bucketed by free guaranteed memory. Each bucket holds server
/// indices sorted ascending so tie-breaking matches the naive scan (the
/// first of several equal-headroom candidates wins).
#[derive(Debug, Clone, PartialEq)]
struct HeadroomIndex {
    bucket_width: f64,
    buckets: Vec<Vec<usize>>,
    bucket_of: Vec<usize>,
}

impl HeadroomIndex {
    fn new(full_headroom: f64, n_servers: usize) -> Self {
        let bucket_width = full_headroom / HEADROOM_BUCKETS as f64;
        let mut buckets = vec![Vec::new(); HEADROOM_BUCKETS];
        let top = Self::bucket_index(bucket_width, full_headroom);
        buckets[top] = (0..n_servers).collect();
        HeadroomIndex {
            bucket_width,
            buckets,
            bucket_of: vec![top; n_servers],
        }
    }

    fn bucket_index(bucket_width: f64, headroom: f64) -> usize {
        if bucket_width > 0.0 {
            ((headroom / bucket_width) as usize).min(HEADROOM_BUCKETS - 1)
        } else {
            0
        }
    }

    fn bucket_for(&self, headroom: f64) -> usize {
        Self::bucket_index(self.bucket_width, headroom)
    }

    /// Re-bucket one server after its headroom changed.
    fn update(&mut self, server: usize, headroom: f64) {
        let new = self.bucket_for(headroom);
        let old = self.bucket_of[server];
        if new == old {
            return;
        }
        let old_bucket = &mut self.buckets[old];
        let pos = old_bucket
            .binary_search(&server)
            .expect("server present in its bucket");
        old_bucket.remove(pos);
        let new_bucket = &mut self.buckets[new];
        let pos = new_bucket
            .binary_search(&server)
            .expect_err("server absent from target bucket");
        new_bucket.insert(pos, server);
        self.bucket_of[server] = new;
    }
}

/// A cluster of servers being packed by one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterScheduler {
    servers: Vec<ServerState>,
    by_id: HashMap<ServerId, usize>,
    vm_to_server: HashMap<VmId, ServerId>,
    heuristic: PlacementHeuristic,
    scan: ScanStrategy,
    index: HeadroomIndex,
    in_use: usize,
    rejected: u64,
    placed: u64,
}

impl ClusterScheduler {
    /// Create a scheduler over homogeneous servers with the default
    /// [`ScanStrategy::Indexed`] candidate search.
    ///
    /// # Panics
    ///
    /// Panics if `server_ids` is empty or contains duplicates, or if
    /// `windows` is zero.
    pub fn new(
        server_ids: &[ServerId],
        capacity: ResourceVec,
        windows: usize,
        heuristic: PlacementHeuristic,
    ) -> Self {
        Self::with_strategy(
            server_ids,
            capacity,
            windows,
            heuristic,
            ScanStrategy::default(),
        )
    }

    /// Create a scheduler with an explicit candidate-search strategy.
    ///
    /// # Panics
    ///
    /// Panics if `server_ids` is empty or contains duplicates, or if
    /// `windows` is zero.
    pub fn with_strategy(
        server_ids: &[ServerId],
        capacity: ResourceVec,
        windows: usize,
        heuristic: PlacementHeuristic,
        scan: ScanStrategy,
    ) -> Self {
        assert!(!server_ids.is_empty(), "need at least one server");
        let servers: Vec<ServerState> = server_ids
            .iter()
            .map(|&id| ServerState::new(id, capacity, windows))
            .collect();
        let by_id: HashMap<ServerId, usize> = server_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        assert_eq!(by_id.len(), servers.len(), "duplicate server ids");
        let index = HeadroomIndex::new(capacity.memory(), servers.len());
        ClusterScheduler {
            servers,
            by_id,
            vm_to_server: HashMap::new(),
            heuristic,
            scan,
            index,
            in_use: 0,
            rejected: 0,
            placed: 0,
        }
    }

    /// The candidate-search strategy in use.
    pub fn scan_strategy(&self) -> ScanStrategy {
        self.scan
    }

    /// The placement heuristic in use (the probe estimator replicates its
    /// candidate choice arithmetically).
    pub fn heuristic(&self) -> PlacementHeuristic {
        self.heuristic
    }

    /// Try to place a VM demand; returns where it landed.
    pub fn place(&mut self, demand: VmDemand) -> PlacementOutcome {
        self.place_excluding(demand, &[])
    }

    /// Place, skipping the servers in `excluded` (used when the runtime
    /// layer refuses a logically-feasible placement and the caller retries
    /// elsewhere).
    pub fn place_excluding(&mut self, demand: VmDemand, excluded: &[ServerId]) -> PlacementOutcome {
        let excluded_idx = self.excluded_indices(excluded);
        let candidate = match self.scan {
            ScanStrategy::Indexed => self.pick_server_indexed(&demand, &excluded_idx),
            ScanStrategy::NaiveReference => self.pick_server_naive(&demand, &excluded_idx),
        };
        match candidate {
            Some(idx) => {
                let id = self.servers[idx].id();
                let vm = demand.vm;
                self.servers[idx]
                    .place(demand)
                    .expect("picked server must fit");
                if self.servers[idx].vm_count() == 1 {
                    self.in_use += 1;
                }
                if self.scan == ScanStrategy::Indexed {
                    self.index
                        .update(idx, self.servers[idx].free_guaranteed().memory());
                }
                self.vm_to_server.insert(vm, id);
                self.placed += 1;
                PlacementOutcome::Placed(id)
            }
            None => {
                self.rejected += 1;
                PlacementOutcome::Rejected
            }
        }
    }

    /// Resolve excluded server ids to a sorted index list once, so the scan
    /// pays O(log E) per candidate instead of O(E). Ids not in this cluster
    /// are ignored. Returns an empty vec (no allocation) in the common
    /// nothing-excluded case.
    fn excluded_indices(&self, excluded: &[ServerId]) -> Vec<usize> {
        if excluded.is_empty() {
            return Vec::new();
        }
        let mut idx: Vec<usize> = excluded
            .iter()
            .filter_map(|id| self.by_id.get(id).copied())
            .collect();
        idx.sort_unstable();
        idx
    }

    /// The seed's exhaustive scan: every server, full `can_fit`, running
    /// best. Retained as the differential-testing reference.
    fn pick_server_naive(&self, demand: &VmDemand, excluded: &[usize]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in self.servers.iter().enumerate() {
            if excluded.binary_search(&i).is_ok() || !s.can_fit(demand) {
                continue;
            }
            let headroom = s.free_guaranteed().memory();
            match self.heuristic {
                PlacementHeuristic::FirstFit => return Some(i),
                PlacementHeuristic::BestFit => {
                    if best.is_none_or(|(_, h)| headroom < h) {
                        best = Some((i, headroom));
                    }
                }
                PlacementHeuristic::WorstFit => {
                    if best.is_none_or(|(_, h)| headroom > h) {
                        best = Some((i, headroom));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Indexed scan. Decision-identical to [`Self::pick_server_naive`]:
    ///
    /// * Buckets partition servers by free guaranteed memory, so once a
    ///   bucket yields a feasible candidate, every server in a
    ///   farther-from-optimal bucket has strictly worse headroom and cannot
    ///   win under the strict `<`/`>` comparisons the naive scan uses.
    /// * Equal-headroom ties only occur within one bucket; buckets iterate
    ///   ascending by server index, matching the naive first-wins order.
    /// * BestFit skips buckets that cannot hold `demand.guaranteed`'s memory
    ///   (minus the `fits_within` epsilon), pruning full servers wholesale.
    fn pick_server_indexed(&self, demand: &VmDemand, excluded: &[usize]) -> Option<usize> {
        let peak = demand.window_peak();
        let trough = demand.window_trough();
        let feasible = |i: usize| {
            excluded.binary_search(&i).is_err()
                && self.servers[i].can_fit_with_bounds(demand, &peak, &trough)
        };
        match self.heuristic {
            PlacementHeuristic::FirstFit => {
                // Id order is the contract; the index cannot reorder it, but
                // the bounds-checked can_fit still prunes candidates fast.
                (0..self.servers.len()).find(|&i| feasible(i))
            }
            PlacementHeuristic::BestFit => {
                // Buckets below the demand's guaranteed memory cannot host
                // it (minus the fits_within epsilon): skip them wholesale.
                let need_mem = (demand.guaranteed.memory() - FIT_EPS).max(0.0);
                let start = self.index.bucket_for(need_mem);
                self.best_in_buckets(
                    self.index.buckets[start..].iter(),
                    feasible,
                    |headroom, best| headroom < best,
                )
            }
            PlacementHeuristic::WorstFit => self.best_in_buckets(
                self.index.buckets.iter().rev(),
                feasible,
                |headroom, best| headroom > best,
            ),
        }
    }

    /// Scan buckets in the given order, returning the feasible server with
    /// the winning headroom from the first bucket that has one. `beats`
    /// must be strict (matching the naive scan's `<`/`>`) so the
    /// first-by-index candidate wins ties within a bucket.
    fn best_in_buckets<'a>(
        &self,
        buckets: impl Iterator<Item = &'a Vec<usize>>,
        feasible: impl Fn(usize) -> bool,
        beats: impl Fn(f64, f64) -> bool,
    ) -> Option<usize> {
        for bucket in buckets {
            let mut best: Option<(usize, f64)> = None;
            for &i in bucket {
                if !feasible(i) {
                    continue;
                }
                let headroom = self.servers[i].free_guaranteed().memory();
                if best.is_none_or(|(_, h)| beats(headroom, h)) {
                    best = Some((i, headroom));
                }
            }
            if let Some((i, _)) = best {
                return Some(i);
            }
        }
        None
    }

    /// Deallocate a VM (no-op if unknown).
    pub fn remove(&mut self, vm: VmId) -> Option<VmDemand> {
        let server = self.vm_to_server.remove(&vm)?;
        let idx = self.by_id[&server];
        let demand = self.servers[idx].remove(vm);
        if demand.is_some() {
            if self.servers[idx].vm_count() == 0 {
                self.in_use -= 1;
            }
            if self.scan == ScanStrategy::Indexed {
                self.index
                    .update(idx, self.servers[idx].free_guaranteed().memory());
            }
        }
        demand
    }

    /// The server hosting a VM.
    pub fn server_of(&self, vm: VmId) -> Option<ServerId> {
        self.vm_to_server.get(&vm).copied()
    }

    /// All server states.
    pub fn servers(&self) -> &[ServerState] {
        &self.servers
    }

    /// A server state by id.
    pub fn server(&self, id: ServerId) -> Option<&ServerState> {
        self.by_id.get(&id).map(|&i| &self.servers[i])
    }

    /// Number of VMs currently placed.
    pub fn vm_count(&self) -> usize {
        self.vm_to_server.len()
    }

    /// Lifetime counters: (placed, rejected).
    pub fn counters(&self) -> (u64, u64) {
        (self.placed, self.rejected)
    }

    /// Number of servers hosting at least one VM (consolidation metric).
    /// O(1): maintained incrementally on place/remove.
    pub fn servers_in_use(&self) -> usize {
        self.in_use
    }

    /// Serialize the scheduler for snapshot/restore: per-server dumps (with
    /// their floating-point sums verbatim) plus the lifetime counters.
    ///
    /// Derived structures — the id maps, the headroom index, the in-use
    /// count — are *not* emitted: [`ClusterScheduler::from_dump`] rebuilds
    /// them from the server states, and the rebuild is exact (bucket
    /// membership is a pure function of each server's current headroom, and
    /// within-bucket order is ascending server index in both the live and
    /// rebuilt paths).
    pub fn dump(&self) -> ClusterSchedulerDump {
        ClusterSchedulerDump {
            servers: self.servers.iter().map(ServerState::dump).collect(),
            heuristic: self.heuristic,
            scan: self.scan,
            placed: self.placed,
            rejected: self.rejected,
        }
    }

    /// Rebuild a scheduler from a [`ClusterSchedulerDump`], continuing
    /// bit-identically from the dumped decision state.
    ///
    /// # Panics
    ///
    /// Panics if the dump has no servers, duplicate server ids, or a VM
    /// hosted on two servers.
    pub fn from_dump(dump: ClusterSchedulerDump) -> Self {
        assert!(!dump.servers.is_empty(), "dump has no servers");
        let servers: Vec<ServerState> = dump
            .servers
            .into_iter()
            .map(ServerState::from_dump)
            .collect();
        let mut by_id = HashMap::with_capacity(servers.len());
        let mut vm_to_server = HashMap::new();
        let mut in_use = 0;
        for (i, s) in servers.iter().enumerate() {
            assert!(by_id.insert(s.id(), i).is_none(), "duplicate server ids");
            if s.vm_count() > 0 {
                in_use += 1;
            }
            for vm in s.vm_ids() {
                assert!(
                    vm_to_server.insert(vm, s.id()).is_none(),
                    "VM {vm} hosted on two servers"
                );
            }
        }
        let mut index = HeadroomIndex::new(servers[0].capacity().memory(), servers.len());
        for (i, s) in servers.iter().enumerate() {
            index.update(i, s.free_guaranteed().memory());
        }
        ClusterScheduler {
            servers,
            by_id,
            vm_to_server,
            heuristic: dump.heuristic,
            scan: dump.scan,
            index,
            in_use,
            rejected: dump.rejected,
            placed: dump.placed,
        }
    }
}

/// A [`ClusterScheduler`] flattened for snapshot/restore.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSchedulerDump {
    /// Per-server dumps in scheduler (id) order.
    pub servers: Vec<crate::server::ServerStateDump>,
    /// Placement heuristic.
    pub heuristic: PlacementHeuristic,
    /// Candidate-search strategy.
    pub scan: ScanStrategy,
    /// Lifetime accepted-placement counter.
    pub placed: u64,
    /// Lifetime rejection counter.
    pub rejected: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<ServerId> {
        (0..n).map(ServerId::new).collect()
    }

    fn cap() -> ResourceVec {
        ResourceVec::new(16.0, 64.0, 10.0, 1024.0)
    }

    fn full_demand(vm: u64, cores: f64, mem: f64) -> VmDemand {
        VmDemand::unpredicted(VmId::new(vm), ResourceVec::new(cores, mem, 0.5, 16.0))
    }

    #[test]
    fn places_until_capacity_then_rejects() {
        let mut s = ClusterScheduler::new(&ids(2), cap(), 1, PlacementHeuristic::FirstFit);
        // Each server fits 4 x (4c, 16GB).
        for i in 0..8 {
            assert!(matches!(
                s.place(full_demand(i, 4.0, 16.0)),
                PlacementOutcome::Placed(_)
            ));
        }
        assert_eq!(
            s.place(full_demand(99, 4.0, 16.0)),
            PlacementOutcome::Rejected
        );
        assert_eq!(s.counters(), (8, 1));
        assert_eq!(s.vm_count(), 8);
    }

    #[test]
    fn best_fit_consolidates_worst_fit_spreads() {
        let mut best = ClusterScheduler::new(&ids(3), cap(), 1, PlacementHeuristic::BestFit);
        let mut worst = ClusterScheduler::new(&ids(3), cap(), 1, PlacementHeuristic::WorstFit);
        for i in 0..3 {
            best.place(full_demand(i, 2.0, 8.0));
            worst.place(full_demand(i, 2.0, 8.0));
        }
        assert_eq!(best.servers_in_use(), 1, "best-fit should stack");
        assert_eq!(worst.servers_in_use(), 3, "worst-fit should spread");
    }

    #[test]
    fn remove_frees_capacity() {
        let mut s = ClusterScheduler::new(&ids(1), cap(), 1, PlacementHeuristic::BestFit);
        for i in 0..4 {
            s.place(full_demand(i, 4.0, 16.0));
        }
        assert_eq!(
            s.place(full_demand(9, 4.0, 16.0)),
            PlacementOutcome::Rejected
        );
        assert!(s.remove(VmId::new(0)).is_some());
        assert!(matches!(
            s.place(full_demand(9, 4.0, 16.0)),
            PlacementOutcome::Placed(_)
        ));
        assert!(s.remove(VmId::new(12345)).is_none());
    }

    #[test]
    fn server_of_tracks_placement() {
        let mut s = ClusterScheduler::new(&ids(2), cap(), 1, PlacementHeuristic::FirstFit);
        s.place(full_demand(7, 2.0, 8.0));
        let srv = s.server_of(VmId::new(7)).unwrap();
        assert_eq!(s.server(srv).unwrap().vm_count(), 1);
        s.remove(VmId::new(7));
        assert!(s.server_of(VmId::new(7)).is_none());
    }

    #[test]
    fn complementary_windows_pack_tighter() {
        // Two VMs that both peak at 48 GB would not fit a 64 GB server if
        // scheduled on lifetime peaks; with complementary windows they do.
        let mk = |vm: u64, peak_w: usize| {
            let mut window_max = vec![ResourceVec::new(2.0, 12.0, 0.5, 16.0); 2];
            window_max[peak_w] = ResourceVec::new(2.0, 44.0, 0.5, 16.0);
            VmDemand {
                vm: VmId::new(vm),
                requested: ResourceVec::new(4.0, 48.0, 0.5, 16.0),
                guaranteed: ResourceVec::new(2.0, 12.0, 0.5, 16.0),
                window_max: window_max.into(),
            }
        };
        let mut s = ClusterScheduler::new(&ids(1), cap(), 2, PlacementHeuristic::BestFit);
        assert!(matches!(s.place(mk(1, 0)), PlacementOutcome::Placed(_)));
        // Peak sum in window 0 would be 88 GB for same-peak VMs: rejected.
        assert_eq!(s.place(mk(2, 0)), PlacementOutcome::Rejected);
        // Complementary peak fits: window sums are {56, 56} <= 64.
        assert!(matches!(s.place(mk(3, 1)), PlacementOutcome::Placed(_)));
    }

    #[test]
    fn excluded_servers_are_skipped() {
        let mut s = ClusterScheduler::new(&ids(3), cap(), 1, PlacementHeuristic::FirstFit);
        let excluded: Vec<ServerId> = vec![ServerId::new(0), ServerId::new(1), ServerId::new(999)];
        match s.place_excluding(full_demand(1, 2.0, 8.0), &excluded) {
            PlacementOutcome::Placed(id) => assert_eq!(id, ServerId::new(2)),
            PlacementOutcome::Rejected => panic!("server 2 was free"),
        }
        // Excluding everything rejects even though capacity exists.
        let all: Vec<ServerId> = ids(3);
        assert_eq!(
            s.place_excluding(full_demand(2, 2.0, 8.0), &all),
            PlacementOutcome::Rejected
        );
    }

    #[test]
    fn strategies_report_themselves() {
        let indexed = ClusterScheduler::new(&ids(1), cap(), 1, PlacementHeuristic::BestFit);
        assert_eq!(indexed.scan_strategy(), ScanStrategy::Indexed);
        let naive = ClusterScheduler::with_strategy(
            &ids(1),
            cap(),
            1,
            PlacementHeuristic::BestFit,
            ScanStrategy::NaiveReference,
        );
        assert_eq!(naive.scan_strategy(), ScanStrategy::NaiveReference);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        let _ = ClusterScheduler::new(&[], cap(), 1, PlacementHeuristic::BestFit);
    }

    #[test]
    fn dump_restore_is_exact() {
        let mut s = ClusterScheduler::new(&ids(3), cap(), 1, PlacementHeuristic::BestFit);
        for i in 0..7 {
            s.place(full_demand(i, 2.0 + i as f64 * 0.5, 7.0 + i as f64));
        }
        s.remove(VmId::new(2));
        s.place(full_demand(50, 17.0, 64.0)); // infeasible: bumps the rejected counter
        let restored = ClusterScheduler::from_dump(s.dump());
        // Full structural equality: servers (all float sums), maps, the
        // rebuilt headroom index, and counters.
        assert_eq!(s, restored);
        // And the restored instance keeps making identical decisions.
        let mut a = s;
        let mut b = restored;
        for i in 100..110 {
            assert_eq!(
                a.place(full_demand(i, 2.0, 8.0)),
                b.place(full_demand(i, 2.0, 8.0))
            );
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "hosted on two servers")]
    fn dump_with_conflicting_hosting_rejected() {
        let mut s = ClusterScheduler::new(&ids(2), cap(), 1, PlacementHeuristic::WorstFit);
        s.place(full_demand(1, 2.0, 8.0));
        s.place(full_demand(2, 2.0, 8.0));
        let mut dump = s.dump();
        // Claim VM 1 on both servers.
        let stolen = dump.servers[0].vms[0].clone();
        dump.servers[1].vms.push(stolen);
        let _ = ClusterScheduler::from_dump(dump);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random churn of placements and removals must never overcommit any
    /// server on any dimension, and bookkeeping must stay consistent.
    fn arb_demand(windows: usize) -> impl Strategy<Value = (u64, Vec<f64>, f64)> {
        (
            0u64..200,
            prop::collection::vec(0.05f64..1.0, windows),
            0.05f64..1.0,
        )
    }

    fn demand_from(i: usize, window_fracs: &[f64], guar_frac: f64) -> VmDemand {
        let request = ResourceVec::new(8.0, 32.0, 4.0, 256.0);
        let guaranteed = request * guar_frac;
        let window_max: Vec<ResourceVec> = window_fracs
            .iter()
            .map(|f| (request * *f).max(&guaranteed))
            .collect();
        VmDemand {
            vm: VmId::new(1000 + i as u64),
            requested: request,
            guaranteed,
            window_max: window_max.into(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_never_overcommits(ops in prop::collection::vec(arb_demand(3), 1..80)) {
            let capacity = ResourceVec::new(16.0, 64.0, 10.0, 1024.0);
            let ids: Vec<ServerId> = (0..3).map(ServerId::new).collect();
            let mut sched = ClusterScheduler::new(&ids, capacity, 3, PlacementHeuristic::BestFit);

            for (i, (vm_raw, window_fracs, guar_frac)) in ops.iter().enumerate() {
                if i % 5 == 4 {
                    // Periodically remove an arbitrary placed VM.
                    sched.remove(VmId::new(*vm_raw));
                    continue;
                }
                let demand = demand_from(i, window_fracs, *guar_frac);
                prop_assert!(demand.is_well_formed());
                let _ = sched.place(demand);

                // Invariants after every operation.
                for s in sched.servers() {
                    let commitment = s.peak_commitment();
                    prop_assert!(commitment.max_element() <= 1.0 + 1e-9,
                        "overcommitted: {commitment:?}");
                    prop_assert!(s.free_guaranteed().is_valid());
                }
            }
            let placed_total: usize = sched.servers().iter().map(|s| s.vm_count()).sum();
            prop_assert_eq!(placed_total, sched.vm_count());
            let in_use_scan = sched.servers().iter().filter(|s| s.vm_count() > 0).count();
            prop_assert_eq!(in_use_scan, sched.servers_in_use());
        }

        #[test]
        fn prop_place_remove_roundtrip(fracs in prop::collection::vec(0.05f64..1.0, 6)) {
            let capacity = ResourceVec::new(96.0, 384.0, 40.0, 4096.0);
            let ids = [ServerId::new(0)];
            let mut sched = ClusterScheduler::new(&ids, capacity, 6, PlacementHeuristic::BestFit);
            let request = ResourceVec::new(4.0, 16.0, 1.0, 64.0);
            let guaranteed = request * fracs[0].min(0.9);
            let demand = VmDemand {
                vm: VmId::new(1),
                requested: request,
                guaranteed,
                window_max: fracs.iter().map(|f| (request * *f).max(&guaranteed)).collect(),
            };
            let before = sched.server(ServerId::new(0)).unwrap().clone();
            prop_assert!(matches!(sched.place(demand), PlacementOutcome::Placed(_)));
            sched.remove(VmId::new(1));
            let after = sched.server(ServerId::new(0)).unwrap();
            // State returns to (numerically) where it started.
            prop_assert!(after.free_guaranteed().fits_within(&(before.free_guaranteed() + ResourceVec::splat(1e-6))));
            prop_assert_eq!(after.vm_count(), 0);
        }

        /// The tentpole differential test: under random churn, the indexed
        /// scheduler makes placement-for-placement identical decisions to
        /// the retained naive scan — same accept/reject sequence, same
        /// server ids — for all three heuristics.
        #[test]
        fn prop_indexed_matches_naive(
            ops in prop::collection::vec(arb_demand(3), 1..120),
            heuristic_sel in 0usize..3,
        ) {
            let heuristic = [
                PlacementHeuristic::BestFit,
                PlacementHeuristic::FirstFit,
                PlacementHeuristic::WorstFit,
            ][heuristic_sel];
            let capacity = ResourceVec::new(16.0, 64.0, 10.0, 1024.0);
            let ids: Vec<ServerId> = (0..5).map(ServerId::new).collect();
            let mut indexed = ClusterScheduler::new(&ids, capacity, 3, heuristic);
            let mut naive = ClusterScheduler::with_strategy(
                &ids, capacity, 3, heuristic, ScanStrategy::NaiveReference,
            );

            for (i, (vm_raw, window_fracs, guar_frac)) in ops.iter().enumerate() {
                if i % 4 == 3 {
                    let a = indexed.remove(VmId::new(1000 + (*vm_raw % ops.len() as u64)));
                    let b = naive.remove(VmId::new(1000 + (*vm_raw % ops.len() as u64)));
                    prop_assert_eq!(&a, &b);
                    continue;
                }
                // Periodically exercise the exclusion path too.
                let excluded: Vec<ServerId> = if i % 7 == 6 {
                    vec![ServerId::new(*vm_raw % 5), ServerId::new(4242)]
                } else {
                    Vec::new()
                };
                let demand = demand_from(i, window_fracs, *guar_frac);
                let a = indexed.place_excluding(demand.clone(), &excluded);
                let b = naive.place_excluding(demand, &excluded);
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(indexed.counters(), naive.counters());
            prop_assert_eq!(indexed.vm_count(), naive.vm_count());
            prop_assert_eq!(indexed.servers_in_use(), naive.servers_in_use());
        }
    }
}

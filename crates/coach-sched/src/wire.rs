//! [`coach_wire`] codecs for scheduler state.
//!
//! These impls carry the scheduler half of a `coach-serve` snapshot across
//! the wire: per-server packing state ([`ServerStateDump`]) and whole
//! schedulers ([`ClusterSchedulerDump`]), plus the policy/heuristic enums a
//! serving config names. Dumps hold raw accumulated `f64` sums, and the
//! codecs ship them verbatim (IEEE-754 bits), so a restored scheduler is
//! `assert_eq!`-identical to the one that was snapshotted — including every
//! future placement decision it will make.

use coach_wire::{Decode, Decoder, Encode, Encoder, WireError};

use crate::demand::{Policy, VmDemand};
use crate::scheduler::{ClusterSchedulerDump, PlacementHeuristic, PlacementOutcome, ScanStrategy};
use crate::server::ServerStateDump;

impl Encode for PlacementOutcome {
    fn encode(&self, e: &mut Encoder) {
        match self {
            PlacementOutcome::Placed(server) => {
                e.u8(0);
                server.encode(e);
            }
            PlacementOutcome::Rejected => e.u8(1),
        }
    }
}

impl Decode for PlacementOutcome {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8("PlacementOutcome")? {
            0 => Ok(PlacementOutcome::Placed(Decode::decode(d)?)),
            1 => Ok(PlacementOutcome::Rejected),
            tag => Err(WireError::UnknownTag {
                context: "PlacementOutcome",
                tag: tag as u64,
            }),
        }
    }
}

impl Encode for Policy {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            Policy::None => 0,
            Policy::Single => 1,
            Policy::Coach => 2,
        });
    }
}

impl Decode for Policy {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8("Policy")? {
            0 => Ok(Policy::None),
            1 => Ok(Policy::Single),
            2 => Ok(Policy::Coach),
            tag => Err(WireError::UnknownTag {
                context: "Policy",
                tag: tag as u64,
            }),
        }
    }
}

impl Encode for PlacementHeuristic {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            PlacementHeuristic::BestFit => 0,
            PlacementHeuristic::FirstFit => 1,
            PlacementHeuristic::WorstFit => 2,
        });
    }
}

impl Decode for PlacementHeuristic {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8("PlacementHeuristic")? {
            0 => Ok(PlacementHeuristic::BestFit),
            1 => Ok(PlacementHeuristic::FirstFit),
            2 => Ok(PlacementHeuristic::WorstFit),
            tag => Err(WireError::UnknownTag {
                context: "PlacementHeuristic",
                tag: tag as u64,
            }),
        }
    }
}

impl Encode for ScanStrategy {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            ScanStrategy::Indexed => 0,
            ScanStrategy::NaiveReference => 1,
        });
    }
}

impl Decode for ScanStrategy {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.u8("ScanStrategy")? {
            0 => Ok(ScanStrategy::Indexed),
            1 => Ok(ScanStrategy::NaiveReference),
            tag => Err(WireError::UnknownTag {
                context: "ScanStrategy",
                tag: tag as u64,
            }),
        }
    }
}

impl Encode for VmDemand {
    fn encode(&self, e: &mut Encoder) {
        self.vm.encode(e);
        self.requested.encode(e);
        self.guaranteed.encode(e);
        self.window_max.encode(e);
    }
}

impl Decode for VmDemand {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(VmDemand {
            vm: Decode::decode(d)?,
            requested: Decode::decode(d)?,
            guaranteed: Decode::decode(d)?,
            window_max: Decode::decode(d)?,
        })
    }
}

impl Encode for ServerStateDump {
    fn encode(&self, e: &mut Encoder) {
        self.id.encode(e);
        self.capacity.encode(e);
        e.usize(self.windows);
        self.guaranteed_sum.encode(e);
        self.window_sum.encode(e);
        self.va_mem_sum.encode(e);
        e.f64(self.va_peak_mem_sum);
        self.vms.encode(e);
    }
}

impl Decode for ServerStateDump {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ServerStateDump {
            id: Decode::decode(d)?,
            capacity: Decode::decode(d)?,
            windows: d.usize("ServerStateDump windows")?,
            guaranteed_sum: Decode::decode(d)?,
            window_sum: Decode::decode(d)?,
            va_mem_sum: Decode::decode(d)?,
            va_peak_mem_sum: d.f64("ServerStateDump va_peak_mem_sum")?,
            vms: Decode::decode(d)?,
        })
    }
}

impl Encode for ClusterSchedulerDump {
    fn encode(&self, e: &mut Encoder) {
        self.servers.encode(e);
        self.heuristic.encode(e);
        self.scan.encode(e);
        e.u64(self.placed);
        e.u64(self.rejected);
    }
}

impl Decode for ClusterSchedulerDump {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ClusterSchedulerDump {
            servers: Decode::decode(d)?,
            heuristic: Decode::decode(d)?,
            scan: Decode::decode(d)?,
            placed: d.u64("ClusterSchedulerDump placed")?,
            rejected: d.u64("ClusterSchedulerDump rejected")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterScheduler, PlacementHeuristic, PlacementOutcome};
    use coach_types::{ResourceVec, ServerId, VmId, WindowVec};
    use coach_wire::{open_frame, seal_frame};

    #[test]
    fn scheduler_dump_roundtrips_and_restores_identically() {
        let ids: Vec<ServerId> = (0..4).map(ServerId::new).collect();
        let capacity = ResourceVec::new(16.0, 64.0, 10.0, 1024.0);
        let mut sched = ClusterScheduler::new(&ids, capacity, 3, PlacementHeuristic::BestFit);
        for i in 0..9 {
            let demand = VmDemand {
                vm: VmId::new(i),
                requested: ResourceVec::new(3.0, 11.0, 1.0, 64.0),
                guaranteed: ResourceVec::new(1.5, 5.5, 0.5, 32.0),
                window_max: WindowVec::from_elem(ResourceVec::new(2.0, 8.0, 0.7, 48.0), 3),
            };
            assert!(matches!(sched.place(demand), PlacementOutcome::Placed(_)));
        }

        let frame = seal_frame(&sched.dump());
        let dump: ClusterSchedulerDump = open_frame(&frame).expect("decode scheduler dump");
        let restored = ClusterScheduler::from_dump(dump);
        assert_eq!(restored, sched);
    }
}

//! Coach's cluster scheduling policy: time-window-aware vector bin-packing
//! with guaranteed/oversubscribed demand splitting (§3.3).
//!
//! * [`VmDemand`] — Formulas 1–2: a VM's guaranteed (PA) portion and
//!   per-window maximum demand, derived from a
//!   [`coach_predict::DemandPrediction`] under a [`Policy`].
//! * [`ServerState`] — per-server packing state with the W+1-dimensional
//!   feasibility check and the Formula 3/4 memory-pool accounting
//!   (multiplexed VA pool = max over windows of summed VA demand).
//! * [`ClusterScheduler`] — best-fit placement across servers, backed by a
//!   headroom-bucketed candidate index ([`ScanStrategy::Indexed`]) with the
//!   exhaustive scan retained as a differential-testing reference
//!   ([`ScanStrategy::NaiveReference`]).
//!
//! # Example
//!
//! ```
//! use coach_sched::{ClusterScheduler, PlacementHeuristic, PlacementOutcome, VmDemand};
//! use coach_types::{ResourceVec, ServerId, VmId};
//!
//! let ids = [ServerId::new(0)];
//! let capacity = ResourceVec::new(48.0, 48.0, 40.0, 4096.0);
//! let mut sched = ClusterScheduler::new(&ids, capacity, 1, PlacementHeuristic::BestFit);
//! let demand = VmDemand::unpredicted(VmId::new(1), ResourceVec::new(4.0, 16.0, 1.0, 64.0));
//! assert!(matches!(sched.place(demand), PlacementOutcome::Placed(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demand;
pub mod scheduler;
pub mod server;
pub mod wire;

pub use demand::{Policy, VmDemand};
pub use scheduler::{
    ClusterScheduler, ClusterSchedulerDump, PlacementHeuristic, PlacementOutcome, ScanStrategy,
};
pub use server::{ProbeSummary, ServerState, ServerStateDump};

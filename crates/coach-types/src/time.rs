//! Simulation clock, durations, weekdays, and time-window partitioning.
//!
//! The paper's telemetry is sampled every 5 minutes (§2 methodology); Coach's
//! long-term predictions are made per *time window* (six 4-hour windows per
//! day by default, §3.3). We model time as an integer count of 5-minute
//! ticks from the start of the trace, which is defined to be **Monday 00:00**.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Ticks (5-minute samples) per hour.
pub const TICKS_PER_HOUR: u64 = 12;
/// Ticks per day.
pub const TICKS_PER_DAY: u64 = 24 * TICKS_PER_HOUR;
/// Ticks per week.
pub const TICKS_PER_WEEK: u64 = 7 * TICKS_PER_DAY;
/// Seconds per tick.
pub const SECONDS_PER_TICK: u64 = 300;

/// A point in simulated time, counted in 5-minute ticks since Monday 00:00.
///
/// # Example
///
/// ```
/// use coach_types::{Timestamp, Weekday};
/// let t = Timestamp::from_days(1) + coach_types::SimDuration::from_hours(13);
/// assert_eq!(t.weekday(), Weekday::Tuesday);
/// assert_eq!(t.hour_of_day(), 13);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The trace origin: Monday 00:00.
    pub const ZERO: Timestamp = Timestamp(0);

    /// From raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        Timestamp(ticks)
    }

    /// From whole hours since origin.
    pub const fn from_hours(hours: u64) -> Self {
        Timestamp(hours * TICKS_PER_HOUR)
    }

    /// From whole days since origin.
    pub const fn from_days(days: u64) -> Self {
        Timestamp(days * TICKS_PER_DAY)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Whole days since origin.
    pub const fn day(self) -> u64 {
        self.0 / TICKS_PER_DAY
    }

    /// Hour of day, `0..24`.
    pub const fn hour_of_day(self) -> u64 {
        (self.0 % TICKS_PER_DAY) / TICKS_PER_HOUR
    }

    /// Tick within the current day, `0..TICKS_PER_DAY`.
    pub const fn tick_of_day(self) -> u64 {
        self.0 % TICKS_PER_DAY
    }

    /// Day of week (trace starts on Monday).
    pub const fn weekday(self) -> Weekday {
        Weekday::from_index((self.day() % 7) as usize)
    }

    /// True for Saturday/Sunday.
    pub const fn is_weekend(self) -> bool {
        matches!(self.weekday(), Weekday::Saturday | Weekday::Sunday)
    }

    /// Saturating subtraction in ticks.
    pub fn saturating_sub(self, d: SimDuration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// Duration elapsed since `earlier` (panics in debug if `earlier > self`).
    pub fn since(self, earlier: Timestamp) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "since() requires earlier <= self");
        SimDuration(self.0 - earlier.0)
    }
}

impl Add<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for Timestamp {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let minute = (self.0 % TICKS_PER_HOUR) * 5;
        write!(
            f,
            "{} d{} {:02}:{:02}",
            self.weekday(),
            self.day(),
            self.hour_of_day(),
            minute
        )
    }
}

/// A span of simulated time in 5-minute ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// From whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * TICKS_PER_HOUR)
    }

    /// From whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * TICKS_PER_DAY)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// In fractional hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / TICKS_PER_HOUR as f64
    }

    /// In fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / TICKS_PER_DAY as f64
    }

    /// In seconds.
    pub const fn as_seconds(self) -> u64 {
        self.0 * SECONDS_PER_TICK
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(TICKS_PER_DAY) {
            write!(f, "{}d", self.0 / TICKS_PER_DAY)
        } else if self.0.is_multiple_of(TICKS_PER_HOUR) {
            write!(f, "{}h", self.0 / TICKS_PER_HOUR)
        } else {
            write!(f, "{}m", self.0 * 5)
        }
    }
}

/// Day of the week. The trace origin is Monday (§2: two weeks starting Monday).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All weekdays, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// From index 0 (Monday) .. 6 (Sunday); wraps modulo 7.
    pub const fn from_index(i: usize) -> Weekday {
        match i % 7 {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }

    /// Index 0 (Monday) .. 6 (Sunday).
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
            Weekday::Sunday => "Sun",
        };
        f.write_str(s)
    }
}

/// Partition of each day into equal time windows (§3.3).
///
/// Coach's default is **6 windows of 4 hours**; the characterization sweeps
/// 1×24h … 24×1h (Fig 10/11) and the ideal 5-minute multiplexing.
///
/// # Example
///
/// ```
/// use coach_types::{TimeWindows, Timestamp};
/// let tw = TimeWindows::paper_default();
/// assert_eq!(tw.count(), 6);
/// // 13:00 falls in window 3 (12:00-16:00).
/// assert_eq!(tw.window_of(Timestamp::from_hours(13)), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeWindows {
    windows_per_day: u32,
}

impl TimeWindows {
    /// Construct a partition with `windows_per_day` equal windows.
    ///
    /// # Panics
    ///
    /// Panics if `windows_per_day` is zero or does not divide 24 hours
    /// evenly in ticks (i.e. must divide 288).
    pub fn new(windows_per_day: u32) -> Self {
        assert!(windows_per_day > 0, "need at least one window per day");
        assert!(
            TICKS_PER_DAY.is_multiple_of(windows_per_day as u64),
            "windows per day must divide {} ticks",
            TICKS_PER_DAY
        );
        TimeWindows { windows_per_day }
    }

    /// The paper's production configuration: six 4-hour windows.
    pub fn paper_default() -> Self {
        TimeWindows::new(6)
    }

    /// A single 24-hour window (the "no temporal patterns" baseline).
    pub fn single() -> Self {
        TimeWindows::new(1)
    }

    /// The finest sweep point: every 5-minute tick its own window ("ideal").
    pub fn ideal() -> Self {
        TimeWindows::new(TICKS_PER_DAY as u32)
    }

    /// Number of windows per day.
    pub const fn count(&self) -> usize {
        self.windows_per_day as usize
    }

    /// Window length in ticks.
    pub const fn window_ticks(&self) -> u64 {
        TICKS_PER_DAY / self.windows_per_day as u64
    }

    /// Window length in fractional hours.
    pub fn window_hours(&self) -> f64 {
        24.0 / self.windows_per_day as f64
    }

    /// Which window (0-based, within the day) a timestamp falls into.
    pub const fn window_of(&self, t: Timestamp) -> usize {
        (t.tick_of_day() / self.window_ticks()) as usize
    }

    /// The tick range `[start, end)` of window `w` on day `day`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.count()`.
    pub fn window_range(&self, day: u64, w: usize) -> (Timestamp, Timestamp) {
        assert!(w < self.count(), "window index out of range");
        let start = day * TICKS_PER_DAY + w as u64 * self.window_ticks();
        (
            Timestamp::from_ticks(start),
            Timestamp::from_ticks(start + self.window_ticks()),
        )
    }

    /// Iterate all window indices.
    pub fn indices(&self) -> std::ops::Range<usize> {
        0..self.count()
    }

    /// Human-readable label, e.g. `"6x4hr"`.
    pub fn label(&self) -> String {
        let hours = self.window_hours();
        if hours >= 1.0 {
            format!("{}x{}hr", self.windows_per_day, hours)
        } else {
            format!("{}x{}min", self.windows_per_day, (hours * 60.0) as u32)
        }
    }
}

impl Default for TimeWindows {
    fn default() -> Self {
        TimeWindows::paper_default()
    }
}

impl fmt::Display for TimeWindows {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_fields() {
        let t = Timestamp::from_days(8) + SimDuration::from_hours(14);
        assert_eq!(t.day(), 8);
        assert_eq!(t.hour_of_day(), 14);
        assert_eq!(t.weekday(), Weekday::Tuesday);
        assert!(!t.is_weekend());
        assert!(Timestamp::from_days(5).is_weekend());
        assert!(Timestamp::from_days(6).is_weekend());
    }

    #[test]
    fn duration_conversions() {
        let d = SimDuration::from_days(2);
        assert_eq!(d.as_days(), 2.0);
        assert_eq!(d.as_hours(), 48.0);
        assert_eq!(d.as_seconds(), 2 * 24 * 3600);
        assert_eq!(d.to_string(), "2d");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3h");
        assert_eq!(SimDuration::from_ticks(1).to_string(), "5m");
    }

    #[test]
    fn since_and_saturating() {
        let a = Timestamp::from_hours(10);
        let b = Timestamp::from_hours(4);
        assert_eq!(a.since(b), SimDuration::from_hours(6));
        assert_eq!(
            b.saturating_sub(SimDuration::from_hours(10)),
            Timestamp::ZERO
        );
    }

    #[test]
    fn weekday_roundtrip() {
        for (i, d) in Weekday::ALL.into_iter().enumerate() {
            assert_eq!(Weekday::from_index(i), d);
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn paper_default_windows() {
        let tw = TimeWindows::paper_default();
        assert_eq!(tw.count(), 6);
        assert_eq!(tw.window_hours(), 4.0);
        assert_eq!(tw.label(), "6x4hr");
        assert_eq!(tw.window_of(Timestamp::ZERO), 0);
        assert_eq!(tw.window_of(Timestamp::from_hours(23)), 5);
        // Window boundaries are inclusive at start, exclusive at end.
        assert_eq!(tw.window_of(Timestamp::from_hours(4)), 1);
    }

    #[test]
    fn window_ranges_partition_day() {
        for wpd in [1u32, 2, 3, 4, 6, 8, 12, 24, 288] {
            let tw = TimeWindows::new(wpd);
            let mut covered = 0;
            for w in tw.indices() {
                let (s, e) = tw.window_range(3, w);
                covered += e.ticks() - s.ticks();
                assert_eq!(tw.window_of(s), w);
            }
            assert_eq!(covered, TICKS_PER_DAY);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn invalid_window_count_panics() {
        let _ = TimeWindows::new(5); // 288 / 5 is not integral
    }

    #[test]
    fn ideal_windows() {
        assert_eq!(TimeWindows::ideal().count(), 288);
        assert_eq!(TimeWindows::ideal().window_ticks(), 1);
    }

    #[test]
    fn display_timestamp() {
        let t = Timestamp::from_hours(25) + SimDuration::from_ticks(1);
        assert_eq!(t.to_string(), "Tue d1 01:05");
    }
}

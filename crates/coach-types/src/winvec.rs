//! An inline-capable buffer of per-window [`ResourceVec`]s.
//!
//! Every shipped configuration expresses demands over at most
//! [`WindowVec::INLINE`] time windows (the paper default is 6×4 h), yet the
//! demand pipeline used to carry each VM's per-window vectors in heap
//! `Vec`s — at million-VM scale those small allocations were the dominant
//! footprint cost named in the ROADMAP. [`WindowVec`] stores up to
//! [`WindowVec::INLINE`] windows inline in the value itself and only spills
//! to the heap for exotic partitions (e.g. the 288-window "ideal" sweep).
//!
//! The type dereferences to `[ResourceVec]`, so consumers index, iterate,
//! and slice exactly as they did with `Vec<ResourceVec>`.

use crate::resource::ResourceVec;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// A small-buffer-optimized sequence of per-window [`ResourceVec`]s.
///
/// # Example
///
/// ```
/// use coach_types::{ResourceVec, WindowVec};
///
/// let w: WindowVec = (0..6).map(|i| ResourceVec::splat(i as f64)).collect();
/// assert_eq!(w.len(), 6);
/// assert!(!w.spilled());          // <= 6 windows live inline
/// assert_eq!(w[3], ResourceVec::splat(3.0));
/// ```
#[derive(Clone)]
pub struct WindowVec {
    /// Number of live windows. When `len <= INLINE` the data lives in
    /// `inline[..len]` and `spill` is empty; otherwise all data lives in
    /// `spill` and `inline` is unused.
    len: u32,
    inline: [ResourceVec; WindowVec::INLINE],
    spill: Vec<ResourceVec>,
}

impl WindowVec {
    /// Windows stored inline before spilling to the heap. Covers every
    /// shipped partition (the paper default is 6).
    pub const INLINE: usize = 6;

    /// An empty buffer (no heap allocation).
    pub fn new() -> Self {
        WindowVec {
            len: 0,
            inline: [ResourceVec::ZERO; Self::INLINE],
            spill: Vec::new(),
        }
    }

    /// A buffer of `n` copies of `v` (allocation-free for `n <= INLINE`).
    pub fn from_elem(v: ResourceVec, n: usize) -> Self {
        let mut out = WindowVec::new();
        for _ in 0..n {
            out.push(v);
        }
        out
    }

    /// Append one window's vector, spilling to the heap on overflow.
    pub fn push(&mut self, v: ResourceVec) {
        let n = self.len as usize;
        if n < Self::INLINE {
            self.inline[n] = v;
        } else {
            if n == Self::INLINE {
                self.spill.reserve(Self::INLINE + 1);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(v);
        }
        self.len += 1;
    }

    /// Whether the contents overflowed to a heap allocation.
    pub fn spilled(&self) -> bool {
        (self.len as usize) > Self::INLINE
    }

    /// Heap bytes owned by this buffer (zero unless spilled).
    pub fn heap_bytes(&self) -> usize {
        self.spill.capacity() * std::mem::size_of::<ResourceVec>()
    }
}

impl Default for WindowVec {
    fn default() -> Self {
        WindowVec::new()
    }
}

impl Deref for WindowVec {
    type Target = [ResourceVec];

    fn deref(&self) -> &[ResourceVec] {
        if self.spilled() {
            &self.spill
        } else {
            &self.inline[..self.len as usize]
        }
    }
}

impl DerefMut for WindowVec {
    fn deref_mut(&mut self) -> &mut [ResourceVec] {
        if self.spilled() {
            &mut self.spill
        } else {
            &mut self.inline[..self.len as usize]
        }
    }
}

impl PartialEq for WindowVec {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl fmt::Debug for WindowVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl FromIterator<ResourceVec> for WindowVec {
    fn from_iter<I: IntoIterator<Item = ResourceVec>>(iter: I) -> Self {
        let mut out = WindowVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl From<Vec<ResourceVec>> for WindowVec {
    fn from(v: Vec<ResourceVec>) -> Self {
        v.into_iter().collect()
    }
}

impl<const N: usize> From<[ResourceVec; N]> for WindowVec {
    fn from(v: [ResourceVec; N]) -> Self {
        v.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a WindowVec {
    type Item = &'a ResourceVec;
    type IntoIter = std::slice::Iter<'a, ResourceVec>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_up_to_capacity() {
        let mut w = WindowVec::new();
        assert!(w.is_empty());
        for i in 0..WindowVec::INLINE {
            w.push(ResourceVec::splat(i as f64));
        }
        assert_eq!(w.len(), WindowVec::INLINE);
        assert!(!w.spilled());
        assert_eq!(w.heap_bytes(), 0);
        for (i, v) in w.iter().enumerate() {
            assert_eq!(*v, ResourceVec::splat(i as f64));
        }
    }

    #[test]
    fn spills_beyond_capacity_and_keeps_order() {
        let n = 288; // the TimeWindows::ideal() sweep point
        let w: WindowVec = (0..n).map(|i| ResourceVec::splat(i as f64)).collect();
        assert_eq!(w.len(), n);
        assert!(w.spilled());
        assert!(w.heap_bytes() > 0);
        for i in 0..n {
            assert_eq!(w[i], ResourceVec::splat(i as f64));
        }
    }

    #[test]
    fn equality_ignores_representation() {
        let a: WindowVec = vec![ResourceVec::splat(1.0); 3].into();
        let b: WindowVec = (0..3).map(|_| ResourceVec::splat(1.0)).collect();
        assert_eq!(a, b);
        let c: WindowVec = vec![ResourceVec::splat(1.0); 4].into();
        assert_ne!(a, c);
    }

    #[test]
    fn slice_ops_via_deref() {
        let mut w = WindowVec::from_elem(ResourceVec::splat(2.0), 4);
        assert_eq!(w.iter().count(), 4);
        w[2] = ResourceVec::splat(9.0);
        assert_eq!(w[2].cpu(), 9.0);
        let peak = w.iter().fold(ResourceVec::ZERO, |acc, v| acc.max(v));
        assert_eq!(peak.cpu(), 9.0);
        // `for` loops over &WindowVec work.
        let mut n = 0;
        for _v in &w {
            n += 1;
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn from_array_and_debug() {
        let w: WindowVec = [ResourceVec::splat(1.0), ResourceVec::splat(2.0)].into();
        assert_eq!(w.len(), 2);
        assert!(format!("{w:?}").starts_with('['));
    }

    #[test]
    fn push_across_the_spill_boundary() {
        let mut w = WindowVec::from_elem(ResourceVec::splat(1.0), WindowVec::INLINE);
        w.push(ResourceVec::splat(7.0));
        assert!(w.spilled());
        assert_eq!(w.len(), WindowVec::INLINE + 1);
        assert_eq!(w[WindowVec::INLINE].cpu(), 7.0);
        assert_eq!(w[0].cpu(), 1.0);
    }
}

//! Core domain types shared by every Coach crate.
//!
//! This crate defines the vocabulary of the Coach system ([ASPLOS '25]):
//! resources and resource vectors, identifiers, VM and hardware
//! configurations, the simulation clock and time-window partitioning, and
//! utilization time series with the percentile/bucket helpers used by the
//! prediction and scheduling stacks.
//!
//! Everything here is plain data: no I/O, no randomness, no policy. The
//! heavier crates (`coach-trace`, `coach-predict`, `coach-sched`,
//! `coach-node`, `coach-sim`) build on these types.
//!
//! # Example
//!
//! ```
//! use coach_types::prelude::*;
//!
//! // A general-purpose 4-core / 16 GB VM request.
//! let config = VmConfig::general_purpose(4);
//! assert_eq!(config.memory_gb, 16.0);
//!
//! // Demand expressed as a resource vector must fit in server capacity.
//! let server = HardwareConfig::general_purpose_gen4().capacity;
//! assert!(config.demand().fits_within(&server));
//! ```
//!
//! [ASPLOS '25]: https://doi.org/10.1145/3669940.3707226

// `deny`, not `forbid`: the lock-free ring lane in `runtime` and the raw
// `sched_setaffinity` syscall in `topology` carry narrowly-scoped
// `#[allow(unsafe_code)]` blocks with documented invariants; everything
// else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod config;
pub mod error;
pub mod ids;
pub mod par;
pub mod resource;
pub mod runtime;
pub mod series;
pub mod stats;
pub mod time;
pub mod topology;
pub mod winvec;
pub mod wire;

pub use bucket::{bucket_down, bucket_up, Bucket};
pub use config::{HardwareConfig, Offering, SubscriptionType, VmConfig};
pub use error::TypeError;
pub use ids::{ClusterId, ServerId, SubscriptionId, VmId};
pub use par::{available_threads, par_map, par_map_mut, par_map_threads};
pub use resource::{Fungibility, ResourceKind, ResourceVec, SharingMechanism};
pub use runtime::{
    lane_channel, ring_channel, serve_child_frames, spsc_channel, with_shard_workers,
    with_shard_workers_configured, LaneKind, LaneReceiver, LaneSender, LaneStats, ProcessPool,
    RingReceiver, RingSender, ShardWorkers, SpscReceiver, SpscSender, WorkerBackend, WorkerConfig,
    DEFAULT_RING_CAPACITY,
};
pub use series::{Percentile, ResourceSeries, UtilSeries};
pub use stats::{ResourceWindowStats, UtilizationSource, WindowStats};
pub use time::{SimDuration, TimeWindows, Timestamp, Weekday, TICKS_PER_DAY, TICKS_PER_HOUR};
pub use topology::{pin_current_thread, CpuSlot, CpuTopology, PlacementPolicy};
pub use winvec::WindowVec;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::bucket::{bucket_down, bucket_up, Bucket};
    pub use crate::config::{HardwareConfig, Offering, SubscriptionType, VmConfig};
    pub use crate::error::TypeError;
    pub use crate::ids::{ClusterId, ServerId, SubscriptionId, VmId};
    pub use crate::par::{available_threads, par_map, par_map_mut, par_map_threads};
    pub use crate::resource::{Fungibility, ResourceKind, ResourceVec, SharingMechanism};
    pub use crate::runtime::{
        lane_channel, ring_channel, serve_child_frames, spsc_channel, with_shard_workers,
        with_shard_workers_configured, LaneKind, LaneReceiver, LaneSender, LaneStats, ProcessPool,
        RingReceiver, RingSender, ShardWorkers, SpscReceiver, SpscSender, WorkerBackend,
        WorkerConfig, DEFAULT_RING_CAPACITY,
    };
    pub use crate::series::{Percentile, ResourceSeries, UtilSeries};
    pub use crate::stats::{ResourceWindowStats, UtilizationSource, WindowStats};
    pub use crate::time::{
        SimDuration, TimeWindows, Timestamp, Weekday, TICKS_PER_DAY, TICKS_PER_HOUR,
    };
    pub use crate::topology::{pin_current_thread, CpuSlot, CpuTopology, PlacementPolicy};
    pub use crate::winvec::WindowVec;
}

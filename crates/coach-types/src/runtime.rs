//! A persistent shard-worker runtime: long-lived worker threads owning
//! their per-shard state, fed over SPSC channels.
//!
//! [`par_map_mut`](crate::par_map_mut) forks one thread per item per call —
//! the right shape for a handful of coarse, independent dispatches, but on
//! multi-core hardware the spawn/join cost is paid again at every
//! synchronization point. When the same shards are dispatched thousands of
//! times (the `coach-serve` sharded controller processes one segment per
//! barrier request), the fork-join overhead eats the parallelism.
//!
//! [`with_shard_workers`] replaces that with the persistent-worker shape
//! from the fine-grain ordered-parallelism literature: each shard's state
//! moves into a long-lived worker thread once per *session*, commands
//! stream to it over an SPSC channel (preserving per-shard order), and
//! replies stream back over a second SPSC channel in the same order. The
//! caller sequences barriers itself by sending a token to every worker —
//! channel FIFO guarantees each worker applies the token between exactly
//! the commands the caller ordered around it, so no global stop-the-world
//! join is needed and workers never go idle between segments.
//!
//! The container this workspace builds in has no crates.io access, so the
//! channel is a dependency-free `Mutex<VecDeque>` + `Condvar` pair: not
//! lock-free, but commands are coarse batches, so the lock is touched a few
//! times per thousand events.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Shared state behind one SPSC channel.
struct Shared<T> {
    queue: Mutex<ChannelState<T>>,
    ready: Condvar,
}

struct ChannelState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The sending half of an SPSC channel (see [`spsc_channel`]). Dropping it
/// closes the channel: the receiver drains what was sent, then sees `None`.
pub struct SpscSender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an SPSC channel (see [`spsc_channel`]).
pub struct SpscReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// An unbounded single-producer single-consumer channel.
///
/// Sends never block; [`SpscReceiver::recv`] blocks until an item arrives
/// or the sender is dropped. Items arrive in send order — the property the
/// shard runtime's ordering correctness rests on.
pub fn spsc_channel<T>() -> (SpscSender<T>, SpscReceiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(ChannelState {
            items: VecDeque::new(),
            closed: false,
        }),
        ready: Condvar::new(),
    });
    (
        SpscSender {
            shared: Arc::clone(&shared),
        },
        SpscReceiver { shared },
    )
}

impl<T> SpscSender<T> {
    /// Enqueue an item (never blocks). Sending after the receiver is gone
    /// is harmless: the item is queued and freed with the channel.
    pub fn send(&self, item: T) {
        let mut state = self.shared.queue.lock().expect("channel lock");
        state.items.push_back(item);
        drop(state);
        self.shared.ready.notify_one();
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock");
        state.closed = true;
        drop(state);
        self.shared.ready.notify_all();
    }
}

impl<T> SpscReceiver<T> {
    /// Block until the next item, or `None` once the channel is closed and
    /// drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.shared.ready.wait(state).expect("channel lock");
        }
    }

    /// Non-blocking receive: `Some(item)` if one is queued, else `None`
    /// (whether the channel is open or closed).
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .queue
            .lock()
            .expect("channel lock")
            .items
            .pop_front()
    }
}

/// Handles to a running pool of shard workers (inside
/// [`with_shard_workers`]): one FIFO command lane and one FIFO reply lane
/// per worker.
///
/// With two or more shards each lane is an SPSC channel pair to a worker
/// thread; with zero or one shard the pool degenerates to an inline
/// executor (commands run on the caller's thread at [`send`](Self::send)
/// time), preserving identical FIFO semantics without channel hops.
pub struct ShardWorkers<'pool, Cmd, Res> {
    inner: Pool<'pool, Cmd, Res>,
}

enum Pool<'pool, Cmd, Res> {
    Threads {
        senders: Vec<SpscSender<Cmd>>,
        receivers: Vec<SpscReceiver<Res>>,
    },
    Inline {
        /// Runs the handler against the single shard's state.
        exec: Box<dyn FnMut(Cmd) -> Res + 'pool>,
        replies: VecDeque<Res>,
        shards: usize,
    },
}

impl<Cmd, Res> ShardWorkers<'_, Cmd, Res> {
    /// Number of workers.
    pub fn len(&self) -> usize {
        match &self.inner {
            Pool::Threads { senders, .. } => senders.len(),
            Pool::Inline { shards, .. } => *shards,
        }
    }

    /// Whether the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Send a command to worker `shard` (never blocks in the threaded
    /// pool; runs the handler inline in the ≤ 1-shard pool).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn send(&mut self, shard: usize, cmd: Cmd) {
        match &mut self.inner {
            Pool::Threads { senders, .. } => senders[shard].send(cmd),
            Pool::Inline {
                exec,
                replies,
                shards,
            } => {
                assert!(shard < *shards, "shard {shard} out of range");
                replies.push_back(exec(cmd));
            }
        }
    }

    /// Block for worker `shard`'s next reply. Replies arrive in command
    /// order — one per command, produced by the worker's handler.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, there is no outstanding command,
    /// or the worker terminated without replying (it panicked — the
    /// original panic is re-raised when the pool joins).
    pub fn recv(&mut self, shard: usize) -> Res {
        match &mut self.inner {
            Pool::Threads { receivers, .. } => receivers[shard]
                .recv()
                .expect("shard worker terminated before replying"),
            Pool::Inline {
                replies, shards, ..
            } => {
                assert!(shard < *shards, "shard {shard} out of range");
                replies.pop_front().expect("no outstanding command")
            }
        }
    }
}

/// Run `body` against a pool of persistent shard workers, one long-lived
/// thread per entry of `states`.
///
/// Each worker owns its state for the whole session: it loops receiving
/// commands from its SPSC lane, applies `handler(shard, &mut state, cmd)`,
/// and sends the result back on its reply lane — so per-shard command
/// order is execution order, and consecutive commands to the same shard
/// never pay a thread spawn. When `body` returns, the command channels
/// close, the workers drain and exit, and the (mutated) states are
/// returned alongside `body`'s result.
///
/// A panic in `body` or any worker propagates to the caller (workers are
/// joined either way).
pub fn with_shard_workers<T, Cmd, Res, R>(
    states: Vec<T>,
    handler: impl Fn(usize, &mut T, Cmd) -> Res + Sync,
    body: impl FnOnce(&mut ShardWorkers<'_, Cmd, Res>) -> R,
) -> (Vec<T>, R)
where
    T: Send,
    Cmd: Send,
    Res: Send,
{
    if states.len() <= 1 {
        let mut states = states;
        let out = {
            let handler = &handler;
            let shards = states.len();
            let inner = match states.first_mut() {
                Some(state) => Pool::Inline {
                    exec: Box::new(move |cmd| handler(0, state, cmd)),
                    replies: VecDeque::new(),
                    shards,
                },
                None => Pool::Threads {
                    senders: Vec::new(),
                    receivers: Vec::new(),
                },
            };
            body(&mut ShardWorkers { inner })
        };
        return (states, out);
    }
    std::thread::scope(|scope| {
        let handler = &handler;
        let mut senders = Vec::with_capacity(states.len());
        let mut receivers = Vec::with_capacity(states.len());
        let joins: Vec<_> = states
            .into_iter()
            .enumerate()
            .map(|(shard, mut state)| {
                let (cmd_tx, cmd_rx) = spsc_channel::<Cmd>();
                let (res_tx, res_rx) = spsc_channel::<Res>();
                senders.push(cmd_tx);
                receivers.push(res_rx);
                scope.spawn(move || {
                    while let Some(cmd) = cmd_rx.recv() {
                        res_tx.send(handler(shard, &mut state, cmd));
                    }
                    state
                })
            })
            .collect();
        let mut workers = ShardWorkers {
            inner: Pool::Threads { senders, receivers },
        };
        let out = body(&mut workers);
        // Close the command channels so the workers drain and exit.
        drop(workers);
        let states = joins
            .into_iter()
            .map(|j| {
                j.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect();
        (states, out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_fifo_and_close() {
        let (tx, rx) = spsc_channel::<u32>();
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.try_recv(), None);
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn spsc_crosses_threads() {
        let (tx, rx) = spsc_channel::<u64>();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..1000 {
                    tx.send(i);
                }
            });
            for i in 0..1000 {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None);
        });
    }

    #[test]
    fn workers_preserve_per_shard_order() {
        let states: Vec<Vec<u32>> = vec![Vec::new(); 4];
        let (states, got) = with_shard_workers(
            states,
            |shard, log, cmd: u32| {
                log.push(cmd);
                cmd + shard as u32
            },
            |workers| {
                let mut expect = 0u32;
                for round in 0..50u32 {
                    for shard in 0..workers.len() {
                        workers.send(shard, round);
                        expect += round + shard as u32;
                    }
                }
                let mut got = 0u32;
                for _round in 0..50 {
                    for shard in 0..workers.len() {
                        got += workers.recv(shard);
                    }
                }
                assert_eq!(got, expect);
                got
            },
        );
        assert!(got > 0);
        for log in &states {
            assert_eq!(*log, (0..50).collect::<Vec<u32>>(), "per-shard FIFO");
        }
    }

    #[test]
    fn states_come_back_mutated() {
        let (states, ()) = with_shard_workers(
            vec![0u64; 3],
            |_, count, delta: u64| {
                *count += delta;
            },
            |workers| {
                for shard in 0..workers.len() {
                    workers.send(shard, 10);
                    workers.send(shard, 32);
                }
                for shard in 0..workers.len() {
                    workers.recv(shard);
                    workers.recv(shard);
                }
            },
        );
        assert_eq!(states, vec![42, 42, 42]);
    }

    #[test]
    fn single_shard_runs_inline() {
        let (states, answers) = with_shard_workers(
            vec![String::new()],
            |_, s, cmd: &str| {
                s.push_str(cmd);
                s.len()
            },
            |workers| {
                assert_eq!(workers.len(), 1);
                workers.send(0, "ab");
                workers.send(0, "c");
                vec![workers.recv(0), workers.recv(0)]
            },
        );
        assert_eq!(states, vec!["abc".to_string()]);
        assert_eq!(answers, vec![2, 3]);
    }

    #[test]
    fn empty_pool_is_fine() {
        let (states, out) =
            with_shard_workers(Vec::<u8>::new(), |_, _, _: u8| 0u8, |workers| workers.len());
        assert!(states.is_empty());
        assert_eq!(out, 0);
    }

    #[test]
    fn interleaved_send_recv_pipelines() {
        // Send a batch, receive some, send more: the lanes stay aligned.
        let (_, ()) = with_shard_workers(
            vec![0u32; 2],
            |_, total, cmd: u32| {
                *total += cmd;
                *total
            },
            |workers| {
                workers.send(0, 5);
                workers.send(1, 7);
                assert_eq!(workers.recv(0), 5);
                workers.send(0, 5);
                assert_eq!(workers.recv(0), 10);
                assert_eq!(workers.recv(1), 7);
            },
        );
    }

    #[test]
    #[should_panic(expected = "terminated before replying")]
    fn worker_panic_propagates() {
        let _ = with_shard_workers(
            vec![0u8, 0u8],
            |shard, _, _: u8| {
                if shard == 1 {
                    panic!("worker boom");
                }
                0u8
            },
            |workers| {
                workers.send(0, 1);
                workers.send(1, 1);
                let a = workers.recv(0);
                // Worker 1 dies before replying: its reply lane closes, so
                // recv panics instead of blocking forever, and the scope
                // still joins the dead worker on the way out.
                let b = workers.recv(1);
                a + b
            },
        );
    }
}

//! A persistent shard-worker runtime: long-lived worker threads owning
//! their per-shard state, fed over lock-free SPSC ring lanes.
//!
//! [`par_map_mut`](crate::par_map_mut) forks one thread per item per call —
//! the right shape for a handful of coarse, independent dispatches, but on
//! multi-core hardware the spawn/join cost is paid again at every
//! synchronization point. When the same shards are dispatched thousands of
//! times (the `coach-serve` sharded controller processes one segment per
//! barrier request), the fork-join overhead eats the parallelism.
//!
//! [`with_shard_workers`] replaces that with the persistent-worker shape
//! from the fine-grain ordered-parallelism literature: each shard's state
//! moves into a long-lived worker thread once per *session*, commands
//! stream to it over an SPSC lane (preserving per-shard order), and
//! replies stream back over a second SPSC lane in the same order. The
//! caller sequences barriers itself by sending a token to every worker —
//! lane FIFO guarantees each worker applies the token between exactly
//! the commands the caller ordered around it, so no global stop-the-world
//! join is needed and workers never go idle between segments.
//!
//! # Lane implementations
//!
//! The default command lane ([`LaneKind::Ring`]) is a dependency-free
//! *bounded lock-free SPSC ring buffer*: a power-of-two slot array indexed
//! by cache-line-padded monotonic head/tail counters with Acquire/Release
//! publication, so steady-state send/recv is a couple of atomic ops and no
//! lock. A `Mutex` + `Condvar` pair exists purely as the **sleep/wake slow
//! path**: the consumer spins briefly, then publishes a parked flag and
//! waits; the producer only takes the lock to notify when it actually
//! observes a parked peer — an empty→non-empty transition costs one wakeup,
//! and a full segment delivered through [`LaneSender::send_batch`] /
//! [`LaneReceiver::recv_batch`] amortizes that single wakeup across the
//! whole burst. A full ring applies *backpressure* (the producer parks
//! until the consumer frees slots) instead of growing without bound.
//!
//! The original `Mutex<VecDeque>` channel is retained as
//! [`LaneKind::MutexRef`] — the slow reference implementation the ring is
//! differentially tested against (same role as the scheduler's
//! `NaiveReference` scan), selectable end-to-end for A/B benchmarks.
//!
//! Worker threads can additionally be pinned to CPUs chosen by a
//! [`PlacementPolicy`](crate::topology::PlacementPolicy) over the detected
//! [`CpuTopology`](crate::topology::CpuTopology) — see [`WorkerConfig`].

use std::cell::Cell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Spins on the fast path before a blocked lane endpoint parks on the
/// condvar. Small on purpose: on a loaded single-core host spinning only
/// delays the peer.
const SPIN: usize = 64;

/// How many commands a shard worker drains per wakeup (see
/// [`with_shard_workers_configured`]).
const WORKER_BURST: usize = 32;

/// Default ring capacity (slots) for worker command lanes. Must be a
/// power of two; deep enough that a dispatcher streaming coarse segment
/// batches rarely stalls, small enough to bound buffered memory.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Cumulative lane telemetry, snapshot from counter-instrumented lane
/// endpoints. All lanes count; `coach-serve` surfaces the pool-wide sums
/// in its `StatsReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Items enqueued (each item of a batch counts once).
    pub sends: u64,
    /// `send_batch` calls — `sends / batched_sends` is the mean handoff
    /// size, and `wakeups / batched_sends` the wakeups-per-segment rate.
    pub batched_sends: u64,
    /// Condvar notifies actually issued (either direction): how often a
    /// handoff found its peer asleep instead of running.
    pub wakeups: u64,
    /// Times a producer found the ring full and had to stall for the
    /// consumer (backpressure events; always 0 for the unbounded
    /// [`LaneKind::MutexRef`] lane).
    pub full_stalls: u64,
}

impl LaneStats {
    /// Accumulate another snapshot into this one.
    pub fn merge(&mut self, other: &LaneStats) {
        self.sends += other.sends;
        self.batched_sends += other.batched_sends;
        self.wakeups += other.wakeups;
        self.full_stalls += other.full_stalls;
    }
}

/// Shared atomic counters behind one lane (see [`LaneStats`] for field
/// meanings). Updated with relaxed ordering: telemetry, not
/// synchronization.
#[derive(Debug, Default)]
struct LaneCounters {
    sends: AtomicU64,
    batched_sends: AtomicU64,
    wakeups: AtomicU64,
    full_stalls: AtomicU64,
}

impl LaneCounters {
    fn snapshot(&self) -> LaneStats {
        LaneStats {
            sends: self.sends.load(Ordering::Relaxed),
            batched_sends: self.batched_sends.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            full_stalls: self.full_stalls.load(Ordering::Relaxed),
        }
    }
}

/// Lock the park mutex, surviving poisoning (it guards no data — only
/// the sleep/wake handshake — so a panicked peer must not wedge drops).
fn lock_park(park: &Mutex<()>) -> MutexGuard<'_, ()> {
    park.lock().unwrap_or_else(|poison| poison.into_inner())
}

// ---------------------------------------------------------------------------
// Mutex reference lane
// ---------------------------------------------------------------------------

/// Shared state behind one mutex-lane SPSC channel.
struct Shared<T> {
    queue: Mutex<ChannelState<T>>,
    ready: Condvar,
    counters: LaneCounters,
}

struct ChannelState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Consumer is (about to be) blocked in `ready.wait` — maintained
    /// under the queue mutex, so a producer that reads `false` is
    /// guaranteed the consumer will re-check the queue before sleeping.
    waiting: bool,
}

/// The sending half of a mutex-lane SPSC channel (see [`spsc_channel`]).
/// Dropping it closes the channel: the receiver drains what was sent,
/// then sees `None`.
pub struct SpscSender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a mutex-lane SPSC channel (see [`spsc_channel`]).
pub struct SpscReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// An unbounded single-producer single-consumer channel over
/// `Mutex<VecDeque>` — the reference lane ([`LaneKind::MutexRef`]) the
/// lock-free ring is differentially tested against.
///
/// Sends never block; [`SpscReceiver::recv`] blocks until an item arrives
/// or the sender is dropped. Items arrive in send order — the property the
/// shard runtime's ordering correctness rests on.
pub fn spsc_channel<T>() -> (SpscSender<T>, SpscReceiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(ChannelState {
            items: VecDeque::new(),
            closed: false,
            waiting: false,
        }),
        ready: Condvar::new(),
        counters: LaneCounters::default(),
    });
    (
        SpscSender {
            shared: Arc::clone(&shared),
        },
        SpscReceiver { shared },
    )
}

impl<T> SpscSender<T> {
    /// Enqueue an item (never blocks). Sending after the receiver is gone
    /// is harmless: the item is queued and freed with the channel.
    pub fn send(&self, item: T) {
        self.shared.counters.sends.fetch_add(1, Ordering::Relaxed);
        let mut state = self.shared.queue.lock().expect("channel lock");
        state.items.push_back(item);
        let wake = state.waiting;
        drop(state);
        if wake {
            self.shared.counters.wakeups.fetch_add(1, Ordering::Relaxed);
            self.shared.ready.notify_one();
        }
    }

    /// Enqueue a whole batch under one lock acquisition and at most one
    /// consumer wakeup.
    pub fn send_batch(&self, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        let counters = &self.shared.counters;
        counters
            .sends
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        counters.batched_sends.fetch_add(1, Ordering::Relaxed);
        let mut state = self.shared.queue.lock().expect("channel lock");
        state.items.extend(items);
        let wake = state.waiting;
        drop(state);
        if wake {
            counters.wakeups.fetch_add(1, Ordering::Relaxed);
            self.shared.ready.notify_one();
        }
    }

    /// Snapshot this lane's telemetry counters.
    pub fn stats(&self) -> LaneStats {
        self.shared.counters.snapshot()
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        let mut state = match self.shared.queue.lock() {
            Ok(state) => state,
            Err(poison) => poison.into_inner(),
        };
        state.closed = true;
        drop(state);
        self.shared.ready.notify_all();
    }
}

impl<T> SpscReceiver<T> {
    /// Block until the next item, or `None` once the channel is closed and
    /// drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state.waiting = true;
            state = self.shared.ready.wait(state).expect("channel lock");
            state.waiting = false;
        }
    }

    /// Block until at least one item is available, then move up to `max`
    /// items into `out` (preserving order). Returns the number moved —
    /// `0` only once the channel is closed and drained (or `max == 0`).
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if !state.items.is_empty() {
                let n = state.items.len().min(max);
                out.extend(state.items.drain(..n));
                return n;
            }
            if state.closed {
                return 0;
            }
            state.waiting = true;
            state = self.shared.ready.wait(state).expect("channel lock");
            state.waiting = false;
        }
    }

    /// Non-blocking receive: `Some(item)` if one is queued, else `None`
    /// (whether the channel is open or closed).
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .queue
            .lock()
            .expect("channel lock")
            .items
            .pop_front()
    }

    /// Snapshot this lane's telemetry counters.
    pub fn stats(&self) -> LaneStats {
        self.shared.counters.snapshot()
    }
}

// ---------------------------------------------------------------------------
// Lock-free ring lane
// ---------------------------------------------------------------------------

/// Pads (and aligns) a hot atomic to its own cache line so the producer's
/// tail and the consumer's head never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// One ring slot. `UnsafeCell` because ownership of the payload moves
/// between the producer and consumer threads outside any lock; the
/// head/tail protocol guarantees exclusive access.
struct Slot<T>(std::cell::UnsafeCell<MaybeUninit<T>>);

/// State shared by the two halves of a ring lane.
///
/// `head`/`tail` are *monotonic* operation counters (wrapping at
/// `usize::MAX`, which the arithmetic below handles via `wrapping_sub`);
/// `index & mask` locates a counter's slot. Invariant:
/// `tail - head <= capacity`, slots in `[head, tail)` are initialized and
/// owned by the consumer, the rest are free for the producer.
struct RingShared<T> {
    mask: usize,
    buf: Box<[Slot<T>]>,
    /// Next slot the consumer will read. Written only by the consumer
    /// (Release), read by the producer (Acquire).
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Written only by the producer
    /// (Release), read by the consumer (Acquire).
    tail: CachePadded<AtomicUsize>,
    /// Sender dropped: consumer drains, then sees end-of-stream.
    closed: AtomicBool,
    /// Receiver dropped: sends become drops (never block).
    rx_gone: AtomicBool,
    /// Sleep/wake handshake flags (Dekker-style with SeqCst fences): a
    /// peer parks only after publishing its flag and re-checking the
    /// indices, and the other side only takes the lock to notify when it
    /// reads the flag as set.
    consumer_parked: AtomicBool,
    producer_parked: AtomicBool,
    /// Guards nothing but the condvars — the slow sleep/wake path.
    park: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
    counters: LaneCounters,
}

// SAFETY: the SPSC protocol partitions `buf` between exactly one producer
// and one consumer thread — a slot is written only while in the free
// region `[tail, head + capacity)` (owned by the producer) and read only
// while in `[head, tail)` (owned by the consumer), with ownership
// transferred by the Release/Acquire pairs on `tail` and `head`. All other
// fields are atomics or sync primitives.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> RingShared<T> {
    /// Write `item` into the slot for monotonic index `index`.
    ///
    /// # Safety
    ///
    /// Caller must be the producer and `index` must lie in the free
    /// region (`index - head < capacity` and `index >= tail`), unpublished
    /// to the consumer.
    #[allow(unsafe_code)]
    unsafe fn write_slot(&self, index: usize, item: T) {
        (*self.buf[index & self.mask].0.get()).write(item);
    }

    /// Move the value out of the slot for monotonic index `index`.
    ///
    /// # Safety
    ///
    /// Caller must be the consumer and `index` must lie in `[head, tail)`
    /// with the slot not yet released back to the producer.
    #[allow(unsafe_code)]
    unsafe fn read_slot(&self, index: usize) -> T {
        (*self.buf[index & self.mask].0.get()).assume_init_read()
    }
}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Last reference: drop any items still in flight.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut index = head;
        while index != tail {
            // SAFETY: `&mut self` means both endpoints are gone; slots in
            // `[head, tail)` are initialized and unconsumed.
            #[allow(unsafe_code)]
            unsafe {
                (*self.buf[index & self.mask].0.get()).assume_init_drop();
            }
            index = index.wrapping_add(1);
        }
    }
}

/// The producing half of a lock-free ring lane (see [`ring_channel`]).
pub struct RingSender<T> {
    shared: Arc<RingShared<T>>,
    /// Producer-private cache of `head`, refreshed only when the ring
    /// looks full — most sends never touch the consumer's cache line.
    cached_head: Cell<usize>,
}

/// The consuming half of a lock-free ring lane (see [`ring_channel`]).
pub struct RingReceiver<T> {
    shared: Arc<RingShared<T>>,
    /// Consumer-private cache of `tail`, refreshed only when the ring
    /// looks empty.
    cached_tail: Cell<usize>,
}

/// A bounded lock-free SPSC ring lane.
///
/// `capacity` is rounded up to the next power of two (minimum 2). The
/// fast path is wait-free publication over padded atomics; a
/// mutex/condvar pair is used **only** to sleep and wake blocked
/// endpoints (empty ring: consumer parks; full ring: producer parks —
/// backpressure instead of unbounded growth). Dropping the sender closes
/// the lane ([`RingReceiver::recv`] drains then returns `None`); dropping
/// the receiver turns sends into silent drops so a producer can never
/// wedge on a dead consumer.
pub fn ring_channel<T>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    let capacity = capacity.max(2).next_power_of_two();
    let buf: Box<[Slot<T>]> = (0..capacity)
        .map(|_| Slot(std::cell::UnsafeCell::new(MaybeUninit::uninit())))
        .collect();
    let shared = Arc::new(RingShared {
        mask: capacity - 1,
        buf,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        rx_gone: AtomicBool::new(false),
        consumer_parked: AtomicBool::new(false),
        producer_parked: AtomicBool::new(false),
        park: Mutex::new(()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        counters: LaneCounters::default(),
    });
    (
        RingSender {
            shared: Arc::clone(&shared),
            cached_head: Cell::new(0),
        },
        RingReceiver {
            shared,
            cached_tail: Cell::new(0),
        },
    )
}

impl<T> RingSender<T> {
    fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Free slots given the cached head; refreshes the cache from the
    /// shared index when the cached view looks full.
    fn free_slots(&self, tail: usize) -> usize {
        let cap = self.capacity();
        let used = tail.wrapping_sub(self.cached_head.get());
        if used < cap {
            return cap - used;
        }
        self.cached_head
            .set(self.shared.head.0.load(Ordering::Acquire));
        cap - tail.wrapping_sub(self.cached_head.get())
    }

    /// Block until at least one slot is free; returns the free count, or
    /// 0 if the receiver is gone (items should be dropped).
    fn wait_free(&self, tail: usize) -> usize {
        let free = self.free_slots(tail);
        if free > 0 {
            return free;
        }
        if self.shared.rx_gone.load(Ordering::Acquire) {
            return 0;
        }
        self.shared
            .counters
            .full_stalls
            .fetch_add(1, Ordering::Relaxed);
        loop {
            for _ in 0..SPIN {
                std::hint::spin_loop();
                let free = self.free_slots(tail);
                if free > 0 {
                    return free;
                }
            }
            if self.shared.rx_gone.load(Ordering::Acquire) {
                return 0;
            }
            // Park: publish intent, re-check under a fence (so the
            // consumer's release of a slot cannot race past us), then
            // sleep under the lock.
            self.shared.producer_parked.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let mut free = self.free_slots(tail);
            if free == 0 && !self.shared.rx_gone.load(Ordering::Relaxed) {
                let mut guard = lock_park(&self.shared.park);
                loop {
                    free = self.free_slots(tail);
                    if free > 0 || self.shared.rx_gone.load(Ordering::Acquire) {
                        break;
                    }
                    guard = self
                        .shared
                        .not_full
                        .wait(guard)
                        .unwrap_or_else(|poison| poison.into_inner());
                }
            }
            self.shared.producer_parked.store(false, Ordering::Relaxed);
            if free > 0 {
                return free;
            }
            if self.shared.rx_gone.load(Ordering::Acquire) {
                return 0;
            }
        }
    }

    /// Notify the consumer if (and only if) it is parked. The SeqCst
    /// fence pairs with the consumer's park sequence: either we see its
    /// parked flag, or it sees our tail publication — never neither.
    fn wake_consumer(&self) {
        fence(Ordering::SeqCst);
        if self.shared.consumer_parked.load(Ordering::Relaxed) {
            self.shared.counters.wakeups.fetch_add(1, Ordering::Relaxed);
            let _guard = lock_park(&self.shared.park);
            self.shared.not_empty.notify_one();
        }
    }

    /// Send one item. Blocks while the ring is full (backpressure); if
    /// the receiver has been dropped the item is silently dropped.
    pub fn send(&self, item: T) {
        self.shared.counters.sends.fetch_add(1, Ordering::Relaxed);
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        if self.wait_free(tail) == 0 {
            return; // receiver gone
        }
        // SAFETY: `wait_free` proved `tail` is in the free region, and as
        // the unique producer nothing else can claim it.
        #[allow(unsafe_code)]
        unsafe {
            self.shared.write_slot(tail, item);
        }
        self.shared
            .tail
            .0
            .store(tail.wrapping_add(1), Ordering::Release);
        self.wake_consumer();
    }

    /// Send a whole batch, publishing as many items per step as the ring
    /// has free slots and issuing **at most one wakeup per published
    /// chunk** — for a consumer draining via [`RingReceiver::recv_batch`],
    /// one wakeup per segment instead of one per item.
    ///
    /// Blocks while the ring is full; if the receiver has been dropped
    /// the remaining items are silently dropped.
    pub fn send_batch(&self, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        let counters = &self.shared.counters;
        counters
            .sends
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        counters.batched_sends.fetch_add(1, Ordering::Relaxed);
        let mut items = items.into_iter();
        loop {
            let tail = self.shared.tail.0.load(Ordering::Relaxed);
            let free = self.wait_free(tail);
            if free == 0 {
                return; // receiver gone: drop the rest
            }
            let mut wrote = 0;
            while wrote < free {
                match items.next() {
                    // SAFETY: `tail + wrote` stays within the free region
                    // proven by `wait_free` (`wrote < free`).
                    #[allow(unsafe_code)]
                    Some(item) => unsafe {
                        self.shared.write_slot(tail.wrapping_add(wrote), item);
                        wrote += 1;
                    },
                    None => break,
                }
            }
            self.shared
                .tail
                .0
                .store(tail.wrapping_add(wrote), Ordering::Release);
            self.wake_consumer();
            if items.len() == 0 {
                return;
            }
        }
    }

    /// Snapshot this lane's telemetry counters.
    pub fn stats(&self) -> LaneStats {
        self.shared.counters.snapshot()
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        fence(Ordering::SeqCst);
        // Take the lock unconditionally: the consumer may be between its
        // parked-flag store and its condvar wait.
        let _guard = lock_park(&self.shared.park);
        self.shared.not_empty.notify_all();
    }
}

impl<T> RingReceiver<T> {
    /// Items available given the cached tail; refreshes the cache from
    /// the shared index when the cached view looks empty.
    fn available(&self, head: usize) -> usize {
        let avail = self.cached_tail.get().wrapping_sub(head);
        if avail > 0 {
            return avail;
        }
        self.cached_tail
            .set(self.shared.tail.0.load(Ordering::Acquire));
        self.cached_tail.get().wrapping_sub(head)
    }

    /// Block until items are available; returns the count, or 0 once the
    /// lane is closed and fully drained.
    fn wait_available(&self, head: usize) -> usize {
        let avail = self.available(head);
        if avail > 0 {
            return avail;
        }
        loop {
            if self.shared.closed.load(Ordering::Acquire) {
                // The sender publishes items before `closed`; one more
                // refresh observes everything it sent.
                return self.available(head);
            }
            for _ in 0..SPIN {
                std::hint::spin_loop();
                let avail = self.available(head);
                if avail > 0 {
                    return avail;
                }
            }
            // Park: publish intent, re-check under a fence (pairs with
            // the producer's `wake_consumer`), then sleep under the lock.
            self.shared.consumer_parked.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let mut avail = self.available(head);
            if avail == 0 && !self.shared.closed.load(Ordering::Relaxed) {
                let mut guard = lock_park(&self.shared.park);
                loop {
                    avail = self.available(head);
                    if avail > 0 || self.shared.closed.load(Ordering::Acquire) {
                        break;
                    }
                    guard = self
                        .shared
                        .not_empty
                        .wait(guard)
                        .unwrap_or_else(|poison| poison.into_inner());
                }
            }
            self.shared.consumer_parked.store(false, Ordering::Relaxed);
            if avail > 0 {
                return avail;
            }
        }
    }

    /// Notify the producer if (and only if) it is parked on a full ring.
    fn wake_producer(&self) {
        fence(Ordering::SeqCst);
        if self.shared.producer_parked.load(Ordering::Relaxed) {
            self.shared.counters.wakeups.fetch_add(1, Ordering::Relaxed);
            let _guard = lock_park(&self.shared.park);
            self.shared.not_full.notify_one();
        }
    }

    /// Block until the next item, or `None` once the lane is closed and
    /// drained.
    pub fn recv(&self) -> Option<T> {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        if self.wait_available(head) == 0 {
            return None;
        }
        // SAFETY: `wait_available` proved `head < tail`, and as the unique
        // consumer nothing else can release this slot.
        #[allow(unsafe_code)]
        let item = unsafe { self.shared.read_slot(head) };
        self.shared
            .head
            .0
            .store(head.wrapping_add(1), Ordering::Release);
        self.wake_producer();
        Some(item)
    }

    /// Block until at least one item is available, then move up to `max`
    /// items into `out` (preserving order), releasing their slots with a
    /// single head publication and at most one producer wakeup. Returns
    /// the number moved — `0` only once the lane is closed and drained
    /// (or `max == 0`).
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let head = self.shared.head.0.load(Ordering::Relaxed);
        let avail = self.wait_available(head);
        if avail == 0 {
            return 0;
        }
        let n = avail.min(max);
        out.reserve(n);
        for i in 0..n {
            // SAFETY: indices `head..head + n` lie in `[head, tail)` per
            // `wait_available`.
            #[allow(unsafe_code)]
            out.push(unsafe { self.shared.read_slot(head.wrapping_add(i)) });
        }
        self.shared
            .head
            .0
            .store(head.wrapping_add(n), Ordering::Release);
        self.wake_producer();
        n
    }

    /// Non-blocking receive: `Some(item)` if one is ready, else `None`
    /// (whether the lane is open or closed).
    pub fn try_recv(&self) -> Option<T> {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        if self.available(head) == 0 {
            return None;
        }
        // SAFETY: `available` proved `head < tail`.
        #[allow(unsafe_code)]
        let item = unsafe { self.shared.read_slot(head) };
        self.shared
            .head
            .0
            .store(head.wrapping_add(1), Ordering::Release);
        self.wake_producer();
        Some(item)
    }

    /// Snapshot this lane's telemetry counters.
    pub fn stats(&self) -> LaneStats {
        self.shared.counters.snapshot()
    }
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        self.shared.rx_gone.store(true, Ordering::Release);
        fence(Ordering::SeqCst);
        let _guard = lock_park(&self.shared.park);
        self.shared.not_full.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Lane selection
// ---------------------------------------------------------------------------

/// Which SPSC lane implementation a worker pool (or benchmark) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneKind {
    /// The bounded lock-free ring buffer (default, fast path).
    #[default]
    Ring,
    /// The `Mutex<VecDeque>` + `Condvar` reference lane — unbounded,
    /// trivially correct, kept for differential testing and A/B
    /// benchmarks (`bench_serve --lanes mutex`).
    MutexRef,
}

impl LaneKind {
    /// Parse a CLI spelling (`"ring"` / `"mutex"`).
    pub fn parse(s: &str) -> Option<LaneKind> {
        match s {
            "ring" => Some(LaneKind::Ring),
            "mutex" | "mutex-ref" | "mutexref" => Some(LaneKind::MutexRef),
            _ => None,
        }
    }

    /// Stable lowercase label (inverse of [`LaneKind::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            LaneKind::Ring => "ring",
            LaneKind::MutexRef => "mutex",
        }
    }
}

/// The sending half of a [`lane_channel`], dispatching to the selected
/// implementation.
pub enum LaneSender<T> {
    /// Lock-free ring lane.
    Ring(RingSender<T>),
    /// Mutex reference lane.
    MutexRef(SpscSender<T>),
}

/// The receiving half of a [`lane_channel`].
pub enum LaneReceiver<T> {
    /// Lock-free ring lane.
    Ring(RingReceiver<T>),
    /// Mutex reference lane.
    MutexRef(SpscReceiver<T>),
}

/// An SPSC lane of the requested kind. `capacity` bounds the ring lane
/// (rounded up to a power of two); the mutex lane is unbounded and
/// ignores it.
pub fn lane_channel<T>(kind: LaneKind, capacity: usize) -> (LaneSender<T>, LaneReceiver<T>) {
    match kind {
        LaneKind::Ring => {
            let (tx, rx) = ring_channel(capacity);
            (LaneSender::Ring(tx), LaneReceiver::Ring(rx))
        }
        LaneKind::MutexRef => {
            let (tx, rx) = spsc_channel();
            (LaneSender::MutexRef(tx), LaneReceiver::MutexRef(rx))
        }
    }
}

impl<T> LaneSender<T> {
    /// Send one item (see [`RingSender::send`] / [`SpscSender::send`]).
    pub fn send(&self, item: T) {
        match self {
            LaneSender::Ring(tx) => tx.send(item),
            LaneSender::MutexRef(tx) => tx.send(item),
        }
    }

    /// Send a batch with at most one wakeup per published chunk.
    pub fn send_batch(&self, items: Vec<T>) {
        match self {
            LaneSender::Ring(tx) => tx.send_batch(items),
            LaneSender::MutexRef(tx) => tx.send_batch(items),
        }
    }

    /// Snapshot this lane's telemetry counters.
    pub fn stats(&self) -> LaneStats {
        match self {
            LaneSender::Ring(tx) => tx.stats(),
            LaneSender::MutexRef(tx) => tx.stats(),
        }
    }
}

impl<T> LaneReceiver<T> {
    /// Block until the next item, or `None` once closed and drained.
    pub fn recv(&self) -> Option<T> {
        match self {
            LaneReceiver::Ring(rx) => rx.recv(),
            LaneReceiver::MutexRef(rx) => rx.recv(),
        }
    }

    /// Move up to `max` items into `out`; `0` means closed and drained.
    pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        match self {
            LaneReceiver::Ring(rx) => rx.recv_batch(out, max),
            LaneReceiver::MutexRef(rx) => rx.recv_batch(out, max),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        match self {
            LaneReceiver::Ring(rx) => rx.try_recv(),
            LaneReceiver::MutexRef(rx) => rx.try_recv(),
        }
    }

    /// Snapshot this lane's telemetry counters.
    pub fn stats(&self) -> LaneStats {
        match self {
            LaneReceiver::Ring(rx) => rx.stats(),
            LaneReceiver::MutexRef(rx) => rx.stats(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shard worker pool
// ---------------------------------------------------------------------------

/// Where shard workers execute: threads in this process, or child
/// processes speaking length-prefixed `coach-wire` frames over pipes.
///
/// The generic [`with_shard_workers_configured`] pool always runs
/// threads — its `Cmd`/`Res` types are arbitrary and cannot cross a
/// process boundary. `Process` is honoured by dispatchers whose command
/// vocabulary has a wire encoding (the `coach-serve` sharded controller):
/// they keep the same session/barrier protocol but route each shard's
/// frames through a [`ProcessPool`] child instead of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerBackend {
    /// In-process worker threads (default).
    #[default]
    Thread,
    /// Child processes supervised by a [`ProcessPool`]: spawned via
    /// `std::process`, restarted from the last checkpoint on death.
    Process,
}

impl WorkerBackend {
    /// Parse a CLI spelling (`"thread"` / `"process"`).
    pub fn parse(s: &str) -> Option<WorkerBackend> {
        match s {
            "thread" | "threads" => Some(WorkerBackend::Thread),
            "process" | "proc" => Some(WorkerBackend::Process),
            _ => None,
        }
    }

    /// Stable lowercase label (inverse of [`WorkerBackend::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            WorkerBackend::Thread => "thread",
            WorkerBackend::Process => "process",
        }
    }
}

/// Tuning knobs for [`with_shard_workers_configured`].
#[derive(Debug, Clone, Default)]
pub struct WorkerConfig {
    /// Worker execution backend. Carried here so one config describes the
    /// whole pool; see [`WorkerBackend`] for which dispatchers honour
    /// `Process`.
    pub backend: WorkerBackend,
    /// Command-lane implementation (replies always use the unbounded
    /// mutex lane — see the module docs on why a bounded reply lane
    /// could deadlock a deferred-drain dispatcher).
    pub lanes: LaneKind,
    /// Ring capacity for command lanes (0 ⇒ [`DEFAULT_RING_CAPACITY`]).
    pub ring_capacity: usize,
    /// Per-worker CPU assignment: worker `i` is pinned to `pins[i]` when
    /// present (best effort — see
    /// [`pin_current_thread`](crate::topology::pin_current_thread)).
    /// Usually produced by
    /// [`PlacementPolicy::assign`](crate::topology::PlacementPolicy::assign).
    pub pins: Vec<Option<usize>>,
}

/// Handles to a running pool of shard workers (inside
/// [`with_shard_workers`]): one FIFO command lane and one FIFO reply lane
/// per worker.
///
/// With two or more shards each command lane is a bounded lock-free ring
/// (or the mutex reference lane, per [`WorkerConfig::lanes`]) to a worker
/// thread, and each reply lane an unbounded mutex lane back; with zero or
/// one shard the pool degenerates to an inline executor (commands run on
/// the caller's thread at [`send`](Self::send) time), preserving
/// identical FIFO semantics without lane hops.
pub struct ShardWorkers<'pool, Cmd, Res> {
    inner: Pool<'pool, Cmd, Res>,
}

enum Pool<'pool, Cmd, Res> {
    Threads {
        senders: Vec<LaneSender<Cmd>>,
        receivers: Vec<LaneReceiver<Res>>,
        /// Workers that successfully pinned themselves (best effort:
        /// updated as each worker starts).
        pinned: Arc<AtomicUsize>,
    },
    Inline {
        /// Runs the handler against the single shard's state.
        exec: Box<dyn FnMut(Cmd) -> Res + 'pool>,
        replies: VecDeque<Res>,
        shards: usize,
    },
}

impl<Cmd, Res> ShardWorkers<'_, Cmd, Res> {
    /// Number of workers.
    pub fn len(&self) -> usize {
        match &self.inner {
            Pool::Threads { senders, .. } => senders.len(),
            Pool::Inline { shards, .. } => *shards,
        }
    }

    /// Whether the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Send a command to worker `shard` (blocks only on command-ring
    /// backpressure in the threaded pool; runs the handler inline in the
    /// ≤ 1-shard pool).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn send(&mut self, shard: usize, cmd: Cmd) {
        match &mut self.inner {
            Pool::Threads { senders, .. } => senders[shard].send(cmd),
            Pool::Inline {
                exec,
                replies,
                shards,
            } => {
                assert!(shard < *shards, "shard {shard} out of range");
                replies.push_back(exec(cmd));
            }
        }
    }

    /// Send a burst of commands to worker `shard` with at most one
    /// wakeup per published chunk (equivalent to sending each in order).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn send_batch(&mut self, shard: usize, cmds: Vec<Cmd>) {
        match &mut self.inner {
            Pool::Threads { senders, .. } => senders[shard].send_batch(cmds),
            Pool::Inline {
                exec,
                replies,
                shards,
            } => {
                assert!(shard < *shards, "shard {shard} out of range");
                for cmd in cmds {
                    replies.push_back(exec(cmd));
                }
            }
        }
    }

    /// Block for worker `shard`'s next reply. Replies arrive in command
    /// order — one per command, produced by the worker's handler.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, there is no outstanding command,
    /// or the worker terminated without replying (it panicked — the
    /// original panic is re-raised when the pool joins).
    pub fn recv(&mut self, shard: usize) -> Res {
        match &mut self.inner {
            Pool::Threads { receivers, .. } => receivers[shard]
                .recv()
                .expect("shard worker terminated before replying"),
            Pool::Inline {
                replies, shards, ..
            } => {
                assert!(shard < *shards, "shard {shard} out of range");
                replies.pop_front().expect("no outstanding command")
            }
        }
    }

    /// Aggregate lane telemetry across every command and reply lane in
    /// the pool (all zero for the inline pool, which has no lanes).
    pub fn lane_stats(&self) -> LaneStats {
        match &self.inner {
            Pool::Threads {
                senders, receivers, ..
            } => {
                let mut total = LaneStats::default();
                for tx in senders {
                    total.merge(&tx.stats());
                }
                for rx in receivers {
                    total.merge(&rx.stats());
                }
                total
            }
            Pool::Inline { .. } => LaneStats::default(),
        }
    }

    /// How many workers successfully pinned themselves to their assigned
    /// CPU so far (best effort; 0 for the inline pool).
    pub fn workers_pinned(&self) -> usize {
        match &self.inner {
            Pool::Threads { pinned, .. } => pinned.load(Ordering::Relaxed),
            Pool::Inline { .. } => 0,
        }
    }
}

/// Run `body` against a pool of persistent shard workers with default
/// lanes (lock-free rings, [`DEFAULT_RING_CAPACITY`]) and no pinning.
/// See [`with_shard_workers_configured`].
pub fn with_shard_workers<T, Cmd, Res, R>(
    states: Vec<T>,
    handler: impl Fn(usize, &mut T, Cmd) -> Res + Sync,
    body: impl FnOnce(&mut ShardWorkers<'_, Cmd, Res>) -> R,
) -> (Vec<T>, R)
where
    T: Send,
    Cmd: Send,
    Res: Send,
{
    with_shard_workers_configured(&WorkerConfig::default(), states, handler, body)
}

/// Run `body` against a pool of persistent shard workers, one long-lived
/// thread per entry of `states`, with lanes and placement from `config`.
///
/// Each worker owns its state for the whole session: it drains command
/// bursts from its lane (up to `WORKER_BURST` per wakeup), applies
/// `handler(shard, &mut state, cmd)` to each, and sends the results back
/// on its reply lane — so per-shard command order is execution order, and
/// consecutive commands to the same shard never pay a thread spawn (or,
/// with batched sends, more than one wakeup). Workers with a CPU
/// assignment in `config.pins` pin themselves at startup, best effort.
/// When `body` returns, the command lanes close, the workers drain and
/// exit, and the (mutated) states are returned alongside `body`'s result.
///
/// A panic in `body` or any worker propagates to the caller (workers are
/// joined either way).
pub fn with_shard_workers_configured<T, Cmd, Res, R>(
    config: &WorkerConfig,
    states: Vec<T>,
    handler: impl Fn(usize, &mut T, Cmd) -> Res + Sync,
    body: impl FnOnce(&mut ShardWorkers<'_, Cmd, Res>) -> R,
) -> (Vec<T>, R)
where
    T: Send,
    Cmd: Send,
    Res: Send,
{
    if states.len() <= 1 {
        let mut states = states;
        let out = {
            let handler = &handler;
            let shards = states.len();
            let inner = match states.first_mut() {
                Some(state) => Pool::Inline {
                    exec: Box::new(move |cmd| handler(0, state, cmd)),
                    replies: VecDeque::new(),
                    shards,
                },
                None => Pool::Threads {
                    senders: Vec::new(),
                    receivers: Vec::new(),
                    pinned: Arc::new(AtomicUsize::new(0)),
                },
            };
            body(&mut ShardWorkers { inner })
        };
        return (states, out);
    }
    let ring_capacity = if config.ring_capacity == 0 {
        DEFAULT_RING_CAPACITY
    } else {
        config.ring_capacity
    };
    std::thread::scope(|scope| {
        let handler = &handler;
        let pinned = Arc::new(AtomicUsize::new(0));
        let mut senders = Vec::with_capacity(states.len());
        let mut receivers = Vec::with_capacity(states.len());
        let joins: Vec<_> = states
            .into_iter()
            .enumerate()
            .map(|(shard, mut state)| {
                let (cmd_tx, cmd_rx) = lane_channel::<Cmd>(config.lanes, ring_capacity);
                // Replies ride the unbounded mutex lane: callers may
                // defer draining replies until a barrier, and a bounded
                // reply lane would let a slow drainer deadlock a worker
                // against its own backpressure.
                let (res_tx, res_rx) = lane_channel::<Res>(LaneKind::MutexRef, ring_capacity);
                senders.push(cmd_tx);
                receivers.push(res_rx);
                let pin = config.pins.get(shard).copied().flatten();
                let pinned = Arc::clone(&pinned);
                scope.spawn(move || {
                    if let Some(cpu) = pin {
                        if crate::topology::pin_current_thread(cpu) {
                            pinned.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let mut burst = Vec::with_capacity(WORKER_BURST);
                    while cmd_rx.recv_batch(&mut burst, WORKER_BURST) > 0 {
                        for cmd in burst.drain(..) {
                            res_tx.send(handler(shard, &mut state, cmd));
                        }
                    }
                    state
                })
            })
            .collect();
        let mut workers = ShardWorkers {
            inner: Pool::Threads {
                senders,
                receivers,
                pinned,
            },
        };
        let out = body(&mut workers);
        // Close the command lanes so the workers drain and exit.
        drop(workers);
        let states = joins
            .into_iter()
            .map(|j| {
                j.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect();
        (states, out)
    })
}

// ---------------------------------------------------------------------------
// Process worker backend
// ---------------------------------------------------------------------------

/// How many times [`ProcessPool`] respawns a dead child before giving up
/// and propagating the failure as a panic. A deterministic child crash
/// (a bug, a poison frame) fails every replay identically, so a small
/// bound converts "restart loop" into "loud failure" quickly.
const MAX_RESPAWNS: usize = 3;

/// One supervised child process: the write half of its stdin pipe, the
/// reader-thread queue draining its stdout frames, and the recovery
/// journal that lets the supervisor rebuild it after a crash.
struct ChildWorker {
    child: std::process::Child,
    stdin: Option<std::process::ChildStdin>,
    /// Frames the child wrote, pumped off its stdout by a dedicated
    /// parent-side thread so a frame-writing child can never deadlock
    /// against a parent that is itself blocked writing commands. The
    /// sender drops when the child's stdout reaches EOF, so `recv() ==
    /// None` is the death signal.
    replies: SpscReceiver<Vec<u8>>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// The checkpoint frame (a full-state `Init`): replayed first after a
    /// respawn. `None` until the caller installs one — recovery is
    /// impossible before that.
    checkpoint: Option<Vec<u8>>,
    /// Command frames sent since the checkpoint, in order.
    journal: Vec<Vec<u8>>,
    /// Replies already delivered to the caller since the checkpoint —
    /// after a replay, this many regenerated replies are discarded so the
    /// caller never sees a duplicate.
    delivered: u64,
}

impl ChildWorker {
    /// Reap the dead (or dying) child: close stdin, join the reader, and
    /// return the exit status if one could be collected.
    fn reap(&mut self) -> Option<std::process::ExitStatus> {
        drop(self.stdin.take());
        let _ = self.child.kill();
        let status = self.child.wait().ok();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        status
    }
}

impl Drop for ChildWorker {
    fn drop(&mut self) {
        self.reap();
    }
}

/// A supervisor for one child process per shard, speaking length-prefixed
/// byte frames ([`coach_wire::write_frame`] layout) over stdin/stdout.
///
/// The pool is deliberately *byte-level*: message meaning lives with the
/// dispatcher that owns the vocabulary (`coach-serve`), and the contract
/// the supervisor relies on is only that **every command frame produces
/// exactly one reply frame** and that the child is **deterministic** —
/// replaying the same frames reproduces the same replies. Under that
/// contract the pool offers exactly-once delivery across crashes:
///
/// 1. The caller installs a *checkpoint* frame (a full-state `Init`)
///    per child; the pool remembers it, plus every command frame sent
///    since (`journal`) and how many replies the caller has consumed
///    (`delivered`).
/// 2. On child death — reply queue EOF or a failed pipe write — the pool
///    respawns the child, replays checkpoint + journal, silently discards
///    the `delivered` regenerated replies, and resumes where the caller
///    left off. [`ProcessPool::restarts`] counts these recoveries.
/// 3. A child that keeps dying (`MAX_RESPAWNS` attempts) or dies before
///    any checkpoint exists escalates as a panic carrying the exit
///    status — crashes propagate, they are never swallowed.
///
/// Children are expected to exit cleanly when their stdin closes;
/// [`ProcessPool::shutdown`] drains them that way and propagates nonzero
/// exits. Dropping the pool kills any remaining children (the unwind-safe
/// path).
pub struct ProcessPool {
    children: Vec<ChildWorker>,
    factory: Box<dyn Fn(usize) -> std::process::Command + Send>,
    restarts: u64,
    /// Wall-clock nanoseconds spent inside checkpoint + journal replay
    /// during unexpected-death recoveries (cumulative across shards).
    replay_ns: u64,
}

impl std::fmt::Debug for ProcessPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessPool")
            .field("children", &self.children.len())
            .field("restarts", &self.restarts)
            .finish()
    }
}

/// Spawn one child from the factory and wire up its pipes and reader.
fn spawn_child(
    factory: &(dyn Fn(usize) -> std::process::Command + Send),
    shard: usize,
) -> std::io::Result<ChildWorker> {
    let mut command = factory(shard);
    command
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit());
    let mut child = command.spawn()?;
    let stdin = child.stdin.take().expect("piped child stdin");
    let stdout = child.stdout.take().expect("piped child stdout");
    let (tx, rx) = spsc_channel::<Vec<u8>>();
    let reader = std::thread::spawn(move || {
        let mut stdout = std::io::BufReader::new(stdout);
        // Any read error or EOF ends the pump; dropping `tx` is the
        // death/drain signal the supervisor observes.
        while let Ok(Some(frame)) = coach_wire::read_frame(&mut stdout) {
            tx.send(frame);
        }
    });
    Ok(ChildWorker {
        child,
        stdin: Some(stdin),
        replies: rx,
        reader: Some(reader),
        checkpoint: None,
        journal: Vec::new(),
        delivered: 0,
    })
}

impl ProcessPool {
    /// Spawn `shards` children, one per shard, from `factory(shard)`.
    /// The factory's `Command` is re-invoked on every respawn; stdio is
    /// overridden to piped stdin/stdout (stderr is inherited so child
    /// panic messages reach the parent's terminal).
    pub fn spawn(
        shards: usize,
        factory: impl Fn(usize) -> std::process::Command + Send + 'static,
    ) -> std::io::Result<ProcessPool> {
        let factory: Box<dyn Fn(usize) -> std::process::Command + Send> = Box::new(factory);
        let mut children = Vec::with_capacity(shards);
        for shard in 0..shards {
            children.push(spawn_child(factory.as_ref(), shard)?);
        }
        Ok(ProcessPool {
            children,
            factory,
            restarts: 0,
            replay_ns: 0,
        })
    }

    /// Number of supervised children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether the pool supervises no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// OS process id of shard `shard`'s current child (changes after a
    /// recovery respawn).
    pub fn pid(&self, shard: usize) -> u32 {
        self.children[shard].child.id()
    }

    /// Unexpected-death recoveries performed so far, across all shards.
    /// Deliberate replacements via [`ProcessPool::install_checkpoint`] are
    /// not counted.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Cumulative wall-clock nanoseconds spent replaying checkpoint +
    /// journal frames during those recoveries — the observable cost of
    /// exactly-once recovery, surfaced by `coach-serve` telemetry as
    /// `coach_serve_recovery_replay_ns_total`.
    pub fn replay_ns(&self) -> u64 {
        self.replay_ns
    }

    /// Install `frame` as shard `shard`'s checkpoint and apply it to the
    /// live child now (consuming the child's single ack reply). Resets the
    /// journal: recovery replays from this frame.
    pub fn install_checkpoint(&mut self, shard: usize, frame: Vec<u8>) {
        {
            let c = &mut self.children[shard];
            c.checkpoint = Some(frame);
            c.journal.clear();
            c.delivered = 0;
        }
        // Apply to the running child; on failure full recovery converges
        // to the same state (checkpoint applied, ack consumed, journal
        // empty).
        if self.apply_checkpoint(shard).is_err() {
            self.recover(shard);
        }
    }

    /// Record `frame` as shard `shard`'s checkpoint *without* touching the
    /// live child — for the session-close case where the child's state
    /// already equals the exported snapshot the frame carries.
    pub fn refresh_checkpoint(&mut self, shard: usize, frame: Vec<u8>) {
        let c = &mut self.children[shard];
        c.checkpoint = Some(frame);
        c.journal.clear();
        c.delivered = 0;
    }

    /// Send one command frame to shard `shard` (journaled for recovery).
    pub fn send(&mut self, shard: usize, frame: Vec<u8>) {
        self.children[shard].journal.push(frame);
        if self.write_last_journalled(shard).is_err() {
            self.recover(shard);
        }
    }

    /// Block for shard `shard`'s next reply frame, recovering the child
    /// if it died with replies outstanding.
    pub fn recv(&mut self, shard: usize) -> Vec<u8> {
        loop {
            match self.children[shard].replies.recv() {
                Some(frame) => {
                    self.children[shard].delivered += 1;
                    return frame;
                }
                None => self.recover(shard),
            }
        }
    }

    /// Drain every child cleanly: close stdin (the child's exit signal),
    /// join its reader, and propagate a nonzero exit as a panic.
    pub fn shutdown(&mut self) {
        for (shard, mut child) in self.children.drain(..).enumerate() {
            drop(child.stdin.take());
            if let Some(reader) = child.reader.take() {
                let _ = reader.join();
            }
            let status = child.child.wait().expect("wait on shard child");
            assert!(
                status.success(),
                "shard {shard} process worker exited with {status}"
            );
        }
    }

    /// Write the newest journal entry to the child. `Err` means the pipe
    /// is broken (the child died) and recovery should run.
    fn write_last_journalled(&mut self, shard: usize) -> Result<(), ()> {
        let c = &mut self.children[shard];
        let frame = c.journal.last().expect("journal entry just pushed");
        let stdin = c.stdin.as_mut().ok_or(())?;
        coach_wire::write_frame(stdin, frame).map_err(|_| ())?;
        std::io::Write::flush(stdin).map_err(|_| ())
    }

    /// Send the checkpoint frame and consume the child's single ack.
    fn apply_checkpoint(&mut self, shard: usize) -> Result<(), ()> {
        let c = &mut self.children[shard];
        let frame = c.checkpoint.clone().expect("checkpoint installed");
        let stdin = c.stdin.as_mut().ok_or(())?;
        coach_wire::write_frame(stdin, &frame).map_err(|_| ())?;
        std::io::Write::flush(stdin).map_err(|_| ())?;
        c.replies.recv().ok_or(())?;
        Ok(())
    }

    /// Rebuild shard `shard` after its child died: respawn, replay
    /// checkpoint + journal, discard already-delivered replies. Panics —
    /// with the child's exit status — once [`MAX_RESPAWNS`] attempts fail
    /// or when no checkpoint was ever installed.
    fn recover(&mut self, shard: usize) {
        let mut last_status = self.children[shard].reap();
        assert!(
            self.children[shard].checkpoint.is_some(),
            "shard {shard} process worker died before a checkpoint was installed \
             (exit status: {last_status:?})"
        );
        for _ in 0..MAX_RESPAWNS {
            self.restarts += 1;
            let fresh = match spawn_child(self.factory.as_ref(), shard) {
                Ok(fresh) => fresh,
                Err(err) => panic!("respawning shard {shard} worker failed: {err}"),
            };
            let old = std::mem::replace(&mut self.children[shard], fresh);
            let c = &mut self.children[shard];
            c.checkpoint = old.checkpoint.clone();
            c.journal = old.journal.clone();
            c.delivered = old.delivered;
            drop(old);
            let t0 = std::time::Instant::now();
            let replayed = self.replay(shard).is_ok();
            self.replay_ns = self
                .replay_ns
                .saturating_add(t0.elapsed().as_nanos() as u64);
            if replayed {
                return;
            }
            last_status = self.children[shard].reap();
        }
        panic!(
            "shard {shard} process worker died {MAX_RESPAWNS} times during recovery; \
             last exit status: {last_status:?}"
        );
    }

    /// Replay checkpoint + journal into a fresh child and discard the
    /// replies the caller already consumed.
    fn replay(&mut self, shard: usize) -> Result<(), ()> {
        self.apply_checkpoint(shard)?;
        let c = &mut self.children[shard];
        let journal = c.journal.clone();
        let stdin = c.stdin.as_mut().ok_or(())?;
        for frame in &journal {
            coach_wire::write_frame(stdin, frame).map_err(|_| ())?;
        }
        std::io::Write::flush(stdin).map_err(|_| ())?;
        for _ in 0..c.delivered {
            c.replies.recv().ok_or(())?;
        }
        Ok(())
    }
}

/// Run a shard-worker child's side of the pipe protocol: read
/// length-prefixed command frames from stdin, answer each with exactly
/// one reply frame on stdout (flushed immediately — the supervisor's
/// journal recovery depends on the 1:1 framing), and return cleanly when
/// stdin closes.
///
/// Call this from a worker-capable binary's `main` after detecting the
/// worker role (e.g. via an environment variable); `handler` owns all
/// frame semantics.
pub fn serve_child_frames(mut handler: impl FnMut(Vec<u8>) -> Vec<u8>) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = std::io::BufWriter::new(stdout.lock());
    while let Some(frame) = coach_wire::read_frame(&mut input).expect("shard worker stdin") {
        let reply = handler(frame);
        coach_wire::write_frame(&mut output, &reply).expect("shard worker stdout");
        std::io::Write::flush(&mut output).expect("shard worker stdout flush");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_fifo_and_close() {
        let (tx, rx) = spsc_channel::<u32>();
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.try_recv(), None);
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn spsc_crosses_threads() {
        let (tx, rx) = spsc_channel::<u64>();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..1000 {
                    tx.send(i);
                }
            });
            for i in 0..1000 {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None);
        });
    }

    #[test]
    fn ring_fifo_and_close() {
        let (tx, rx) = ring_channel::<u32>(8);
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.try_recv(), None);
        drop(tx);
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn ring_crosses_threads_with_wraparound() {
        // Capacity far below the item count: the indices wrap many times
        // and the producer hits backpressure.
        let (tx, rx) = ring_channel::<u64>(4);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..10_000 {
                    tx.send(i);
                }
            });
            for i in 0..10_000 {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None);
        });
    }

    #[test]
    fn ring_batches_cross_threads() {
        let (tx, rx) = ring_channel::<u32>(16);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // Batches larger than capacity must publish in chunks.
                tx.send_batch((0..100).collect());
                tx.send_batch((100..103).collect());
                tx.send_batch(Vec::new());
                tx.send(103);
            });
            let mut got = Vec::new();
            let mut buf = Vec::new();
            loop {
                buf.clear();
                let n = rx.recv_batch(&mut buf, 7);
                if n == 0 {
                    break;
                }
                got.append(&mut buf);
            }
            assert_eq!(got, (0..104).collect::<Vec<u32>>());
            let stats = rx.stats();
            assert_eq!(stats.sends, 104);
            assert_eq!(stats.batched_sends, 2);
        });
    }

    #[test]
    fn ring_drops_sends_after_receiver_gone() {
        let (tx, rx) = ring_channel::<String>(2);
        tx.send("kept-then-freed".to_string());
        drop(rx);
        // Must not block (ring is size 2 and nobody drains) or leak.
        for i in 0..10 {
            tx.send(format!("dropped {i}"));
        }
        tx.send_batch(vec!["batch".to_string(); 10]);
    }

    #[test]
    fn ring_sender_drop_wakes_blocked_receiver() {
        let (tx, rx) = ring_channel::<u8>(4);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // Let the receiver reach its parked state first.
                std::thread::sleep(std::time::Duration::from_millis(20));
                drop(tx);
            });
            assert_eq!(rx.recv(), None);
        });
    }

    #[test]
    fn ring_receiver_drop_unblocks_full_producer() {
        let (tx, rx) = ring_channel::<u64>(2);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // 2 fit, the rest must stall on the full ring until the
                // receiver drop flips rx_gone.
                for i in 0..100 {
                    tx.send(i);
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
        });
    }

    #[test]
    fn ring_counts_full_stalls() {
        let (tx, rx) = ring_channel::<u32>(2);
        tx.send(1);
        tx.send(2);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                tx.send(3); // must stall: ring full until a recv
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(rx.recv(), Some(1));
            assert_eq!(rx.recv(), Some(2));
            assert_eq!(rx.recv(), Some(3));
        });
        assert!(rx.stats().full_stalls >= 1);
        assert_eq!(rx.stats().sends, 3);
    }

    #[test]
    fn lane_kinds_parse_and_label() {
        assert_eq!(LaneKind::parse("ring"), Some(LaneKind::Ring));
        assert_eq!(LaneKind::parse("mutex"), Some(LaneKind::MutexRef));
        assert_eq!(LaneKind::parse("bogus"), None);
        for kind in [LaneKind::Ring, LaneKind::MutexRef] {
            assert_eq!(LaneKind::parse(kind.label()), Some(kind));
        }
    }

    #[test]
    fn lane_channel_both_kinds_fifo() {
        for kind in [LaneKind::Ring, LaneKind::MutexRef] {
            let (tx, rx) = lane_channel::<u32>(kind, 8);
            tx.send_batch(vec![1, 2, 3]);
            tx.send(4);
            let mut buf = Vec::new();
            assert_eq!(rx.recv_batch(&mut buf, 2), 2);
            assert_eq!(rx.recv(), Some(3));
            assert_eq!(rx.try_recv(), Some(4));
            assert_eq!(rx.try_recv(), None);
            assert_eq!(buf, vec![1, 2]);
            let stats = tx.stats();
            assert_eq!(stats.sends, 4, "{kind:?}");
            assert_eq!(stats.batched_sends, 1, "{kind:?}");
            drop(tx);
            assert_eq!(rx.recv(), None);
        }
    }

    #[test]
    fn workers_preserve_per_shard_order() {
        let states: Vec<Vec<u32>> = vec![Vec::new(); 4];
        let (states, got) = with_shard_workers(
            states,
            |shard, log, cmd: u32| {
                log.push(cmd);
                cmd + shard as u32
            },
            |workers| {
                let mut expect = 0u32;
                for round in 0..50u32 {
                    for shard in 0..workers.len() {
                        workers.send(shard, round);
                        expect += round + shard as u32;
                    }
                }
                let mut got = 0u32;
                for _round in 0..50 {
                    for shard in 0..workers.len() {
                        got += workers.recv(shard);
                    }
                }
                assert_eq!(got, expect);
                got
            },
        );
        assert!(got > 0);
        for log in &states {
            assert_eq!(*log, (0..50).collect::<Vec<u32>>(), "per-shard FIFO");
        }
    }

    #[test]
    fn workers_on_mutex_reference_lanes_match() {
        let config = WorkerConfig {
            lanes: LaneKind::MutexRef,
            ..WorkerConfig::default()
        };
        let (states, ()) = with_shard_workers_configured(
            &config,
            vec![Vec::new(); 3],
            |_, log: &mut Vec<u32>, cmd: u32| log.push(cmd),
            |workers| {
                for round in 0..20 {
                    for shard in 0..workers.len() {
                        workers.send(shard, round);
                    }
                }
                for _round in 0..20 {
                    for shard in 0..workers.len() {
                        workers.recv(shard);
                    }
                }
            },
        );
        for log in &states {
            assert_eq!(*log, (0..20).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn worker_send_batch_and_lane_stats() {
        let (states, stats) = with_shard_workers(
            vec![0u64; 2],
            |_, total, cmd: u64| {
                *total += cmd;
                cmd
            },
            |workers| {
                workers.send_batch(0, (1..=100).collect());
                workers.send_batch(1, (1..=50).collect());
                for _ in 0..100 {
                    workers.recv(0);
                }
                for _ in 0..50 {
                    workers.recv(1);
                }
                workers.lane_stats()
            },
        );
        assert_eq!(states, vec![5050, 1275]);
        // 150 commands + 150 replies crossed lanes; exactly two command
        // batches were issued.
        assert_eq!(stats.sends, 300);
        assert_eq!(stats.batched_sends, 2);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn workers_pin_when_asked() {
        let config = WorkerConfig {
            // CPU 0 always exists; pin both workers to it.
            pins: vec![Some(0), Some(0)],
            ..WorkerConfig::default()
        };
        let (_, pinned) = with_shard_workers_configured(
            &config,
            vec![(), ()],
            |_, _, cmd: u8| cmd,
            |workers| {
                // One round trip per worker guarantees both workers ran
                // their pin preamble before we read the counter.
                for shard in 0..workers.len() {
                    workers.send(shard, 1);
                }
                for shard in 0..workers.len() {
                    workers.recv(shard);
                }
                workers.workers_pinned()
            },
        );
        assert_eq!(pinned, 2);
    }

    #[test]
    fn states_come_back_mutated() {
        let (states, ()) = with_shard_workers(
            vec![0u64; 3],
            |_, count, delta: u64| {
                *count += delta;
            },
            |workers| {
                for shard in 0..workers.len() {
                    workers.send(shard, 10);
                    workers.send(shard, 32);
                }
                for shard in 0..workers.len() {
                    workers.recv(shard);
                    workers.recv(shard);
                }
            },
        );
        assert_eq!(states, vec![42, 42, 42]);
    }

    #[test]
    fn single_shard_runs_inline() {
        let (states, answers) = with_shard_workers(
            vec![String::new()],
            |_, s, cmd: &str| {
                s.push_str(cmd);
                s.len()
            },
            |workers| {
                assert_eq!(workers.len(), 1);
                workers.send(0, "ab");
                workers.send(0, "c");
                assert_eq!(workers.lane_stats(), LaneStats::default());
                vec![workers.recv(0), workers.recv(0)]
            },
        );
        assert_eq!(states, vec!["abc".to_string()]);
        assert_eq!(answers, vec![2, 3]);
    }

    #[test]
    fn empty_pool_is_fine() {
        let (states, out) =
            with_shard_workers(Vec::<u8>::new(), |_, _, _: u8| 0u8, |workers| workers.len());
        assert!(states.is_empty());
        assert_eq!(out, 0);
    }

    #[test]
    fn interleaved_send_recv_pipelines() {
        // Send a batch, receive some, send more: the lanes stay aligned.
        let (_, ()) = with_shard_workers(
            vec![0u32; 2],
            |_, total, cmd: u32| {
                *total += cmd;
                *total
            },
            |workers| {
                workers.send(0, 5);
                workers.send(1, 7);
                assert_eq!(workers.recv(0), 5);
                workers.send(0, 5);
                assert_eq!(workers.recv(0), 10);
                assert_eq!(workers.recv(1), 7);
            },
        );
    }

    #[test]
    #[should_panic(expected = "terminated before replying")]
    fn worker_panic_propagates() {
        let _ = with_shard_workers(
            vec![0u8, 0u8],
            |shard, _, _: u8| {
                if shard == 1 {
                    panic!("worker boom");
                }
                0u8
            },
            |workers| {
                workers.send(0, 1);
                workers.send(1, 1);
                let a = workers.recv(0);
                // Worker 1 dies before replying: its reply lane closes, so
                // recv panics instead of blocking forever, and the scope
                // still joins the dead worker on the way out.
                let b = workers.recv(1);
                a + b
            },
        );
    }

    #[test]
    fn worker_backends_parse_and_label() {
        assert_eq!(WorkerBackend::parse("thread"), Some(WorkerBackend::Thread));
        assert_eq!(
            WorkerBackend::parse("process"),
            Some(WorkerBackend::Process)
        );
        assert_eq!(WorkerBackend::parse("bogus"), None);
        for backend in [WorkerBackend::Thread, WorkerBackend::Process] {
            assert_eq!(WorkerBackend::parse(backend.label()), Some(backend));
        }
        assert_eq!(WorkerConfig::default().backend, WorkerBackend::Thread);
    }

    /// `cat` is a perfectly deterministic 1:1 frame echo: the length
    /// prefix and payload pass through byte-for-byte, so it stands in for
    /// a shard worker in supervisor tests.
    #[cfg(unix)]
    fn cat_pool(shards: usize) -> ProcessPool {
        ProcessPool::spawn(shards, |_| std::process::Command::new("cat")).expect("spawn cat pool")
    }

    #[cfg(unix)]
    #[test]
    fn process_pool_round_trips_frames() {
        let mut pool = cat_pool(2);
        pool.install_checkpoint(0, b"INIT0".to_vec());
        pool.install_checkpoint(1, b"INIT1".to_vec());
        pool.send(0, b"alpha".to_vec());
        pool.send(1, b"beta".to_vec());
        pool.send(0, b"gamma".to_vec());
        assert_eq!(pool.recv(0), b"alpha");
        assert_eq!(pool.recv(1), b"beta");
        assert_eq!(pool.recv(0), b"gamma");
        assert_eq!(pool.restarts(), 0);
        pool.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn process_pool_recovers_from_sigkill() {
        let mut pool = cat_pool(1);
        pool.install_checkpoint(0, b"CHECKPOINT".to_vec());
        pool.send(0, b"one".to_vec());
        assert_eq!(pool.recv(0), b"one");

        // SIGKILL the child, then keep streaming: the supervisor must
        // respawn it, replay checkpoint + journal, discard the one
        // already-delivered reply, and hand back exactly the new ones.
        let pid = pool.pid(0);
        let killed = std::process::Command::new("kill")
            .args(["-9", &pid.to_string()])
            .status()
            .expect("run kill");
        assert!(killed.success());
        std::thread::sleep(std::time::Duration::from_millis(50));

        pool.send(0, b"two".to_vec());
        // The replayed duplicate of "one" is discarded by the supervisor;
        // the caller sees exactly the reply it had not yet consumed.
        assert_eq!(pool.recv(0), b"two");
        assert!(pool.restarts() >= 1);
        assert_ne!(pool.pid(0), pid, "a fresh process took over");
        pool.shutdown();
    }

    #[cfg(unix)]
    #[test]
    #[should_panic(expected = "died before a checkpoint")]
    fn process_pool_without_checkpoint_escalates() {
        let mut pool = cat_pool(1);
        let pid = pool.pid(0);
        std::process::Command::new("kill")
            .args(["-9", &pid.to_string()])
            .status()
            .expect("run kill");
        std::thread::sleep(std::time::Duration::from_millis(50));
        pool.send(0, b"doomed".to_vec());
        let _ = pool.recv(0);
    }

    #[cfg(unix)]
    #[test]
    #[should_panic(expected = "exited with")]
    fn process_pool_shutdown_propagates_nonzero_exit() {
        let mut pool = ProcessPool::spawn(1, |_| {
            let mut cmd = std::process::Command::new("sh");
            cmd.args(["-c", "cat; exit 3"]);
            cmd
        })
        .expect("spawn sh pool");
        pool.install_checkpoint(0, b"INIT".to_vec());
        pool.shutdown();
    }
}

//! Strongly-typed identifiers for VMs, servers, clusters, and subscriptions.
//!
//! Newtypes keep the scheduler honest: a [`VmId`] cannot be confused with a
//! [`ServerId`] even though both wrap `u64`.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wrap a raw numeric id.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw numeric id.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of a single VM instance (one allocation/deallocation pair).
    VmId,
    "vm-"
);
id_type!(
    /// Identifier of a physical server.
    ServerId,
    "srv-"
);
id_type!(
    /// Identifier of a cluster (a homogeneous pool of servers).
    ClusterId,
    "cluster-"
);
id_type!(
    /// Identifier of a customer subscription. VMs from the same subscription
    /// tend to behave alike (§2.3, Fig 12) — the prediction model groups by it.
    SubscriptionId,
    "sub-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_and_display() {
        let vm = VmId::new(42);
        assert_eq!(vm.raw(), 42);
        assert_eq!(vm.to_string(), "vm-42");
        assert_eq!(u64::from(vm), 42);
        assert_eq!(VmId::from(42u64), vm);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(ServerId::new(1));
        set.insert(ServerId::new(1));
        set.insert(ServerId::new(2));
        assert_eq!(set.len(), 2);
        assert!(ServerId::new(1) < ServerId::new(2));
    }

    #[test]
    fn distinct_prefixes() {
        assert_eq!(ClusterId::new(3).to_string(), "cluster-3");
        assert_eq!(SubscriptionId::new(7).to_string(), "sub-7");
        assert_eq!(ServerId::new(9).to_string(), "srv-9");
    }
}

//! Windowed utilization statistics and the lazy demand-derivation contract.
//!
//! The demand pipeline (oracle derivation, model training, accuracy
//! experiments) never needs a VM's full 5-minute utilization series — it
//! needs the *per-window* structure: the maximum inside each time window of
//! each day, the lifetime per-window maximum, and a percentile of the
//! per-day maxima (Formulas 1–2). [`WindowStats`] captures exactly that, in
//! one flat buffer built in one pass, and [`UtilizationSource`] is the
//! interface through which consumers ask for it **without** forcing the
//! producer to materialize ~4k samples per resource first: an analytic
//! profile can derive the statistics directly from its closed form, while a
//! recorded series walks its samples once ([`WindowStats::from_series`], the
//! reference implementation).

use crate::resource::{ResourceKind, ResourceVec};
use crate::series::{percentile_of, percentile_of_sorted, Percentile, ResourceSeries, UtilSeries};
use crate::time::{TimeWindows, Timestamp, TICKS_PER_DAY};
use serde::{Deserialize, Serialize};

/// Per-window utilization statistics of one resource over a `[start, end)`
/// span: the maximum utilization inside each `(day, window)` cell plus the
/// per-window lifetime maximum.
///
/// Built either from recorded samples ([`WindowStats::from_series`] /
/// [`WindowStats::from_samples`], the eager reference) or analytically by a
/// profile-backed [`UtilizationSource`] via [`WindowStats::from_parts`].
///
/// # Example
///
/// ```
/// use coach_types::{Percentile, TimeWindows, Timestamp, UtilSeries};
/// use coach_types::stats::WindowStats;
///
/// let s = UtilSeries::from_samples(Timestamp::ZERO, vec![0.2; 288]);
/// let ws = WindowStats::from_series(&s, TimeWindows::paper_default());
/// assert_eq!(ws.days(), 1);
/// assert_eq!(ws.day_max(0, 3), Some(0.2));
/// assert_eq!(ws.lifetime_max(3), 0.2);
/// assert_eq!(ws.maxima_percentile(3, Percentile::P95), 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    tw: TimeWindows,
    first_day: u64,
    days: usize,
    /// Flat per-day window maxima, `[day * tw.count() + window]`;
    /// [`WindowStats::UNCOVERED`] marks cells no sample fell into.
    per_day_max: Vec<f32>,
    /// Maximum per window across all covered days (0.0 if never covered).
    lifetime_max: Vec<f32>,
}

impl WindowStats {
    /// Sentinel marking a `(day, window)` cell no sample ever covered.
    /// Utilization fractions live in `[0, 1]`, so any negative value is
    /// unambiguous.
    pub const UNCOVERED: f32 = -1.0;

    /// Statistics with no covered days.
    pub fn empty(tw: TimeWindows, first_day: u64) -> Self {
        WindowStats {
            tw,
            first_day,
            days: 0,
            per_day_max: Vec::new(),
            lifetime_max: vec![0.0; tw.count()],
        }
    }

    /// Build from raw 5-minute samples starting at `start` — the eager
    /// reference implementation every lazy producer is validated against.
    /// One pass, no intermediate allocation.
    pub fn from_samples(tw: TimeWindows, start: Timestamp, samples: &[f32]) -> Self {
        let wcount = tw.count();
        if samples.is_empty() {
            return WindowStats::empty(tw, start.day());
        }
        let first_day = start.day();
        let end_tick = start.ticks() + samples.len() as u64;
        let last_day = (end_tick - 1) / TICKS_PER_DAY;
        let days = (last_day - first_day + 1) as usize;
        let mut per_day_max = vec![Self::UNCOVERED; days * wcount];

        let wticks = tw.window_ticks();
        let mut tod = start.ticks() % TICKS_PER_DAY;
        let mut day = 0usize;
        let mut w = (tod / wticks) as usize;
        let mut to_boundary = wticks - (tod % wticks);
        for &v in samples {
            let slot = &mut per_day_max[day * wcount + w];
            if v > *slot {
                *slot = v;
            }
            tod += 1;
            to_boundary -= 1;
            if to_boundary == 0 {
                to_boundary = wticks;
                w += 1;
                if tod == TICKS_PER_DAY {
                    tod = 0;
                    w = 0;
                    day += 1;
                }
            }
        }
        WindowStats::from_parts(tw, first_day, days, per_day_max)
    }

    /// Build from one resource of a recorded series.
    pub fn from_series(s: &UtilSeries, tw: TimeWindows) -> Self {
        WindowStats::from_samples(tw, s.start(), s.samples())
    }

    /// Assemble from an externally computed flat per-day-maxima buffer
    /// (`[day * tw.count() + window]`, [`WindowStats::UNCOVERED`] for cells
    /// without samples). This is the constructor analytic
    /// [`UtilizationSource`] implementations use; the lifetime maxima are
    /// derived here so they can never disagree with the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `per_day_max.len() != days * tw.count()`.
    pub fn from_parts(tw: TimeWindows, first_day: u64, days: usize, per_day_max: Vec<f32>) -> Self {
        let wcount = tw.count();
        assert_eq!(
            per_day_max.len(),
            days * wcount,
            "per-day maxima buffer must be days x windows"
        );
        let mut lifetime_max = vec![0.0f32; wcount];
        for day in per_day_max.chunks_exact(wcount.max(1)) {
            for (slot, &v) in lifetime_max.iter_mut().zip(day) {
                if v > *slot {
                    *slot = v;
                }
            }
        }
        WindowStats {
            tw,
            first_day,
            days,
            per_day_max,
            lifetime_max,
        }
    }

    /// The window partition the statistics are expressed over.
    pub fn tw(&self) -> TimeWindows {
        self.tw
    }

    /// Absolute day index of row 0.
    pub fn first_day(&self) -> u64 {
        self.first_day
    }

    /// Number of day rows (days spanned by the source range).
    pub fn days(&self) -> usize {
        self.days
    }

    /// Maximum utilization in window `w` of day row `day`, or `None` if no
    /// sample covered that cell (partial first/last days).
    pub fn day_max(&self, day: usize, w: usize) -> Option<f32> {
        let v = self.per_day_max[day * self.tw.count() + w];
        (v >= 0.0).then_some(v)
    }

    /// Like [`WindowStats::day_max`] but uncovered cells read as 0.0 — the
    /// convention the prediction stack uses for partial days.
    pub fn day_max_or_zero(&self, day: usize, w: usize) -> f32 {
        self.per_day_max[day * self.tw.count() + w].max(0.0)
    }

    /// One day row of the flat buffer ([`WindowStats::UNCOVERED`] marks
    /// cells without samples).
    pub fn day_row(&self, day: usize) -> &[f32] {
        let wcount = self.tw.count();
        &self.per_day_max[day * wcount..(day + 1) * wcount]
    }

    /// Maximum utilization of window `w` across all covered days ("lifetime
    /// time window max", Fig 7); 0.0 if the window was never covered.
    pub fn lifetime_max(&self, w: usize) -> f32 {
        self.lifetime_max[w]
    }

    /// All per-window lifetime maxima.
    pub fn lifetime_maxima(&self) -> &[f32] {
        &self.lifetime_max
    }

    /// Maximum across every window and day — equals the source series' max.
    pub fn overall_max(&self) -> f32 {
        self.lifetime_max.iter().copied().fold(0.0, f32::max)
    }

    /// Percentile of window `w`'s per-day maxima (`PX_t` of Formula 1),
    /// with uncovered cells counting as 0.0. Allocation-free for spans up
    /// to 64 days (sorting a stack copy is bit-identical to
    /// [`percentile_of`] on the collected column).
    pub fn maxima_percentile(&self, w: usize, p: Percentile) -> f32 {
        if self.days == 0 {
            return 0.0;
        }
        if self.days <= 64 {
            let mut buf = [0.0f32; 64];
            let buf = &mut buf[..self.days];
            for (d, slot) in buf.iter_mut().enumerate() {
                *slot = self.day_max_or_zero(d, w);
            }
            buf.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            percentile_of_sorted(buf, p)
        } else {
            let vals: Vec<f32> = (0..self.days).map(|d| self.day_max_or_zero(d, w)).collect();
            percentile_of(&vals, p)
        }
    }
}

/// One [`WindowStats`] per resource kind, sharing the partition and day
/// range (the windowed analogue of [`ResourceSeries`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceWindowStats {
    per_resource: [WindowStats; ResourceKind::COUNT],
}

impl ResourceWindowStats {
    /// Bundle four per-resource statistics (canonical order).
    ///
    /// # Panics
    ///
    /// Panics if they disagree on partition, first day, or day count.
    pub fn new(per_resource: [WindowStats; ResourceKind::COUNT]) -> Self {
        let (tw, first, days) = (
            per_resource[0].tw(),
            per_resource[0].first_day(),
            per_resource[0].days(),
        );
        assert!(
            per_resource
                .iter()
                .all(|s| s.tw() == tw && s.first_day() == first && s.days() == days),
            "resource window stats must be aligned"
        );
        ResourceWindowStats { per_resource }
    }

    /// Eager reference: one pass per resource over a recorded series.
    pub fn from_series(rs: &ResourceSeries, tw: TimeWindows) -> Self {
        ResourceWindowStats::new(
            ResourceKind::ALL.map(|kind| WindowStats::from_series(rs.get(kind), tw)),
        )
    }

    /// The statistics of one resource.
    pub fn get(&self, kind: ResourceKind) -> &WindowStats {
        &self.per_resource[kind.index()]
    }

    /// The window partition.
    pub fn tw(&self) -> TimeWindows {
        self.per_resource[0].tw()
    }

    /// Number of day rows.
    pub fn days(&self) -> usize {
        self.per_resource[0].days()
    }

    /// Absolute day index of row 0.
    pub fn first_day(&self) -> u64 {
        self.per_resource[0].first_day()
    }

    /// Per-resource maxima of one `(day, window)` cell, uncovered cells as
    /// 0.0.
    pub fn day_window_max(&self, day: usize, w: usize) -> ResourceVec {
        let mut v = ResourceVec::ZERO;
        for kind in ResourceKind::ALL {
            v[kind] = f64::from(self.get(kind).day_max_or_zero(day, w));
        }
        v
    }

    /// Per-resource lifetime maximum of window `w` (`Pmax_t` of Formula 2).
    pub fn lifetime_window_max(&self, w: usize) -> ResourceVec {
        let mut v = ResourceVec::ZERO;
        for kind in ResourceKind::ALL {
            v[kind] = f64::from(self.get(kind).lifetime_max(w));
        }
        v
    }

    /// Per-resource percentile of window `w`'s per-day maxima (`PX_t` of
    /// Formula 1).
    pub fn maxima_percentile(&self, w: usize, p: Percentile) -> ResourceVec {
        let mut v = ResourceVec::ZERO;
        for kind in ResourceKind::ALL {
            v[kind] = f64::from(self.get(kind).maxima_percentile(w, p));
        }
        v
    }
}

/// Anything that can answer utilization queries for a VM: a recorded series
/// (eager) or a behavior profile (analytic, lazy).
///
/// The key method is [`UtilizationSource::window_stats`]: consumers that
/// only need windowed statistics — the oracle, model training, accuracy
/// experiments — ask for them directly, and the producer is free to derive
/// them far cheaper than materializing every 5-minute sample. Point queries
/// stay available for consumers that genuinely sample the timeline (the
/// violation sweep).
pub trait UtilizationSource {
    /// Utilization fractions of all resources at `t` (zeros outside
    /// coverage).
    fn util_at(&self, t: Timestamp) -> ResourceVec;

    /// Windowed statistics for every resource over `[start, end)`, in one
    /// pass and without materializing the full series.
    fn window_stats(
        &self,
        tw: TimeWindows,
        start: Timestamp,
        end: Timestamp,
    ) -> ResourceWindowStats;
}

impl UtilizationSource for ResourceSeries {
    fn util_at(&self, t: Timestamp) -> ResourceVec {
        self.at(t)
    }

    /// The eager reference: clip `[start, end)` to the recorded range and
    /// walk the samples once per resource.
    fn window_stats(
        &self,
        tw: TimeWindows,
        start: Timestamp,
        end: Timestamp,
    ) -> ResourceWindowStats {
        let lo = start.max(self.start());
        let hi = end.min(self.end());
        if lo >= hi {
            return ResourceWindowStats::new(
                ResourceKind::ALL.map(|_| WindowStats::empty(tw, lo.day())),
            );
        }
        let skip = (lo.ticks() - self.start().ticks()) as usize;
        let take = (hi.ticks() - lo.ticks()) as usize;
        ResourceWindowStats::new(ResourceKind::ALL.map(|kind| {
            let samples = &self.get(kind).samples()[skip..skip + take];
            WindowStats::from_samples(tw, lo, samples)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    /// The original eager algorithm (PR 2 era `window_max_per_day`), kept
    /// in-test as the specification `from_samples` must match.
    fn reference_window_max_per_day(s: &UtilSeries, tw: TimeWindows) -> Vec<Vec<Option<f32>>> {
        if s.is_empty() {
            return Vec::new();
        }
        let first_day = s.start().day();
        let last_day = Timestamp::from_ticks(s.end().ticks().saturating_sub(1)).day();
        let days = (last_day - first_day + 1) as usize;
        let mut out = vec![vec![None; tw.count()]; days];
        for (i, &v) in s.samples().iter().enumerate() {
            let t = Timestamp::from_ticks(s.start().ticks() + i as u64);
            let d = (t.day() - first_day) as usize;
            let w = tw.window_of(t);
            let slot = &mut out[d][w];
            *slot = Some(slot.map_or(v, |prev: f32| prev.max(v)));
        }
        out
    }

    #[test]
    fn empty_stats() {
        let tw = TimeWindows::paper_default();
        let ws = WindowStats::from_samples(tw, Timestamp::from_days(3), &[]);
        assert_eq!(ws.days(), 0);
        assert_eq!(ws.first_day(), 3);
        assert_eq!(ws.lifetime_max(0), 0.0);
        assert_eq!(ws.maxima_percentile(0, Percentile::P95), 0.0);
        assert_eq!(ws.overall_max(), 0.0);
    }

    #[test]
    fn partial_day_coverage() {
        let tw = TimeWindows::paper_default();
        // One hour of samples starting at 05:00: only window 1 (04-08h)
        // covered.
        let s = UtilSeries::from_samples(Timestamp::from_hours(5), vec![0.4; 12]);
        let ws = s.window_stats(tw);
        assert_eq!(ws.days(), 1);
        assert_eq!(ws.day_max(0, 1), Some(0.4));
        assert_eq!(ws.day_max(0, 0), None);
        assert_eq!(ws.day_max_or_zero(0, 0), 0.0);
        assert_eq!(ws.lifetime_max(1), 0.4);
        assert_eq!(ws.overall_max(), 0.4);
        assert_eq!(ws.day_row(0)[0], WindowStats::UNCOVERED);
    }

    #[test]
    fn percentile_of_per_day_maxima() {
        let tw = TimeWindows::single();
        // Three full days with daily maxima 0.1, 0.2, 0.3.
        let mut samples = Vec::new();
        for d in 0..3 {
            samples.extend(std::iter::repeat_n(
                (d + 1) as f32 / 10.0,
                TICKS_PER_DAY as usize,
            ));
        }
        let ws = WindowStats::from_samples(tw, Timestamp::ZERO, &samples);
        assert_eq!(ws.days(), 3);
        assert_eq!(ws.lifetime_max(0), 0.3);
        assert_eq!(ws.maxima_percentile(0, Percentile::MAX), 0.3);
        assert_eq!(ws.maxima_percentile(0, Percentile::P50), 0.2);
    }

    #[test]
    fn from_parts_derives_lifetime() {
        let tw = TimeWindows::new(2);
        let buf = vec![0.5, WindowStats::UNCOVERED, 0.2, 0.7];
        let ws = WindowStats::from_parts(tw, 4, 2, buf);
        assert_eq!(ws.lifetime_max(0), 0.5);
        assert_eq!(ws.lifetime_max(1), 0.7);
        assert_eq!(ws.day_max(0, 1), None);
        assert_eq!(ws.day_max(1, 0), Some(0.2));
    }

    #[test]
    #[should_panic(expected = "days x windows")]
    fn from_parts_rejects_bad_shape() {
        let _ = WindowStats::from_parts(TimeWindows::new(2), 0, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_bundle_rejected() {
        let tw = TimeWindows::new(2);
        let a = WindowStats::empty(tw, 0);
        let b = WindowStats::from_parts(tw, 0, 1, vec![0.1, 0.2]);
        let _ = ResourceWindowStats::new([a.clone(), b, a.clone(), a]);
    }

    #[test]
    fn resource_series_source_clips_range() {
        let mut rs = ResourceSeries::empty(Timestamp::from_hours(1));
        for _ in 0..24 {
            rs.push(ResourceVec::new(0.5, 0.25, 0.1, 0.0));
        }
        let tw = TimeWindows::paper_default();
        // Query a superset of the coverage: clipped to the recorded range.
        let stats = rs.window_stats(tw, Timestamp::ZERO, Timestamp::from_days(2));
        assert_eq!(stats.days(), 1);
        assert_eq!(stats.get(ResourceKind::Cpu).day_max(0, 0), Some(0.5));
        let v = stats.day_window_max(0, 0);
        assert_eq!(v[ResourceKind::Memory], 0.25);
        // Disjoint query: empty.
        let empty = rs.window_stats(tw, Timestamp::from_days(5), Timestamp::from_days(6));
        assert_eq!(empty.days(), 0);
        // Point query passthrough.
        assert_eq!(
            UtilizationSource::util_at(&rs, Timestamp::from_hours(1))[ResourceKind::Cpu],
            0.5
        );
    }

    proptest! {
        #[test]
        fn prop_from_samples_matches_reference(
            v in prop::collection::vec(0.0f32..1.0, 1..900),
            start in 0u64..600,
            wpd_idx in 0usize..5,
        ) {
            let tw = TimeWindows::new([1u32, 2, 3, 6, 24][wpd_idx]);
            let s = UtilSeries::from_samples(Timestamp::from_ticks(start), v);
            let ws = WindowStats::from_series(&s, tw);
            let reference = reference_window_max_per_day(&s, tw);
            prop_assert_eq!(ws.days(), reference.len());
            for (d, day) in reference.iter().enumerate() {
                for (w, &expect) in day.iter().enumerate() {
                    prop_assert_eq!(ws.day_max(d, w), expect);
                }
            }
            // Lifetime maxima dominate every day and equal the fold.
            for w in tw.indices() {
                let expect = reference
                    .iter()
                    .filter_map(|day| day[w])
                    .fold(0.0f32, f32::max);
                prop_assert_eq!(ws.lifetime_max(w), expect);
            }
        }

        #[test]
        fn prop_percentile_below_lifetime_max(
            v in prop::collection::vec(0.0f32..1.0, 288..900),
            p in 0.0f64..100.0,
        ) {
            let tw = TimeWindows::paper_default();
            let ws = WindowStats::from_samples(tw, Timestamp::ZERO, &v);
            for w in tw.indices() {
                let px = ws.maxima_percentile(w, Percentile::new(p));
                prop_assert!(px <= ws.lifetime_max(w) + 1e-6);
            }
        }
    }

    #[test]
    fn overall_max_equals_series_max() {
        let s = UtilSeries::from_samples(
            Timestamp::from_hours(7),
            (0..500).map(|i| (i % 97) as f32 / 100.0).collect(),
        );
        let ws = s.window_stats(TimeWindows::paper_default());
        assert_eq!(ws.overall_max(), s.max());
        let _ = SimDuration::ZERO; // keep the import exercised
    }
}

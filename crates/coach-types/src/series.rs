//! Utilization time series sampled at 5-minute ticks, with the percentile
//! and per-window aggregation helpers used across the system.
//!
//! A [`UtilSeries`] stores *fractions of the allocated resource* in `[0, 1]`
//! (the paper reports max utilization per 5-minute interval; §2 methodology).
//! [`ResourceSeries`] bundles one series per [`ResourceKind`].

use crate::resource::{ResourceKind, ResourceVec};
use crate::time::{TimeWindows, Timestamp, TICKS_PER_DAY};
use serde::{Deserialize, Serialize};

/// A percentile in `[0, 100]`, e.g. `Percentile::P95`.
///
/// # Example
///
/// ```
/// use coach_types::Percentile;
/// let p = Percentile::new(95.0);
/// assert_eq!(p.value(), 95.0);
/// assert_eq!(p, Percentile::P95);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Percentile(f64);

impl Percentile {
    /// The 50th percentile (median) — AggrCoach's operating point.
    pub const P50: Percentile = Percentile(50.0);
    /// The 80th percentile.
    pub const P80: Percentile = Percentile(80.0);
    /// The 95th percentile — Coach's default operating point (§3.3).
    pub const P95: Percentile = Percentile(95.0);
    /// The maximum (100th percentile).
    pub const MAX: Percentile = Percentile(100.0);

    /// Construct a percentile.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[0, 100]` or not finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite() && (0.0..=100.0).contains(&value));
        Percentile(value)
    }

    /// The percentile value in `[0, 100]`.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// As a fraction in `[0, 1]`.
    pub const fn fraction(self) -> f64 {
        self.0 / 100.0
    }
}

impl std::fmt::Display for Percentile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Compute the `p`th percentile of a slice by linear interpolation
/// (the "linear" / type-7 estimator). Returns 0.0 for an empty slice.
///
/// ```
/// use coach_types::{series::percentile_of, Percentile};
/// let v = [0.0f32, 1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_of(&v, Percentile::new(50.0)), 2.0);
/// assert_eq!(percentile_of(&v, Percentile::MAX), 4.0);
/// ```
pub fn percentile_of(values: &[f32], p: Percentile) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_of_sorted(&sorted, p)
}

/// Percentile of an already-sorted slice (ascending). See [`percentile_of`].
pub fn percentile_of_sorted(sorted: &[f32], p: Percentile) -> f32 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p.fraction() * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = (rank - lo as f64) as f32;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// A utilization time series: one `f32` fraction per 5-minute tick, starting
/// at `start`.
///
/// # Example
///
/// ```
/// use coach_types::{Timestamp, UtilSeries, Percentile};
/// let s = UtilSeries::from_samples(Timestamp::ZERO, vec![0.1, 0.5, 0.3]);
/// assert_eq!(s.max(), 0.5);
/// assert!(s.mean() > 0.29 && s.mean() < 0.31);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilSeries {
    start: Timestamp,
    samples: Vec<f32>,
}

impl UtilSeries {
    /// Build from raw samples. Values are clamped to `[0, 1]`.
    pub fn from_samples(start: Timestamp, samples: Vec<f32>) -> Self {
        let samples = samples
            .into_iter()
            .map(|v| {
                if v.is_finite() {
                    v.clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect();
        UtilSeries { start, samples }
    }

    /// An empty series starting at `start`.
    pub fn empty(start: Timestamp) -> Self {
        UtilSeries {
            start,
            samples: Vec::new(),
        }
    }

    /// First sample's timestamp.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Timestamp one past the last sample.
    pub fn end(&self) -> Timestamp {
        Timestamp::from_ticks(self.start.ticks() + self.samples.len() as u64)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Append one sample (clamped to `[0, 1]`).
    pub fn push(&mut self, value: f32) {
        let v = if value.is_finite() {
            value.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.samples.push(v);
    }

    /// Sample at an absolute timestamp, or `None` if out of range.
    pub fn at(&self, t: Timestamp) -> Option<f32> {
        if t < self.start {
            return None;
        }
        self.samples
            .get((t.ticks() - self.start.ticks()) as usize)
            .copied()
    }

    /// Maximum over the whole series (0.0 if empty) — the "lifetime max"
    /// allocation a pattern-oblivious oversubscription scheme would use.
    pub fn max(&self) -> f32 {
        self.samples.iter().copied().fold(0.0, f32::max)
    }

    /// Minimum over the whole series (0.0 if empty).
    pub fn min(&self) -> f32 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(1.0, f32::min)
        }
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f32 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f32>() / self.samples.len() as f32
        }
    }

    /// Percentile over the whole series.
    pub fn percentile(&self, p: Percentile) -> f32 {
        percentile_of(&self.samples, p)
    }

    /// The P95 − P5 utilization *range* (§2.3's variability metric).
    pub fn range_p95_p5(&self) -> f32 {
        self.percentile(Percentile::new(95.0)) - self.percentile(Percentile::new(5.0))
    }

    /// Per-window statistics (per-day maxima, lifetime maxima, percentiles
    /// of per-day maxima) computed in one pass over the samples into a flat
    /// buffer — the reference implementation lazy
    /// [`crate::stats::UtilizationSource`] producers are validated against.
    pub fn window_stats(&self, tw: TimeWindows) -> crate::stats::WindowStats {
        crate::stats::WindowStats::from_series(self, tw)
    }

    /// Percentile of the samples falling in window `w` (across all days).
    pub fn window_percentile(&self, tw: TimeWindows, w: usize, p: Percentile) -> f32 {
        let mut vals = Vec::new();
        for (i, &v) in self.samples.iter().enumerate() {
            let t = Timestamp::from_ticks(self.start.ticks() + i as u64);
            if tw.window_of(t) == w {
                vals.push(v);
            }
        }
        percentile_of(&vals, p)
    }

    /// Iterate per-day chunks of the series (aligned to day boundaries) as
    /// `(day start, samples)` pairs. Borrows the sample buffer — no clones.
    pub fn days(&self) -> impl Iterator<Item = (Timestamp, &[f32])> + '_ {
        let mut idx = 0usize;
        let mut t = self.start;
        std::iter::from_fn(move || {
            if idx >= self.samples.len() {
                return None;
            }
            let day_end = (t.day() + 1) * TICKS_PER_DAY;
            let take = ((day_end - t.ticks()) as usize).min(self.samples.len() - idx);
            let chunk = (t, &self.samples[idx..idx + take]);
            idx += take;
            t = Timestamp::from_ticks(day_end);
            Some(chunk)
        })
    }
}

/// One [`UtilSeries`] per resource kind, sharing a common start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSeries {
    per_resource: [UtilSeries; ResourceKind::COUNT],
}

impl ResourceSeries {
    /// Build from four per-resource series (canonical order).
    ///
    /// # Panics
    ///
    /// Panics if the series do not share start and length.
    pub fn new(series: [UtilSeries; ResourceKind::COUNT]) -> Self {
        let start = series[0].start();
        let len = series[0].len();
        assert!(
            series.iter().all(|s| s.start() == start && s.len() == len),
            "resource series must be aligned"
        );
        ResourceSeries {
            per_resource: series,
        }
    }

    /// An empty bundle starting at `start`.
    pub fn empty(start: Timestamp) -> Self {
        ResourceSeries {
            per_resource: [
                UtilSeries::empty(start),
                UtilSeries::empty(start),
                UtilSeries::empty(start),
                UtilSeries::empty(start),
            ],
        }
    }

    /// The series for one resource.
    pub fn get(&self, kind: ResourceKind) -> &UtilSeries {
        &self.per_resource[kind.index()]
    }

    /// Push one utilization sample per resource (fractions in `[0, 1]`).
    pub fn push(&mut self, fractions: ResourceVec) {
        for kind in ResourceKind::ALL {
            self.per_resource[kind.index()].push(fractions[kind] as f32);
        }
    }

    /// Number of ticks recorded.
    pub fn len(&self) -> usize {
        self.per_resource[0].len()
    }

    /// True if no ticks recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Start timestamp.
    pub fn start(&self) -> Timestamp {
        self.per_resource[0].start()
    }

    /// End timestamp (one past last sample).
    pub fn end(&self) -> Timestamp {
        self.per_resource[0].end()
    }

    /// Utilization fractions of all resources at `t` (zeros if out of range).
    pub fn at(&self, t: Timestamp) -> ResourceVec {
        let mut v = ResourceVec::ZERO;
        for kind in ResourceKind::ALL {
            v[kind] = f64::from(self.get(kind).at(t).unwrap_or(0.0));
        }
        v
    }

    /// Lifetime maximum utilization per resource.
    pub fn max(&self) -> ResourceVec {
        let mut v = ResourceVec::ZERO;
        for kind in ResourceKind::ALL {
            v[kind] = f64::from(self.get(kind).max());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn percentile_interpolation() {
        let v = [10.0f32, 20.0, 30.0, 40.0];
        assert_eq!(percentile_of(&v, Percentile::new(0.0)), 10.0);
        assert_eq!(percentile_of(&v, Percentile::MAX), 40.0);
        assert_eq!(percentile_of(&v, Percentile::P50), 25.0);
        assert_eq!(percentile_of(&[], Percentile::P95), 0.0);
        assert_eq!(percentile_of(&[7.0], Percentile::P50), 7.0);
    }

    #[test]
    #[should_panic]
    fn percentile_out_of_range_rejected() {
        let _ = Percentile::new(101.0);
    }

    #[test]
    fn series_clamps_and_aggregates() {
        let s = UtilSeries::from_samples(Timestamp::ZERO, vec![-0.5, 0.5, 1.5, f32::NAN]);
        assert_eq!(s.samples(), &[0.0, 0.5, 1.0, 0.0]);
        assert_eq!(s.max(), 1.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn at_respects_start_offset() {
        let start = Timestamp::from_hours(2);
        let s = UtilSeries::from_samples(start, vec![0.1, 0.2]);
        assert_eq!(s.at(Timestamp::ZERO), None);
        assert_eq!(s.at(start), Some(0.1));
        assert_eq!(s.at(start + SimDuration::from_ticks(1)), Some(0.2));
        assert_eq!(s.at(start + SimDuration::from_ticks(2)), None);
    }

    #[test]
    fn window_stats_shapes() {
        let tw = TimeWindows::new(3); // 8-hour windows
                                      // Two full days of samples: value = window index / 10 on day 0,
                                      // (window index + 1) / 10 on day 1.
        let mut samples = Vec::new();
        for day in 0..2 {
            for tick in 0..TICKS_PER_DAY {
                let w = (tick / tw.window_ticks()) as f32;
                samples.push((w + day as f32) / 10.0);
            }
        }
        let s = UtilSeries::from_samples(Timestamp::ZERO, samples);
        let ws = s.window_stats(tw);
        assert_eq!(ws.days(), 2);
        for (w, (d0, d1)) in [(0.0, 0.1), (0.1, 0.2), (0.2, 0.3)].into_iter().enumerate() {
            assert_eq!(ws.day_max(0, w), Some(d0));
            assert_eq!(ws.day_max(1, w), Some(d1));
        }
        assert_eq!(ws.lifetime_maxima(), &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn window_stats_handle_partial_coverage() {
        let tw = TimeWindows::paper_default();
        // Only 1 hour of samples: windows 1.. are uncovered.
        let s = UtilSeries::from_samples(Timestamp::ZERO, vec![0.4; 12]);
        let ws = s.window_stats(tw);
        assert_eq!(ws.days(), 1);
        assert_eq!(ws.day_max(0, 0), Some(0.4));
        assert!((1..tw.count()).all(|w| ws.day_max(0, w).is_none()));
    }

    #[test]
    fn days_split_alignment() {
        // Start mid-day, run for 1.5 days.
        let start = Timestamp::from_hours(12);
        let n = (TICKS_PER_DAY + TICKS_PER_DAY / 2) as usize;
        let s = UtilSeries::from_samples(start, vec![0.3; n]);
        let days: Vec<_> = s.days().collect();
        assert_eq!(days.len(), 2);
        assert_eq!(days[0].1.len(), (TICKS_PER_DAY / 2) as usize);
        assert_eq!(days[1].1.len(), TICKS_PER_DAY as usize);
        assert_eq!(days[1].0.tick_of_day(), 0);
        assert!(UtilSeries::empty(start).days().next().is_none());
    }

    #[test]
    fn resource_series_roundtrip() {
        let mut rs = ResourceSeries::empty(Timestamp::ZERO);
        rs.push(ResourceVec::new(0.5, 0.25, 0.1, 0.0));
        rs.push(ResourceVec::new(0.7, 0.30, 0.1, 0.0));
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(ResourceKind::Cpu).max(), 0.7);
        let at0 = rs.at(Timestamp::ZERO);
        assert_eq!(at0[ResourceKind::Memory], 0.25);
        assert!((rs.max()[ResourceKind::Cpu] - 0.7).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_resource_series_rejected() {
        let a = UtilSeries::from_samples(Timestamp::ZERO, vec![0.1]);
        let b = UtilSeries::from_samples(Timestamp::ZERO, vec![0.1, 0.2]);
        let _ = ResourceSeries::new([a.clone(), b, a.clone(), a]);
    }

    proptest! {
        #[test]
        fn prop_percentile_monotone(mut v in prop::collection::vec(0.0f32..1.0, 1..200),
                                    p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile_of_sorted(&v, Percentile::new(lo));
            let b = percentile_of_sorted(&v, Percentile::new(hi));
            prop_assert!(a <= b + 1e-6);
        }

        #[test]
        fn prop_percentile_bounded(v in prop::collection::vec(0.0f32..1.0, 1..200),
                                   p in 0.0f64..100.0) {
            let x = percentile_of(&v, Percentile::new(p));
            let min = v.iter().copied().fold(1.0f32, f32::min);
            let max = v.iter().copied().fold(0.0f32, f32::max);
            prop_assert!(x >= min - 1e-6 && x <= max + 1e-6);
        }

        #[test]
        fn prop_lifetime_window_max_dominates_percentile(
            v in prop::collection::vec(0.0f32..1.0, 288..576), w in 0usize..6) {
            let tw = TimeWindows::paper_default();
            let s = UtilSeries::from_samples(Timestamp::ZERO, v);
            let lt = s.window_stats(tw);
            let p = s.window_percentile(tw, w, Percentile::P95);
            prop_assert!(lt.lifetime_max(w) >= p - 1e-6);
        }

        #[test]
        fn prop_mean_between_min_max(v in prop::collection::vec(0.0f32..1.0, 1..100)) {
            let s = UtilSeries::from_samples(Timestamp::ZERO, v);
            prop_assert!(s.mean() >= s.min() - 1e-6);
            prop_assert!(s.mean() <= s.max() + 1e-6);
        }
    }
}

//! [`coach_wire`] codecs for the core vocabulary types.
//!
//! Every impl here round-trips **bit-exactly**: `f64` fields travel as raw
//! IEEE-754 bits (via [`coach_wire::Encoder::f64`]), so a decoded value is
//! indistinguishable from the original under `assert_eq!` on full structs —
//! the property the snapshot/restore differential tests in `coach-serve`
//! pin. Decoding untrusted bytes never panics: constructors with asserting
//! invariants ([`Percentile::new`], [`TimeWindows::new`]) are bypassed with
//! explicit validation that surfaces [`WireError::Invalid`] instead.

use coach_wire::{Decode, Decoder, Encode, Encoder, WireError};

use crate::config::{HardwareConfig, Offering, SubscriptionType, VmConfig};
use crate::ids::{ClusterId, ServerId, SubscriptionId, VmId};
use crate::resource::ResourceVec;
use crate::runtime::{LaneKind, WorkerBackend};
use crate::series::Percentile;
use crate::time::{SimDuration, TimeWindows, Timestamp, TICKS_PER_DAY};
use crate::topology::PlacementPolicy;
use crate::winvec::WindowVec;

/// Implement `Encode`/`Decode` for an id newtype over `u64`.
macro_rules! id_wire {
    ($ty:ty) => {
        impl Encode for $ty {
            fn encode(&self, e: &mut Encoder) {
                e.u64(self.raw());
            }
        }
        impl Decode for $ty {
            fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
                Ok(<$ty>::new(d.u64(stringify!($ty))?))
            }
        }
    };
}

id_wire!(VmId);
id_wire!(ServerId);
id_wire!(ClusterId);
id_wire!(SubscriptionId);

impl Encode for ResourceVec {
    fn encode(&self, e: &mut Encoder) {
        for v in self.0 {
            e.f64(v);
        }
    }
}

impl Decode for ResourceVec {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        // Raw construction, not `ResourceVec::new`: snapshots carry derived
        // sums that must come back bit-for-bit, including negative slack or
        // non-finite values a validating constructor would reject.
        let mut out = [0.0; crate::resource::ResourceKind::COUNT];
        for slot in out.iter_mut() {
            *slot = d.f64("ResourceVec component")?;
        }
        Ok(ResourceVec(out))
    }
}

impl Encode for WindowVec {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.len());
        for v in self.iter() {
            v.encode(e);
        }
    }
}

impl Decode for WindowVec {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let len = d.seq_len("WindowVec length")?;
        let mut out = WindowVec::new();
        for _ in 0..len {
            out.push(ResourceVec::decode(d)?);
        }
        Ok(out)
    }
}

impl Encode for Timestamp {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.ticks());
    }
}

impl Decode for Timestamp {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Timestamp::from_ticks(d.u64("Timestamp")?))
    }
}

impl Encode for SimDuration {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.ticks());
    }
}

impl Decode for SimDuration {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SimDuration::from_ticks(d.u64("SimDuration")?))
    }
}

impl Encode for TimeWindows {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.count() as u32);
    }
}

impl Decode for TimeWindows {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let per_day = d.u32("TimeWindows")?;
        // `TimeWindows::new` asserts both of these; untrusted bytes must
        // fail softly instead.
        if per_day == 0 || !TICKS_PER_DAY.is_multiple_of(per_day as u64) {
            return Err(WireError::Invalid {
                context: "TimeWindows windows-per-day",
            });
        }
        Ok(TimeWindows::new(per_day))
    }
}

impl Encode for Percentile {
    fn encode(&self, e: &mut Encoder) {
        e.f64(self.value());
    }
}

impl Decode for Percentile {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let value = d.f64("Percentile")?;
        // Mirror the `Percentile::new` assert as a soft decode error.
        if !value.is_finite() || !(0.0..=100.0).contains(&value) {
            return Err(WireError::Invalid {
                context: "Percentile out of [0, 100]",
            });
        }
        Ok(Percentile::new(value))
    }
}

/// Implement `Encode`/`Decode` for a fieldless enum as a `u8` tag.
macro_rules! tag_wire {
    ($ty:ty, $context:literal, { $($tag:literal => $variant:path),+ $(,)? }) => {
        impl Encode for $ty {
            fn encode(&self, e: &mut Encoder) {
                e.u8(match self {
                    $($variant => $tag,)+
                });
            }
        }
        impl Decode for $ty {
            fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
                match d.u8($context)? {
                    $($tag => Ok($variant),)+
                    tag => Err(WireError::UnknownTag {
                        context: $context,
                        tag: tag as u64,
                    }),
                }
            }
        }
    };
}

tag_wire!(Offering, "Offering", {
    0 => Offering::Iaas,
    1 => Offering::Paas,
});

tag_wire!(SubscriptionType, "SubscriptionType", {
    0 => SubscriptionType::InternalProduction,
    1 => SubscriptionType::InternalTest,
    2 => SubscriptionType::External,
});

tag_wire!(LaneKind, "LaneKind", {
    0 => LaneKind::Ring,
    1 => LaneKind::MutexRef,
});

tag_wire!(WorkerBackend, "WorkerBackend", {
    0 => WorkerBackend::Thread,
    1 => WorkerBackend::Process,
});

tag_wire!(PlacementPolicy, "PlacementPolicy", {
    0 => PlacementPolicy::None,
    1 => PlacementPolicy::Compact,
    2 => PlacementPolicy::Spread,
});

impl Encode for VmConfig {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.cores);
        e.f64(self.memory_gb);
        e.f64(self.network_gbps);
        e.f64(self.ssd_gb);
    }
}

impl Decode for VmConfig {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        // Struct literal, not `VmConfig::new`: the constructor panics on
        // zero cores / non-positive sizes, and a snapshot must reproduce
        // whatever the trace carried, byte for byte.
        Ok(VmConfig {
            cores: d.u32("VmConfig cores")?,
            memory_gb: d.f64("VmConfig memory_gb")?,
            network_gbps: d.f64("VmConfig network_gbps")?,
            ssd_gb: d.f64("VmConfig ssd_gb")?,
        })
    }
}

impl Encode for HardwareConfig {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.name);
        self.capacity.encode(e);
    }
}

impl Decode for HardwareConfig {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(HardwareConfig {
            name: d.str("HardwareConfig name")?.to_string(),
            capacity: ResourceVec::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coach_wire::{open_frame, seal_frame};

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let frame = seal_frame(&value);
        let back: T = open_frame(&frame).expect("roundtrip decode");
        assert_eq!(back, value);
    }

    #[test]
    fn ids_and_scalars_roundtrip() {
        roundtrip(VmId::new(u64::MAX));
        roundtrip(ServerId::new(0));
        roundtrip(ClusterId::new(42));
        roundtrip(SubscriptionId::new(7));
        roundtrip(Timestamp::from_ticks(123_456_789));
        roundtrip(SimDuration::from_ticks(300));
        roundtrip(TimeWindows::new(6));
        roundtrip(Percentile::P95);
    }

    #[test]
    fn resource_vec_is_bit_exact() {
        // Values `ResourceVec::new` would reject still round-trip: raw
        // decoded snapshots must reproduce derived sums verbatim.
        let odd = ResourceVec([-0.0, f64::NAN, f64::INFINITY, 1e-308]);
        let frame = seal_frame(&odd);
        let back: ResourceVec = open_frame(&frame).expect("decode");
        for (a, b) in back.0.iter().zip(odd.0.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn window_vec_roundtrips_past_inline_spill() {
        let mut wv = WindowVec::new();
        for i in 0..10 {
            wv.push(ResourceVec::new(i as f64, 1.0, 0.5, 64.0));
        }
        roundtrip(wv);
        roundtrip(WindowVec::new());
    }

    #[test]
    fn enums_and_configs_roundtrip() {
        roundtrip(Offering::Paas);
        roundtrip(SubscriptionType::External);
        roundtrip(LaneKind::MutexRef);
        roundtrip(WorkerBackend::Process);
        roundtrip(PlacementPolicy::Spread);
        roundtrip(VmConfig::general_purpose(4));
        roundtrip(HardwareConfig::general_purpose_gen4());
    }

    #[test]
    fn invalid_values_fail_softly() {
        // An out-of-range percentile must be a decode error, not a panic.
        let mut e = Encoder::new();
        e.f64(250.0);
        let mut frame = Vec::from(coach_wire::MAGIC);
        frame.extend_from_slice(&coach_wire::VERSION.to_le_bytes());
        frame.extend_from_slice(&e.into_bytes());
        assert!(matches!(
            open_frame::<Percentile>(&frame),
            Err(WireError::Invalid { .. })
        ));

        // 7 windows/day does not divide the tick count evenly.
        let mut e = Encoder::new();
        e.u32(7);
        let mut frame = Vec::from(coach_wire::MAGIC);
        frame.extend_from_slice(&coach_wire::VERSION.to_le_bytes());
        frame.extend_from_slice(&e.into_bytes());
        assert!(matches!(
            open_frame::<TimeWindows>(&frame),
            Err(WireError::Invalid { .. })
        ));

        // Unknown enum tag.
        let mut e = Encoder::new();
        e.u8(9);
        let mut frame = Vec::from(coach_wire::MAGIC);
        frame.extend_from_slice(&coach_wire::VERSION.to_le_bytes());
        frame.extend_from_slice(&e.into_bytes());
        assert!(matches!(
            open_frame::<Offering>(&frame),
            Err(WireError::UnknownTag { .. })
        ));
    }
}

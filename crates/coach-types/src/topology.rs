//! A small CPU topology model and best-effort worker pinning.
//!
//! The shard runtime ([`crate::runtime`]) gets its parallelism from a
//! handful of long-lived worker threads. Where those threads *land*
//! matters once the per-event work is tiny: two workers time-slicing one
//! physical core (SMT siblings) halve each other's throughput, and a
//! worker bouncing between cache domains pays its working set back on
//! every migration. This module gives the runtime just enough hardware
//! awareness to do better, without any external dependency:
//!
//! - [`CpuTopology`] — which logical CPUs exist, which share a physical
//!   core (SMT siblings), and which share a last-level cache domain.
//!   Parsed from `/sys/devices/system/cpu` on Linux; a synthetic
//!   single-domain topology everywhere else (or when `/sys` is absent,
//!   e.g. in minimal containers).
//! - [`PlacementPolicy`] — turns a topology plus a worker count into a
//!   per-worker CPU assignment: [`Compact`](PlacementPolicy::Compact)
//!   packs workers into one cache domain (physical cores before SMT
//!   siblings), [`Spread`](PlacementPolicy::Spread) round-robins them
//!   across domains for maximum aggregate cache.
//! - [`pin_current_thread`] — best-effort affinity via a raw
//!   `sched_setaffinity` syscall (no libc dependency). On non-Linux
//!   targets, or if the kernel refuses, it reports `false` and the
//!   thread simply stays unpinned: pinning is an optimization, never a
//!   correctness requirement.

use std::fs;
use std::path::Path;

/// One logical CPU and the sharing groups it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuSlot {
    /// Logical CPU id (the `N` in `cpuN`), usable with
    /// [`pin_current_thread`].
    pub cpu: usize,
    /// Dense physical-core index: slots with equal `core` are SMT
    /// siblings sharing one physical core.
    pub core: usize,
    /// Dense cache-domain index: slots with equal `cache_domain` share a
    /// last-level cache (typically one L3 or one socket).
    pub cache_domain: usize,
}

/// The machine's logical CPUs grouped by physical core and cache domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuTopology {
    slots: Vec<CpuSlot>,
}

impl CpuTopology {
    /// Detect the host topology: `/sys` on Linux, falling back to a flat
    /// synthetic topology sized by [`crate::available_threads`] when the
    /// sysfs tree is missing or unparseable.
    pub fn detect() -> Self {
        Self::from_sysfs(Path::new("/sys/devices/system/cpu"))
            .unwrap_or_else(|| Self::synthetic(crate::available_threads(), 1, 1))
    }

    /// Build a synthetic topology: `cores` physical cores × `smt`
    /// hardware threads each, dealt round-robin into `domains` cache
    /// domains. Logical CPU ids number the first thread of every core,
    /// then the second, matching the common Linux enumeration.
    pub fn synthetic(cores: usize, smt: usize, domains: usize) -> Self {
        let cores = cores.max(1);
        let smt = smt.max(1);
        let domains = domains.clamp(1, cores);
        let mut slots = Vec::with_capacity(cores * smt);
        for thread in 0..smt {
            for core in 0..cores {
                slots.push(CpuSlot {
                    cpu: thread * cores + core,
                    core,
                    cache_domain: core % domains,
                });
            }
        }
        slots.sort_by_key(|s| s.cpu);
        CpuTopology { slots }
    }

    /// Parse a sysfs CPU tree (`/sys/devices/system/cpu`). Returns `None`
    /// if the tree is absent or any online CPU is missing its topology
    /// files — callers fall back to [`CpuTopology::synthetic`].
    pub fn from_sysfs(root: &Path) -> Option<Self> {
        let online = parse_cpu_list(fs::read_to_string(root.join("online")).ok()?.trim())?;
        if online.is_empty() {
            return None;
        }
        // Raw (package, core) pairs and cache keys, densified below so
        // indices are contiguous regardless of how sysfs numbers them.
        let mut raw = Vec::with_capacity(online.len());
        for &cpu in &online {
            let base = root.join(format!("cpu{cpu}"));
            let core_id: usize = read_trimmed(&base.join("topology/core_id"))?.parse().ok()?;
            let package: usize = read_trimmed(&base.join("topology/physical_package_id"))?
                .parse()
                .ok()?;
            // Last-level cache domain: prefer the explicit id, fall back
            // to the shared-CPU list as an opaque key, then to the
            // package (one domain per socket).
            let cache_key = read_trimmed(&base.join("cache/index3/id"))
                .or_else(|| read_trimmed(&base.join("cache/index3/shared_cpu_list")))
                .unwrap_or_else(|| format!("pkg{package}"));
            raw.push((cpu, (package, core_id), cache_key));
        }
        let mut core_keys: Vec<(usize, usize)> = raw.iter().map(|r| r.1).collect();
        core_keys.sort_unstable();
        core_keys.dedup();
        let mut cache_keys: Vec<String> = raw.iter().map(|r| r.2.clone()).collect();
        cache_keys.sort_unstable();
        cache_keys.dedup();
        let slots = raw
            .into_iter()
            .map(|(cpu, core_key, cache_key)| CpuSlot {
                cpu,
                core: core_keys.binary_search(&core_key).expect("dedup key"),
                cache_domain: cache_keys
                    .binary_search(&cache_key)
                    .expect("dedup cache key"),
            })
            .collect();
        Some(CpuTopology { slots })
    }

    /// All logical CPUs, ordered by CPU id.
    pub fn slots(&self) -> &[CpuSlot] {
        &self.slots
    }

    /// Number of logical CPUs.
    pub fn cpu_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of distinct physical cores.
    pub fn core_count(&self) -> usize {
        self.group_count(|s| s.core)
    }

    /// Number of distinct last-level cache domains.
    pub fn cache_domain_count(&self) -> usize {
        self.group_count(|s| s.cache_domain)
    }

    fn group_count(&self, key: impl Fn(&CpuSlot) -> usize) -> usize {
        let mut ids: Vec<usize> = self.slots.iter().map(key).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// CPUs ordered for a placement policy: the first `n` entries are
    /// where `n` workers should land. See [`PlacementPolicy::assign`].
    fn placement_order(&self, policy: PlacementPolicy) -> Vec<usize> {
        // Within each physical core, rank SMT siblings by CPU id: rank 0
        // is the "primary" hardware thread, rank >= 1 its siblings. Both
        // policies exhaust primaries before doubling up on a core.
        let mut ranked: Vec<(usize, CpuSlot)> = {
            let mut by_core: Vec<CpuSlot> = self.slots.clone();
            by_core.sort_by_key(|s| (s.core, s.cpu));
            let mut out: Vec<(usize, CpuSlot)> = Vec::with_capacity(by_core.len());
            for s in by_core {
                let rank = match out.last() {
                    Some((prev_rank, prev)) if prev.core == s.core => prev_rank + 1,
                    _ => 0,
                };
                out.push((rank, s));
            }
            out
        };
        match policy {
            PlacementPolicy::None => self.slots.iter().map(|s| s.cpu).collect(),
            // Fill one cache domain completely (primary threads first,
            // then siblings) before spilling into the next.
            PlacementPolicy::Compact => {
                ranked.sort_by_key(|(rank, s)| (s.cache_domain, *rank, s.core, s.cpu));
                ranked.into_iter().map(|(_, s)| s.cpu).collect()
            }
            // Deal primary threads round-robin across domains, then the
            // siblings, so k workers see k disjoint slices of cache.
            PlacementPolicy::Spread => {
                ranked.sort_by_key(|(rank, s)| (*rank, s.cache_domain, s.core, s.cpu));
                // Position of each slot within its (rank, domain) group;
                // sorting by (rank, position, domain) interleaves the
                // domains round-robin inside every SMT rank band.
                let mut within = vec![0usize; ranked.len()];
                for i in 1..ranked.len() {
                    let same_group = ranked[i].0 == ranked[i - 1].0
                        && ranked[i].1.cache_domain == ranked[i - 1].1.cache_domain;
                    within[i] = if same_group { within[i - 1] + 1 } else { 0 };
                }
                let mut idx: Vec<usize> = (0..ranked.len()).collect();
                idx.sort_by_key(|&i| (ranked[i].0, within[i], ranked[i].1.cache_domain));
                idx.into_iter().map(|i| ranked[i].1.cpu).collect()
            }
        }
    }
}

/// How shard workers map onto CPUs. Selected from `ServeConfig` in
/// `coach-serve`; applied by the worker runtime at thread start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// No pinning: the OS scheduler places workers freely.
    #[default]
    None,
    /// Pack workers into one cache domain, physical cores before SMT
    /// siblings — best when shards share data or the working set fits
    /// one L3.
    Compact,
    /// Round-robin workers across cache domains, physical cores first —
    /// best when each shard wants the largest private cache slice.
    Spread,
}

impl PlacementPolicy {
    /// Assign `workers` worker threads to CPUs under this policy:
    /// element `i` is the CPU for worker `i`, or `None` for unpinned
    /// ([`PlacementPolicy::None`]). More workers than CPUs wrap around.
    pub fn assign(self, topo: &CpuTopology, workers: usize) -> Vec<Option<usize>> {
        if self == PlacementPolicy::None || topo.cpu_count() == 0 {
            return vec![None; workers];
        }
        let order = topo.placement_order(self);
        (0..workers).map(|i| Some(order[i % order.len()])).collect()
    }
}

fn read_trimmed(path: &Path) -> Option<String> {
    fs::read_to_string(path).ok().map(|s| s.trim().to_string())
}

/// Parse a kernel CPU list (`"0-3,5,8-9"`) into sorted CPU ids. Returns
/// `None` on malformed input.
pub fn parse_cpu_list(list: &str) -> Option<Vec<usize>> {
    let mut cpus = Vec::new();
    for part in list.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: usize = lo.trim().parse().ok()?;
                let hi: usize = hi.trim().parse().ok()?;
                if hi < lo {
                    return None;
                }
                cpus.extend(lo..=hi);
            }
            None => cpus.push(part.parse().ok()?),
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    Some(cpus)
}

/// Largest CPU id representable in the affinity mask passed to the
/// kernel (16 × 64 bits = CPUs 0..1023).
const MASK_WORDS: usize = 16;

/// Pin the calling thread to logical CPU `cpu`. Best effort: returns
/// `true` if the kernel accepted the affinity mask, `false` on non-Linux
/// targets, unsupported architectures, out-of-range ids, or kernel
/// refusal. Callers must treat `false` as "keep running unpinned".
pub fn pin_current_thread(cpu: usize) -> bool {
    if cpu >= MASK_WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    sys::sched_setaffinity(&mask) == 0
}

/// The calling thread's current affinity set, or `None` where the
/// syscall is unavailable. Used by tests and telemetry.
pub fn current_affinity() -> Option<Vec<usize>> {
    let mut mask = [0u64; MASK_WORDS];
    let ret = sys::sched_getaffinity(&mut mask);
    if ret <= 0 {
        return None;
    }
    let mut cpus = Vec::new();
    for (word, &bits) in mask.iter().enumerate() {
        for bit in 0..64 {
            if bits & (1u64 << bit) != 0 {
                cpus.push(word * 64 + bit);
            }
        }
    }
    Some(cpus)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! Raw `sched_{set,get}affinity` syscalls. The workspace builds
    //! offline (no libc crate), so the two syscalls the pinning path
    //! needs are issued directly. Safety: both calls pass a valid,
    //! properly-sized buffer owned by the caller and `pid = 0` (the
    //! calling thread); neither retains the pointer past the call.

    #[cfg(target_arch = "x86_64")]
    const NR_SET: usize = 203;
    #[cfg(target_arch = "x86_64")]
    const NR_GET: usize = 204;
    #[cfg(target_arch = "aarch64")]
    const NR_SET: usize = 122;
    #[cfg(target_arch = "aarch64")]
    const NR_GET: usize = 123;

    #[allow(unsafe_code)]
    fn syscall3(nr: usize, a1: usize, a2: usize, a3: usize) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: a plain 3-argument syscall; rcx/r11 are clobbered by
        // the `syscall` instruction and declared as such.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: a plain 3-argument syscall via svc 0.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") a1 as isize => ret,
                in("x1") a2,
                in("x2") a3,
                in("x8") nr,
                options(nostack)
            );
        }
        ret
    }

    pub fn sched_setaffinity(mask: &[u64]) -> isize {
        syscall3(
            NR_SET,
            0,
            std::mem::size_of_val(mask),
            mask.as_ptr() as usize,
        )
    }

    pub fn sched_getaffinity(mask: &mut [u64]) -> isize {
        syscall3(
            NR_GET,
            0,
            std::mem::size_of_val(mask),
            mask.as_mut_ptr() as usize,
        )
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    //! Pinning is Linux-only; elsewhere both syscalls report failure and
    //! workers run unpinned.

    pub fn sched_setaffinity(_mask: &[u64]) -> isize {
        -1
    }

    pub fn sched_getaffinity(_mask: &mut [u64]) -> isize {
        -1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_list_parses_ranges_and_singles() {
        assert_eq!(parse_cpu_list("0-3,5"), Some(vec![0, 1, 2, 3, 5]));
        assert_eq!(parse_cpu_list("0"), Some(vec![0]));
        assert_eq!(parse_cpu_list("2-2"), Some(vec![2]));
        assert_eq!(parse_cpu_list("7,1-2,1"), Some(vec![1, 2, 7]));
        assert_eq!(parse_cpu_list("3-1"), None);
        assert_eq!(parse_cpu_list("x"), None);
    }

    #[test]
    fn synthetic_counts() {
        let topo = CpuTopology::synthetic(4, 2, 2);
        assert_eq!(topo.cpu_count(), 8);
        assert_eq!(topo.core_count(), 4);
        assert_eq!(topo.cache_domain_count(), 2);
        // CPU ids 0..cores are primary threads, cores..2*cores siblings.
        assert_eq!(topo.slots()[0].core, topo.slots()[4].core);
    }

    #[test]
    fn detect_sees_at_least_one_cpu() {
        let topo = CpuTopology::detect();
        assert!(topo.cpu_count() >= 1);
        assert!(topo.core_count() >= 1);
        assert!(topo.cache_domain_count() >= 1);
    }

    #[test]
    fn compact_fills_cores_before_siblings() {
        // 4 cores × 2 SMT, one domain: compact must use all 4 physical
        // cores before any SMT sibling.
        let topo = CpuTopology::synthetic(4, 2, 1);
        let pins = PlacementPolicy::Compact.assign(&topo, 4);
        let cores: Vec<usize> = pins.iter().map(|p| topo.slots()[p.unwrap()].core).collect();
        let mut unique = cores.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "compact doubled up on a core: {cores:?}");
    }

    #[test]
    fn compact_stays_in_one_domain() {
        // 8 cores in 2 domains: 4 compact workers fit one domain.
        let topo = CpuTopology::synthetic(8, 1, 2);
        let pins = PlacementPolicy::Compact.assign(&topo, 4);
        let domains: Vec<usize> = pins
            .iter()
            .map(|p| topo.slots()[p.unwrap()].cache_domain)
            .collect();
        assert!(
            domains.windows(2).all(|w| w[0] == w[1]),
            "compact crossed domains: {domains:?}"
        );
    }

    #[test]
    fn spread_round_robins_domains() {
        let topo = CpuTopology::synthetic(8, 1, 2);
        let pins = PlacementPolicy::Spread.assign(&topo, 4);
        let domains: Vec<usize> = pins
            .iter()
            .map(|p| topo.slots()[p.unwrap()].cache_domain)
            .collect();
        // Alternating domains: 2 workers per domain after 4 assignments.
        assert_eq!(domains.iter().filter(|&&d| d == 0).count(), 2);
        assert_eq!(domains.iter().filter(|&&d| d == 1).count(), 2);
        assert_ne!(domains[0], domains[1], "spread did not alternate");
    }

    #[test]
    fn none_policy_pins_nothing() {
        let topo = CpuTopology::synthetic(4, 1, 1);
        assert_eq!(PlacementPolicy::None.assign(&topo, 3), vec![None; 3]);
    }

    #[test]
    fn overcommit_wraps_around() {
        let topo = CpuTopology::synthetic(2, 1, 1);
        let pins = PlacementPolicy::Compact.assign(&topo, 5);
        assert_eq!(pins.len(), 5);
        assert_eq!(pins[0], pins[2]);
        assert_eq!(pins[0], pins[4]);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_round_trips_on_linux() {
        let before = current_affinity();
        // CPU 0 always exists.
        if pin_current_thread(0) {
            assert_eq!(current_affinity().as_deref(), Some(&[0usize][..]));
        }
        // Restore the original mask so this test thread does not stay
        // pinned for the rest of the test binary.
        if let Some(cpus) = before {
            let mut mask = [0u64; 16];
            for cpu in cpus {
                if cpu < 1024 {
                    mask[cpu / 64] |= 1 << (cpu % 64);
                }
            }
            let _ = sys::sched_setaffinity(&mask);
        }
    }

    #[test]
    fn sysfs_parse_smoke() {
        // On hosts with a sysfs CPU tree the parse must agree with
        // detect(); elsewhere this just exercises the fallback.
        if let Some(topo) = CpuTopology::from_sysfs(Path::new("/sys/devices/system/cpu")) {
            assert!(topo.cpu_count() >= 1);
            assert!(topo.core_count() <= topo.cpu_count());
        }
    }
}

//! Resource kinds, resource vectors, and fungibility (paper Table 1).
//!
//! Coach manages **all** resources holistically. The scheduler and the
//! characterization analytics operate on [`ResourceVec`]: a fixed-size vector
//! with one slot per [`ResourceKind`] (CPU cores, memory GB, network Gbps,
//! SSD GB). The units are absolute quantities, not fractions; utilization
//! fractions live in [`crate::series`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Sub, SubAssign};

/// The four first-class resources Coach schedules and oversubscribes.
///
/// The paper's trace records CPU, memory, network, and storage utilization
/// per VM at 5-minute granularity (§2); the scheduler packs all four.
///
/// # Example
///
/// ```
/// use coach_types::ResourceKind;
/// assert_eq!(ResourceKind::ALL.len(), 4);
/// assert_eq!(ResourceKind::Cpu.to_string(), "CPU");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU cores (hyper-threaded vCPUs normalized to cores, as in §2.1).
    Cpu,
    /// Memory space in GB. Non-fungible: pages must be re-assigned explicitly.
    Memory,
    /// Network bandwidth in Gbps.
    Network,
    /// Local SSD space in GB.
    Ssd,
}

impl ResourceKind {
    /// All resource kinds, in canonical vector order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::Network,
        ResourceKind::Ssd,
    ];

    /// The number of resource kinds.
    pub const COUNT: usize = 4;

    /// Index of this kind inside a [`ResourceVec`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
            ResourceKind::Network => 2,
            ResourceKind::Ssd => 3,
        }
    }

    /// Inverse of [`ResourceKind::index`]. Returns `None` for out-of-range.
    ///
    /// ```
    /// use coach_types::ResourceKind;
    /// assert_eq!(ResourceKind::from_index(1), Some(ResourceKind::Memory));
    /// assert_eq!(ResourceKind::from_index(9), None);
    /// ```
    pub const fn from_index(i: usize) -> Option<ResourceKind> {
        match i {
            0 => Some(ResourceKind::Cpu),
            1 => Some(ResourceKind::Memory),
            2 => Some(ResourceKind::Network),
            3 => Some(ResourceKind::Ssd),
            _ => None,
        }
    }

    /// Whether the hypervisor can quickly reassign this resource between VMs
    /// (paper Table 1). Memory *space* and local-SSD *space* are
    /// non-fungible; CPU time and the bandwidth resources are fungible.
    pub const fn fungibility(self) -> Fungibility {
        match self {
            ResourceKind::Cpu => Fungibility::Fungible,
            ResourceKind::Memory => Fungibility::NonFungible,
            ResourceKind::Network => Fungibility::Fungible,
            ResourceKind::Ssd => Fungibility::NonFungible,
        }
    }

    /// The mechanism Coach uses to share this resource across CoachVMs
    /// (paper Table 1).
    pub const fn sharing_mechanism(self) -> SharingMechanism {
        match self {
            ResourceKind::Cpu => SharingMechanism::CpuGroups,
            ResourceKind::Memory => SharingMechanism::PaVaPortions,
            ResourceKind::Network => SharingMechanism::SharesReservationsCaps,
            ResourceKind::Ssd => SharingMechanism::DiskPartitions,
        }
    }

    /// Unit label used in reports ("cores", "GB", "Gbps", "GB").
    pub const fn unit(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cores",
            ResourceKind::Memory => "GB",
            ResourceKind::Network => "Gbps",
            ResourceKind::Ssd => "GB",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Cpu => "CPU",
            ResourceKind::Memory => "Memory",
            ResourceKind::Network => "Network",
            ResourceKind::Ssd => "SSD",
        };
        f.write_str(s)
    }
}

/// Whether a resource can be rapidly reassigned between VMs (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fungibility {
    /// Quickly reassignable (CPU time, bandwidths): the hypervisor multiplexes
    /// several VMs onto the same capacity.
    Fungible,
    /// Requires explicit, slow reassignment (memory pages must be paged out
    /// before the physical page can move; disk partitions are static).
    NonFungible,
}

/// Mechanism used to split a resource into guaranteed/oversubscribed portions
/// (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingMechanism {
    /// Static CPU groups for the guaranteed cores; the rest is oversubscribed.
    CpuGroups,
    /// PA-backed guaranteed portion + VA-backed oversubscribed portion mapped
    /// behind a zNUMA node.
    PaVaPortions,
    /// Hypervisor shares / reservations / caps (bandwidth resources).
    SharesReservationsCaps,
    /// Disk partitions / DDA / SR-IOV for local storage space.
    DiskPartitions,
}

impl fmt::Display for SharingMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SharingMechanism::CpuGroups => "CPU groups",
            SharingMechanism::PaVaPortions => "PA/VA portions, VA-backing",
            SharingMechanism::SharesReservationsCaps => "shares, reservations, caps",
            SharingMechanism::DiskPartitions => "disk partitions, DDA, SR-IOV",
        };
        f.write_str(s)
    }
}

/// A quantity per resource kind: `[cpu cores, memory GB, network Gbps, SSD GB]`.
///
/// `ResourceVec` is the lingua franca of the scheduler: VM demands, server
/// capacities, and per-time-window predicted utilizations are all resource
/// vectors, compared elementwise (`fits_within`) during bin packing.
///
/// # Example
///
/// ```
/// use coach_types::{ResourceKind, ResourceVec};
///
/// let demand = ResourceVec::new(4.0, 16.0, 2.0, 64.0);
/// let free = ResourceVec::new(8.0, 24.0, 10.0, 500.0);
/// assert!(demand.fits_within(&free));
/// assert_eq!((free - demand)[ResourceKind::Memory], 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVec(pub [f64; ResourceKind::COUNT]);

impl ResourceVec {
    /// The zero vector.
    pub const ZERO: ResourceVec = ResourceVec([0.0; ResourceKind::COUNT]);

    /// Create from explicit per-resource quantities.
    pub const fn new(cpu: f64, memory_gb: f64, network_gbps: f64, ssd_gb: f64) -> Self {
        ResourceVec([cpu, memory_gb, network_gbps, ssd_gb])
    }

    /// A vector with the same value in every slot.
    pub const fn splat(v: f64) -> Self {
        ResourceVec([v; ResourceKind::COUNT])
    }

    /// CPU cores.
    #[inline]
    pub const fn cpu(&self) -> f64 {
        self.0[0]
    }

    /// Memory in GB.
    #[inline]
    pub const fn memory(&self) -> f64 {
        self.0[1]
    }

    /// Network bandwidth in Gbps.
    #[inline]
    pub const fn network(&self) -> f64 {
        self.0[2]
    }

    /// Local SSD space in GB.
    #[inline]
    pub const fn ssd(&self) -> f64 {
        self.0[3]
    }

    /// Elementwise `self <= other` within `eps` slack on every resource.
    ///
    /// This is the feasibility check of the vector bin-packing scheduler
    /// (§3.3): a demand vector fits a free-capacity vector iff it fits on
    /// every dimension. A small epsilon absorbs floating-point dust from
    /// repeated add/subtract of allocations.
    #[inline]
    pub fn fits_within(&self, other: &ResourceVec) -> bool {
        const EPS: f64 = 1e-9;
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(a, b)| *a <= *b + EPS)
    }

    /// Elementwise maximum.
    #[inline]
    pub fn max(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..ResourceKind::COUNT {
            out.0[i] = out.0[i].max(other.0[i]);
        }
        out
    }

    /// Elementwise minimum.
    #[inline]
    pub fn min(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..ResourceKind::COUNT {
            out.0[i] = out.0[i].min(other.0[i]);
        }
        out
    }

    /// Elementwise `max(0, self - other)` — saturating subtraction.
    #[inline]
    pub fn saturating_sub(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = ResourceVec::ZERO;
        for i in 0..ResourceKind::COUNT {
            out.0[i] = (self.0[i] - other.0[i]).max(0.0);
        }
        out
    }

    /// Elementwise multiplication (e.g. capacity × utilization fractions).
    #[inline]
    pub fn scale_by(&self, fractions: &ResourceVec) -> ResourceVec {
        let mut out = *self;
        for i in 0..ResourceKind::COUNT {
            out.0[i] *= fractions.0[i];
        }
        out
    }

    /// Elementwise division; slots where `other` is zero produce zero
    /// (a server with no SSD has zero utilization of it, not NaN).
    pub fn fraction_of(&self, other: &ResourceVec) -> ResourceVec {
        let mut out = ResourceVec::ZERO;
        for i in 0..ResourceKind::COUNT {
            if other.0[i] > 0.0 {
                out.0[i] = self.0[i] / other.0[i];
            }
        }
        out
    }

    /// Elementwise clamp of every slot to `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> ResourceVec {
        let mut out = *self;
        for v in out.0.iter_mut() {
            *v = v.clamp(lo, hi);
        }
        out
    }

    /// True iff every slot is ≥ 0 and finite.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|v| v.is_finite() && *v >= 0.0)
    }

    /// True iff every slot is exactly zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|v| *v == 0.0)
    }

    /// The largest slot value.
    #[inline]
    pub fn max_element(&self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Resource kind with the largest value, breaking ties toward CPU.
    pub fn argmax(&self) -> ResourceKind {
        let mut best = ResourceKind::Cpu;
        let mut best_v = self.0[0];
        for kind in ResourceKind::ALL.into_iter().skip(1) {
            let v = self.0[kind.index()];
            if v > best_v {
                best_v = v;
                best = kind;
            }
        }
        best
    }

    /// Iterate `(kind, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceKind, f64)> + '_ {
        ResourceKind::ALL
            .into_iter()
            .map(|k| (k, self.0[k.index()]))
    }
}

impl Index<ResourceKind> for ResourceVec {
    type Output = f64;
    #[inline]
    fn index(&self, kind: ResourceKind) -> &f64 {
        &self.0[kind.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceVec {
    #[inline]
    fn index_mut(&mut self, kind: ResourceKind) -> &mut f64 {
        &mut self.0[kind.index()]
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    #[inline]
    fn add(mut self, rhs: ResourceVec) -> ResourceVec {
        self += rhs;
        self
    }
}

impl AddAssign for ResourceVec {
    #[inline]
    fn add_assign(&mut self, rhs: ResourceVec) {
        for i in 0..ResourceKind::COUNT {
            self.0[i] += rhs.0[i];
        }
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    #[inline]
    fn sub(mut self, rhs: ResourceVec) -> ResourceVec {
        self -= rhs;
        self
    }
}

impl SubAssign for ResourceVec {
    #[inline]
    fn sub_assign(&mut self, rhs: ResourceVec) {
        for i in 0..ResourceKind::COUNT {
            self.0[i] -= rhs.0[i];
        }
    }
}

impl Mul<f64> for ResourceVec {
    type Output = ResourceVec;
    #[inline]
    fn mul(mut self, rhs: f64) -> ResourceVec {
        for v in self.0.iter_mut() {
            *v *= rhs;
        }
        self
    }
}

impl Div<f64> for ResourceVec {
    type Output = ResourceVec;
    #[inline]
    fn div(mut self, rhs: f64) -> ResourceVec {
        for v in self.0.iter_mut() {
            *v /= rhs;
        }
        self
    }
}

impl std::iter::Sum for ResourceVec {
    fn sum<I: Iterator<Item = ResourceVec>>(iter: I) -> ResourceVec {
        iter.fold(ResourceVec::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{:.1} cores, {:.1} GB, {:.1} Gbps, {:.0} GB SSD}}",
            self.cpu(),
            self.memory(),
            self.network(),
            self.ssd()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kind_index_roundtrip() {
        for kind in ResourceKind::ALL {
            assert_eq!(ResourceKind::from_index(kind.index()), Some(kind));
        }
        assert_eq!(ResourceKind::from_index(4), None);
    }

    #[test]
    fn fungibility_matches_table1() {
        assert_eq!(ResourceKind::Cpu.fungibility(), Fungibility::Fungible);
        assert_eq!(ResourceKind::Memory.fungibility(), Fungibility::NonFungible);
        assert_eq!(ResourceKind::Network.fungibility(), Fungibility::Fungible);
        assert_eq!(ResourceKind::Ssd.fungibility(), Fungibility::NonFungible);
    }

    #[test]
    fn sharing_mechanisms_match_table1() {
        assert_eq!(
            ResourceKind::Memory.sharing_mechanism().to_string(),
            "PA/VA portions, VA-backing"
        );
        assert_eq!(
            ResourceKind::Cpu.sharing_mechanism(),
            SharingMechanism::CpuGroups
        );
    }

    #[test]
    fn arithmetic_basics() {
        let a = ResourceVec::new(2.0, 8.0, 1.0, 10.0);
        let b = ResourceVec::new(1.0, 4.0, 0.5, 5.0);
        assert_eq!(a + b, ResourceVec::new(3.0, 12.0, 1.5, 15.0));
        assert_eq!(a - b, b);
        assert_eq!(a * 0.5, b);
        assert_eq!(a / 2.0, b);
        assert_eq!(a.max(&b), a);
        assert_eq!(a.min(&b), b);
    }

    #[test]
    fn fits_within_is_elementwise() {
        let cap = ResourceVec::new(8.0, 32.0, 10.0, 100.0);
        assert!(ResourceVec::new(8.0, 32.0, 10.0, 100.0).fits_within(&cap));
        assert!(!ResourceVec::new(8.1, 1.0, 1.0, 1.0).fits_within(&cap));
        // One overflowing dimension is enough to fail.
        assert!(!ResourceVec::new(1.0, 33.0, 1.0, 1.0).fits_within(&cap));
    }

    #[test]
    fn fits_within_tolerates_fp_dust() {
        let cap = ResourceVec::splat(1.0);
        let dusty = ResourceVec::splat(1.0 + 1e-12);
        assert!(dusty.fits_within(&cap));
    }

    #[test]
    fn saturating_sub_never_negative() {
        let a = ResourceVec::new(1.0, 2.0, 3.0, 4.0);
        let b = ResourceVec::new(2.0, 1.0, 5.0, 4.0);
        let d = a.saturating_sub(&b);
        assert_eq!(d, ResourceVec::new(0.0, 1.0, 0.0, 0.0));
    }

    #[test]
    fn fraction_of_handles_zero_capacity() {
        let used = ResourceVec::new(1.0, 1.0, 1.0, 1.0);
        let cap = ResourceVec::new(2.0, 4.0, 0.0, 8.0);
        let f = used.fraction_of(&cap);
        assert_eq!(f, ResourceVec::new(0.5, 0.25, 0.0, 0.125));
    }

    #[test]
    fn argmax_prefers_cpu_on_tie() {
        let v = ResourceVec::splat(1.0);
        assert_eq!(v.argmax(), ResourceKind::Cpu);
        let v = ResourceVec::new(0.0, 2.0, 1.0, 2.0);
        assert_eq!(v.argmax(), ResourceKind::Memory);
    }

    #[test]
    fn sum_of_vecs() {
        let vs = vec![ResourceVec::splat(1.0), ResourceVec::splat(2.0)];
        let s: ResourceVec = vs.into_iter().sum();
        assert_eq!(s, ResourceVec::splat(3.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", ResourceVec::ZERO).is_empty());
        assert!(!format!("{:?}", ResourceVec::ZERO).is_empty());
    }

    fn arb_vec() -> impl Strategy<Value = ResourceVec> {
        prop::array::uniform4(0.0f64..1000.0).prop_map(ResourceVec)
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_vec(), b in arb_vec()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_sub_add_roundtrip(a in arb_vec(), b in arb_vec()) {
            let r = (a + b) - b;
            for i in 0..4 {
                prop_assert!((r.0[i] - a.0[i]).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_max_is_upper_bound(a in arb_vec(), b in arb_vec()) {
            let m = a.max(&b);
            prop_assert!(a.fits_within(&m));
            prop_assert!(b.fits_within(&m));
        }

        #[test]
        fn prop_min_fits_both(a in arb_vec(), b in arb_vec()) {
            let m = a.min(&b);
            prop_assert!(m.fits_within(&a));
            prop_assert!(m.fits_within(&b));
        }

        #[test]
        fn prop_saturating_sub_valid(a in arb_vec(), b in arb_vec()) {
            prop_assert!(a.saturating_sub(&b).is_valid());
        }

        #[test]
        fn prop_fits_within_transitive(a in arb_vec(), b in arb_vec(), c in arb_vec()) {
            if a.fits_within(&b) && b.fits_within(&c) {
                // transitivity with epsilon slack: widen c slightly
                let widened = c + ResourceVec::splat(1e-8);
                prop_assert!(a.fits_within(&widened));
            }
        }
    }
}

//! 5 %-bucket rounding used throughout the prediction and allocation paths.
//!
//! The paper predicts utilization in **5 % buckets** (e.g. 17.3 % → 20 %) and
//! conservatively rounds allocations *up* to the bucket boundary (§3.3,
//! "Coach configuration"). Rounding up is what makes the scheduling policy
//! robust: actual VA accesses stay well below the prediction percentile
//! (Fig 17a, `Worst` vs. measured).

use serde::{Deserialize, Serialize};

/// Bucket width as a fraction (5 %).
pub const BUCKET_WIDTH: f64 = 0.05;

/// A utilization bucket: a fraction snapped to a multiple of 5 %.
///
/// # Example
///
/// ```
/// use coach_types::Bucket;
/// let b = Bucket::round_up(0.173);
/// assert_eq!(b.fraction(), 0.20);
/// assert_eq!(b.index(), 4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Bucket(u8);

impl Bucket {
    /// The largest bucket (100 %).
    pub const MAX: Bucket = Bucket(20);

    /// Snap a fraction up to the next bucket boundary, clamped to `[0, 1]`.
    pub fn round_up(fraction: f64) -> Bucket {
        Bucket(to_index(fraction, f64::ceil))
    }

    /// Snap a fraction down to the previous bucket boundary, clamped to `[0, 1]`.
    pub fn round_down(fraction: f64) -> Bucket {
        Bucket(to_index(fraction, f64::floor))
    }

    /// Snap a fraction to the nearest bucket boundary.
    pub fn round_nearest(fraction: f64) -> Bucket {
        Bucket(to_index(fraction, f64::round))
    }

    /// Build from a bucket index (`0..=20`), clamping out-of-range values.
    pub fn from_index(index: usize) -> Bucket {
        Bucket(index.min(20) as u8)
    }

    /// The bucket's fraction value in `[0, 1]`.
    pub fn fraction(self) -> f64 {
        f64::from(self.0) * BUCKET_WIDTH
    }

    /// Index `0..=20`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Percentage value `0..=100`.
    pub const fn percent(self) -> u32 {
        self.0 as u32 * 5
    }
}

impl std::fmt::Display for Bucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}%", self.percent())
    }
}

fn to_index(fraction: f64, dir: fn(f64) -> f64) -> u8 {
    if !fraction.is_finite() {
        return 0;
    }
    let f = fraction.clamp(0.0, 1.0);
    // Tolerate fp dust: 0.6000000000000001 / 0.05 = 12.000000000000002 must
    // round *up* to 12, not 13.
    let scaled = f / BUCKET_WIDTH;
    let snapped = scaled.round();
    let idx = if (scaled - snapped).abs() < 1e-9 {
        snapped
    } else {
        dir(scaled)
    };
    (idx as u8).min(20)
}

/// Round a fraction up to the next 5 % boundary (free function convenience).
///
/// ```
/// assert_eq!(coach_types::bucket_up(0.173), 0.2);
/// ```
pub fn bucket_up(fraction: f64) -> f64 {
    Bucket::round_up(fraction).fraction()
}

/// Round a fraction down to the previous 5 % boundary.
///
/// ```
/// assert!((coach_types::bucket_down(0.173) - 0.15).abs() < 1e-9);
/// ```
pub fn bucket_down(fraction: f64) -> f64 {
    Bucket::round_down(fraction).fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example() {
        // §2.3: "rounded to 5% buckets (e.g., 17.3 → 20.0%)"
        assert_eq!(Bucket::round_up(0.173).percent(), 20);
    }

    #[test]
    fn exact_boundaries_stay_put() {
        for i in 0..=20 {
            let f = i as f64 * 0.05;
            assert_eq!(Bucket::round_up(f).index(), i, "up at {f}");
            assert_eq!(Bucket::round_down(f).index(), i, "down at {f}");
        }
    }

    #[test]
    fn fp_dust_does_not_bump_bucket() {
        // 0.05 * 12 computed the hard way.
        let f = 0.1 + 0.2 + 0.3; // 0.6000000000000001
        assert_eq!(Bucket::round_up(f).index(), 12);
    }

    #[test]
    fn clamping() {
        assert_eq!(Bucket::round_up(-0.3).index(), 0);
        assert_eq!(Bucket::round_up(1.7).index(), 20);
        assert_eq!(Bucket::round_up(f64::NAN).index(), 0);
        assert_eq!(Bucket::from_index(99), Bucket::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(Bucket::round_up(0.42).to_string(), "45%");
    }

    proptest! {
        #[test]
        fn prop_round_up_dominates(f in 0.0f64..1.0) {
            prop_assert!(bucket_up(f) >= f - 1e-9);
            prop_assert!(bucket_down(f) <= f + 1e-9);
        }

        #[test]
        fn prop_up_down_within_one_bucket(f in 0.0f64..1.0) {
            prop_assert!(bucket_up(f) - bucket_down(f) <= BUCKET_WIDTH + 1e-9);
        }

        #[test]
        fn prop_idempotent(f in 0.0f64..1.0) {
            let b = bucket_up(f);
            prop_assert_eq!(bucket_up(b), b);
        }
    }
}

//! A minimal scoped-thread parallel map.
//!
//! The container this workspace builds in has no crates.io access, so heavy
//! data-parallel work (the Fig 20 four-policy sweep, per-server violation
//! sampling) uses this `std::thread::scope`-based utility instead of rayon.
//! Work is distributed dynamically via an atomic cursor so uneven per-item
//! cost (e.g. servers hosting very different VM counts) balances across
//! workers; results come back in input order, so any order-sensitive
//! reduction stays deterministic.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads [`par_map`] uses by default:
/// [`std::thread::available_parallelism`], falling back to 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `items` on up to [`available_threads`] worker threads,
/// returning results in input order.
///
/// Panics in `f` are propagated to the caller after all workers stop picking
/// up new items.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(items, available_threads(), f)
}

/// [`par_map`] with an explicit worker-thread cap (`0` is treated as `1`).
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok(results) => {
                    for (i, r) in results {
                        slots[i] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every index produced exactly once"))
        .collect()
}

/// Map `f` over *mutable* items, one scoped thread per item, returning
/// results in input order.
///
/// Intended for a handful of coarse shards (e.g. `coach-serve`'s
/// per-cluster-group controllers), where one thread per item is the right
/// granularity; use [`par_map`] for fine-grained work over many items.
/// Panics in `f` are propagated after all threads finish.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    if items.len() <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let workers: Vec<_> = items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| scope.spawn(move || f(i, item)))
            .collect();
        workers
            .into_iter()
            .map(|w| {
                w.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn explicit_thread_counts() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [0, 1, 2, 3, 16, 200] {
            let out = par_map_threads(&items, threads, |&x| x + 1);
            assert_eq!(out.len(), items.len());
            assert!(out.iter().enumerate().all(|(i, &r)| r == i + 1));
        }
    }

    #[test]
    fn balances_uneven_work() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let spin = if x % 7 == 0 { 50_000 } else { 10 };
            (0..spin).fold(x, |acc, i| acc.wrapping_add(i))
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn mut_map_mutates_and_preserves_order() {
        let mut items: Vec<u64> = (0..6).collect();
        let out = par_map_mut(&mut items, |i, x| {
            *x += 100;
            *x + i as u64
        });
        assert_eq!(items, vec![100, 101, 102, 103, 104, 105]);
        assert_eq!(out, vec![100, 102, 104, 106, 108, 110]);
        let mut empty: Vec<u64> = Vec::new();
        assert!(par_map_mut(&mut empty, |_, x| *x).is_empty());
    }

    #[test]
    #[should_panic(expected = "shard boom")]
    fn mut_map_panics_propagate() {
        let mut items: Vec<u32> = (0..4).collect();
        let _ = par_map_mut(&mut items, |_, x| {
            if *x == 2 {
                panic!("shard boom");
            }
            *x
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map_threads(&items, 2, |&x| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }
}

//! Error type shared by the foundational types.

use std::error::Error;
use std::fmt;

/// Errors arising from invalid type-level operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TypeError {
    /// A fraction was outside `[0, 1]`.
    FractionOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// A timestamp range was empty or inverted.
    InvalidRange,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::FractionOutOfRange { value } => {
                write!(f, "fraction {value} outside [0, 1]")
            }
            TypeError::InvalidRange => f.write_str("empty or inverted time range"),
        }
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TypeError::FractionOutOfRange { value: 1.5 };
        assert_eq!(e.to_string(), "fraction 1.5 outside [0, 1]");
        assert_eq!(
            TypeError::InvalidRange.to_string(),
            "empty or inverted time range"
        );
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TypeError>();
    }
}

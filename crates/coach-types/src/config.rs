//! VM and server hardware configurations.
//!
//! Azure sells VMs in discrete sizes with fixed GB/core ratios (§2.2: "5
//! resource ratios, 9 sizes, 6 generations, 4 specialized types"). The
//! mismatch between VM ratios and server ratios is what causes *stranding*
//! (Fig 1b), so both sides are first-class here.

use crate::resource::ResourceVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Service model of the VM. IaaS VMs tend to run hotter than PaaS (§3.3,
/// prediction features).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Offering {
    /// Infrastructure-as-a-service: opaque customer VM.
    Iaas,
    /// Platform-as-a-service: platform-managed workload.
    Paas,
}

impl fmt::Display for Offering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Offering::Iaas => "IaaS",
            Offering::Paas => "PaaS",
        })
    }
}

/// Subscription type — a customer-specific prediction feature (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubscriptionType {
    /// Internal production subscription.
    InternalProduction,
    /// Internal test subscription.
    InternalTest,
    /// Third-party customer subscription.
    External,
}

impl fmt::Display for SubscriptionType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SubscriptionType::InternalProduction => "internal-prod",
            SubscriptionType::InternalTest => "internal-test",
            SubscriptionType::External => "external",
        })
    }
}

/// A VM size: the resources the customer requested.
///
/// # Example
///
/// ```
/// use coach_types::VmConfig;
/// let vm = VmConfig::new(8, 32.0, 4.0, 256.0);
/// assert_eq!(vm.gb_per_core(), 4.0);
/// assert_eq!(vm.demand().memory(), 32.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmConfig {
    /// vCPUs normalized to cores.
    pub cores: u32,
    /// Memory in GB.
    pub memory_gb: f64,
    /// Network bandwidth in Gbps.
    pub network_gbps: f64,
    /// Local SSD in GB.
    pub ssd_gb: f64,
}

impl VmConfig {
    /// Construct an arbitrary configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or any quantity is negative/non-finite.
    pub fn new(cores: u32, memory_gb: f64, network_gbps: f64, ssd_gb: f64) -> Self {
        assert!(cores > 0, "a VM needs at least one core");
        let cfg = VmConfig {
            cores,
            memory_gb,
            network_gbps,
            ssd_gb,
        };
        assert!(
            cfg.demand().is_valid(),
            "VM resources must be finite and >= 0"
        );
        cfg
    }

    /// The most typical Azure configuration: general-purpose, 4 GB/core
    /// (§2.2 cites the D-series 4 GB/core ratio as the stranding probe).
    /// Network and SSD scale with cores.
    pub fn general_purpose(cores: u32) -> Self {
        VmConfig::new(
            cores,
            cores as f64 * 4.0,
            cores as f64 * 0.5,
            cores as f64 * 16.0,
        )
    }

    /// Memory-optimized: 16 GB/core (the paper's E-series-like example).
    pub fn memory_optimized(cores: u32) -> Self {
        VmConfig::new(
            cores,
            cores as f64 * 16.0,
            cores as f64 * 0.5,
            cores as f64 * 16.0,
        )
    }

    /// Compute-optimized: 2 GB/core.
    pub fn compute_optimized(cores: u32) -> Self {
        VmConfig::new(
            cores,
            cores as f64 * 2.0,
            cores as f64 * 0.5,
            cores as f64 * 16.0,
        )
    }

    /// Requested resources as a vector.
    pub fn demand(&self) -> ResourceVec {
        ResourceVec::new(
            f64::from(self.cores),
            self.memory_gb,
            self.network_gbps,
            self.ssd_gb,
        )
    }

    /// GB of memory per core.
    pub fn gb_per_core(&self) -> f64 {
        self.memory_gb / f64::from(self.cores)
    }

    /// A compact key identifying the configuration family+size, used as a
    /// grouping feature by the prediction model (Fig 12 "VM configuration").
    pub fn config_key(&self) -> u64 {
        // cores and GB uniquely identify the discrete catalog entries.
        (u64::from(self.cores) << 32) | (self.memory_gb as u64)
    }
}

impl fmt::Display for VmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c/{}GB", self.cores, self.memory_gb)
    }
}

/// Physical server hardware: capacity vector plus catalog metadata.
///
/// The trace spans "four hardware generations, including Intel and AMD"
/// (§2 methodology). Generations differ in their GB/core ratio, which is
/// what makes some clusters CPU-bottlenecked and others memory-bottlenecked
/// (Fig 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Human-readable generation name.
    pub name: String,
    /// Total server capacity.
    pub capacity: ResourceVec,
}

impl HardwareConfig {
    /// Construct a named hardware configuration.
    ///
    /// # Panics
    ///
    /// Panics if the capacity vector is invalid or all-zero.
    pub fn new(name: impl Into<String>, capacity: ResourceVec) -> Self {
        assert!(
            capacity.is_valid() && !capacity.is_zero(),
            "capacity must be positive"
        );
        HardwareConfig {
            name: name.into(),
            capacity,
        }
    }

    /// Gen-4 general-purpose: 96 cores, 384 GB (4 GB/core), 40 Gbps, 4 TB SSD.
    pub fn general_purpose_gen4() -> Self {
        HardwareConfig::new("gen4-gp", ResourceVec::new(96.0, 384.0, 40.0, 4096.0))
    }

    /// Gen-5 general-purpose: 120 cores, 480 GB, 50 Gbps, 6 TB SSD.
    pub fn general_purpose_gen5() -> Self {
        HardwareConfig::new("gen5-gp", ResourceVec::new(120.0, 480.0, 50.0, 6144.0))
    }

    /// Memory-lean: plenty of cores/network but only 2.67 GB/core — such
    /// clusters are memory-bottlenecked like C4 in Fig 5.
    pub fn memory_lean() -> Self {
        HardwareConfig::new("gen4-lean", ResourceVec::new(96.0, 256.0, 40.0, 4096.0))
    }

    /// Memory-rich: 8 GB/core — CPU becomes the bottleneck like C1 in Fig 5.
    pub fn memory_rich() -> Self {
        HardwareConfig::new("gen4-rich", ResourceVec::new(64.0, 512.0, 40.0, 4096.0))
    }

    /// The §4.1 evaluation server: 160 hyper-threaded cores, 512 GB DRAM.
    pub fn eval_server() -> Self {
        HardwareConfig::new("eval-2numa", ResourceVec::new(160.0, 512.0, 100.0, 6144.0))
    }

    /// GB of memory per core.
    pub fn gb_per_core(&self) -> f64 {
        self.capacity.memory() / self.capacity.cpu()
    }
}

impl fmt::Display for HardwareConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ratios() {
        assert_eq!(VmConfig::general_purpose(4).gb_per_core(), 4.0);
        assert_eq!(VmConfig::memory_optimized(4).gb_per_core(), 16.0);
        assert_eq!(VmConfig::compute_optimized(4).gb_per_core(), 2.0);
    }

    #[test]
    fn demand_vector_matches_fields() {
        let vm = VmConfig::new(8, 32.0, 4.0, 256.0);
        let d = vm.demand();
        assert_eq!(d.cpu(), 8.0);
        assert_eq!(d.memory(), 32.0);
        assert_eq!(d.network(), 4.0);
        assert_eq!(d.ssd(), 256.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = VmConfig::new(0, 4.0, 1.0, 16.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_memory_rejected() {
        let _ = VmConfig::new(2, -4.0, 1.0, 16.0);
    }

    #[test]
    fn config_key_distinguishes_sizes() {
        let a = VmConfig::general_purpose(4);
        let b = VmConfig::general_purpose(8);
        let c = VmConfig::memory_optimized(4);
        assert_ne!(a.config_key(), b.config_key());
        assert_ne!(a.config_key(), c.config_key());
        assert_eq!(a.config_key(), VmConfig::general_purpose(4).config_key());
    }

    #[test]
    fn hardware_ratios_spread() {
        assert!(HardwareConfig::memory_lean().gb_per_core() < 3.0);
        assert!(HardwareConfig::memory_rich().gb_per_core() >= 8.0);
        assert_eq!(HardwareConfig::general_purpose_gen4().gb_per_core(), 4.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = HardwareConfig::new("bad", ResourceVec::ZERO);
    }

    #[test]
    fn display_forms() {
        assert_eq!(VmConfig::general_purpose(4).to_string(), "4c/16GB");
        assert!(HardwareConfig::eval_server()
            .to_string()
            .contains("eval-2numa"));
        assert_eq!(Offering::Iaas.to_string(), "IaaS");
        assert_eq!(SubscriptionType::External.to_string(), "external");
    }
}

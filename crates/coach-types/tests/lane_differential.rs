//! Differential property test: the lock-free ring lane against the
//! `Mutex<VecDeque>` reference lane.
//!
//! Both lane kinds must deliver *exactly* the sent sequence, in order,
//! under every mix of single sends, batched sends, batched receives,
//! capacity-crossing batches (forcing index wraparound and producer
//! backpressure), and a sender dropped mid-stream. The ring's lock-free
//! fast path earns its keep only if it is observationally identical to
//! the trivially-correct mutex lane — same contract as the scheduler's
//! `NaiveReference` scan.

use coach_types::runtime::{lane_channel, LaneKind};
use proptest::prelude::*;

/// Drive one lane of `kind` end to end: a producer thread sends `items`
/// chunked by the cycled `chunks` plan (chunk size 1 uses the scalar
/// `send`, larger chunks use `send_batch`), then drops the sender
/// (closing mid-stream from the consumer's perspective); the consumer
/// drains with the cycled `maxes` plan (max 1 uses the scalar `recv`,
/// larger maxes use `recv_batch`). Returns everything received in order.
fn drive(
    kind: LaneKind,
    capacity: usize,
    items: &[u16],
    chunks: &[usize],
    maxes: &[usize],
) -> Vec<u16> {
    let (tx, rx) = lane_channel::<u16>(kind, capacity);
    std::thread::scope(|scope| {
        let mut pending = items.to_vec();
        scope.spawn(move || {
            let mut cursor = 0;
            for chunk in chunks.iter().cycle() {
                if cursor >= pending.len() {
                    break;
                }
                let n = (*chunk).min(pending.len() - cursor);
                if n == 1 {
                    tx.send(pending[cursor]);
                } else {
                    tx.send_batch(pending[cursor..cursor + n].to_vec());
                }
                cursor += n;
            }
            pending.clear();
            // `tx` drops here: close-mid-stream as far as the consumer
            // is concerned — it may still be draining buffered items.
        });
        let mut got = Vec::with_capacity(items.len());
        let mut buf = Vec::new();
        'drain: for max in maxes.iter().cycle() {
            if *max == 1 {
                match rx.recv() {
                    Some(item) => got.push(item),
                    None => break 'drain,
                }
            } else {
                buf.clear();
                if rx.recv_batch(&mut buf, *max) == 0 {
                    break 'drain;
                }
                got.append(&mut buf);
            }
        }
        got
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn ring_lane_matches_mutex_reference(
        cap_pow in 1usize..7,
        items in prop::collection::vec(0u16..10_000, 0..400),
        chunks in prop::collection::vec(1usize..33, 1..20),
        maxes in prop::collection::vec(1usize..17, 1..8),
        cut in 0usize..400,
    ) {
        // Capacities 2..64: far below the item count, so batches cross
        // the ring boundary and the producer regularly hits a full ring.
        let capacity = 1usize << cap_pow;
        // Close mid-stream: only a prefix is ever sent.
        let sent = &items[..cut.min(items.len())];
        let ring = drive(LaneKind::Ring, capacity, sent, &chunks, &maxes);
        let mutex = drive(LaneKind::MutexRef, capacity, sent, &chunks, &maxes);
        prop_assert_eq!(&ring, &sent.to_vec());
        prop_assert_eq!(ring, mutex);
    }
}

#[test]
fn lane_differential_smoke_zero_and_tiny() {
    for kind in [LaneKind::Ring, LaneKind::MutexRef] {
        assert_eq!(drive(kind, 2, &[], &[1], &[1]), Vec::<u16>::new());
        assert_eq!(drive(kind, 2, &[7], &[5], &[4]), vec![7]);
    }
}

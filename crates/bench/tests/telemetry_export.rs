//! The telemetry exports a `--metrics-out` run writes must be machine-
//! readable: the Chrome trace and every JSONL series line have to parse
//! with the same strict JSON parser `bench_trend` uses, and the
//! Prometheus text must follow the HELP/TYPE/sample line discipline.

use coach_bench::trend::Json;
use coach_serve::{Request, RequestSource, ServeConfig, ShardedController, TelemetryConfig};
use coach_sim::{Oracle, PolicyConfig};
use coach_trace::{generate, TraceConfig};
use coach_types::prelude::*;

#[test]
fn exports_parse_with_the_trend_json_parser() {
    let trace = generate(&TraceConfig {
        cluster_count: 4,
        ..TraceConfig::small(9001)
    });
    let oracle = Oracle::new(TimeWindows::paper_default());
    let coach = PolicyConfig::paper_set().remove(2);
    let config = ServeConfig {
        telemetry: TelemetryConfig::Full,
        ..ServeConfig::replaying(coach, 0.7, trace.horizon)
    };
    let mut controller = ShardedController::new(&trace.clusters, &oracle, config, 2);
    let mut requests: Vec<Request> = RequestSource::replaying(&trace).collect();
    requests.push(Request::Stats { now: trace.horizon });
    controller.handle_batch(&requests);
    controller.finalize();

    let registry = controller.telemetry_registry().expect("telemetry armed");

    // Chrome trace: one JSON object with a traceEvents array of
    // complete-phase events carrying the required keys.
    let rings = controller.telemetry_span_rings();
    assert!(!rings.is_empty(), "full mode records span rings");
    let trace_json = coach_telemetry::chrome_trace(rings.iter().copied());
    let doc = Json::parse(&trace_json).expect("chrome trace is valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array present");
    };
    assert!(!events.is_empty(), "the run produced span events");
    for event in events {
        assert_eq!(event.str("ph"), Some("X"), "complete-phase events");
        assert!(event.str("name").is_some());
        assert!(event.num("ts").is_some());
        assert!(event.num("dur").is_some());
        assert!(event.num("tid").is_some());
    }

    // JSONL: every line is an object naming its series.
    let jsonl = registry.render_jsonl();
    assert!(jsonl.lines().count() >= 10);
    for line in jsonl.lines() {
        let series = Json::parse(line).expect("JSONL line is valid JSON");
        assert!(series.str("name").is_some(), "series carries its name");
    }

    // Prometheus text: HELP/TYPE comment headers plus `name{labels} value`
    // sample lines, nothing else.
    let prom = registry.render_text();
    assert!(prom.contains("# HELP coach_serve_accepted_total"));
    for line in prom.lines().filter(|l| !l.is_empty()) {
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "bad comment line {line:?}"
            );
        } else {
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok(),
                "sample value is numeric: {line:?}"
            );
        }
    }
}

//! Scheduling-overhead benchmarks (§4.5: the six extra bin-packing
//! dimensions add <1 ms per VM) and the window-count ablation.

use coach_sched::{ClusterScheduler, PlacementHeuristic, VmDemand};
use coach_types::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn demand(i: u64, windows: usize) -> VmDemand {
    let requested = VmConfig::general_purpose(4).demand();
    let guaranteed = requested * 0.5;
    let window_max = (0..windows)
        .map(|w| {
            let f = 0.5 + 0.4 * ((w + i as usize) % windows) as f64 / windows as f64;
            requested * f
        })
        .collect();
    VmDemand {
        vm: VmId::new(i),
        requested,
        guaranteed,
        window_max,
    }
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_placement");
    for windows in [1usize, 6, 24] {
        group.bench_with_input(
            BenchmarkId::new("place", format!("{windows}w")),
            &windows,
            |b, &windows| {
                let servers: Vec<ServerId> = (0..200).map(ServerId::new).collect();
                b.iter_batched(
                    || {
                        ClusterScheduler::new(
                            &servers,
                            HardwareConfig::general_purpose_gen4().capacity,
                            windows,
                            PlacementHeuristic::BestFit,
                        )
                    },
                    |mut sched| {
                        for i in 0..100u64 {
                            let _ = sched.place(demand(i, windows));
                        }
                        sched
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_formula4_ablation(c: &mut Criterion) {
    // Multiplexed (Formula 4) vs. summed VA pool accounting.
    let mut state = coach_sched::ServerState::new(
        ServerId::new(0),
        HardwareConfig::general_purpose_gen4().capacity,
        6,
    );
    for i in 0..20u64 {
        let _ = state.place(demand(i, 6));
    }
    c.bench_function("pool_multiplexed_formula4", |b| {
        b.iter(|| std::hint::black_box(state.oversub_pool_memory()))
    });
    c.bench_function("pool_summed_baseline", |b| {
        b.iter(|| std::hint::black_box(state.oversub_pool_memory_summed()))
    });
}

criterion_group!(benches, bench_placement, bench_formula4_ablation);
criterion_main!(benches);

//! Scheduling-overhead benchmarks (§4.5: the six extra bin-packing
//! dimensions add <1 ms per VM), the window-count ablation, and the
//! headroom-index scaling matrix (servers × windows × occupancy).

use coach_sched::{
    ClusterScheduler, PlacementHeuristic, PlacementOutcome, ScanStrategy, ServerState, VmDemand,
};
use coach_types::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn demand(i: u64, windows: usize) -> VmDemand {
    let requested = VmConfig::general_purpose(4).demand();
    let guaranteed = requested * 0.5;
    let window_max = (0..windows)
        .map(|w| {
            let f = 0.5 + 0.4 * ((w + i as usize) % windows) as f64 / windows as f64;
            requested * f
        })
        .collect();
    VmDemand {
        vm: VmId::new(i),
        requested,
        guaranteed,
        window_max,
    }
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_placement");
    for windows in [1usize, 6, 24] {
        group.bench_with_input(
            BenchmarkId::new("place", format!("{windows}w")),
            &windows,
            |b, &windows| {
                let servers: Vec<ServerId> = (0..200).map(ServerId::new).collect();
                b.iter_batched(
                    || {
                        ClusterScheduler::new(
                            &servers,
                            HardwareConfig::general_purpose_gen4().capacity,
                            windows,
                            PlacementHeuristic::BestFit,
                        )
                    },
                    |mut sched| {
                        for i in 0..100u64 {
                            let _ = sched.place(demand(i, windows));
                        }
                        sched
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

/// Build a scheduler pre-filled to roughly `occupancy` of its guaranteed
/// memory, so the index has a realistic bucket distribution.
fn filled_scheduler(
    servers: usize,
    windows: usize,
    occupancy: f64,
    scan: ScanStrategy,
) -> ClusterScheduler {
    let ids: Vec<ServerId> = (0..servers as u64).map(ServerId::new).collect();
    let capacity = HardwareConfig::general_purpose_gen4().capacity;
    let mut sched =
        ClusterScheduler::with_strategy(&ids, capacity, windows, PlacementHeuristic::BestFit, scan);
    // Each demand guarantees 8 GB against the 384 GB gen4 server; high
    // occupancy targets may saturate per-window feasibility first, in which
    // case the surplus placements are simply rejected.
    let per_server = ((capacity.memory() * occupancy) / 8.0).round() as u64;
    for i in 0..per_server * servers as u64 {
        let _ = sched.place(demand(i, windows));
    }
    sched
}

/// The scaling matrix for the headroom index: one placement against
/// clusters of varying size, window count, and occupancy, for both the
/// indexed and the naive reference scan.
fn bench_index_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_scaling");
    for &(scan, tag) in &[
        (ScanStrategy::Indexed, "indexed"),
        (ScanStrategy::NaiveReference, "naive"),
    ] {
        for servers in [64usize, 512, 2048] {
            for windows in [1usize, 6] {
                for occupancy in [0.3f64, 0.9] {
                    let id = format!("{tag}/{servers}s_{windows}w_{occupancy}o");
                    group.bench_with_input(
                        BenchmarkId::new("place_remove", id),
                        &(servers, windows, occupancy),
                        |b, &(servers, windows, occupancy)| {
                            // One persistent scheduler; each iteration places
                            // a fresh demand and removes it again, so state
                            // (and the bucket distribution) stays put.
                            let mut sched = filled_scheduler(servers, windows, occupancy, scan);
                            let mut i = 1u64 << 32;
                            b.iter(|| {
                                i += 1;
                                let d = demand(i, windows);
                                let vm = d.vm;
                                if let PlacementOutcome::Placed(_) =
                                    std::hint::black_box(sched.place(d))
                                {
                                    sched.remove(vm);
                                }
                            });
                        },
                    );
                }
            }
        }
    }
    group.finish();
}

/// The allocation-free feasibility check, on its own: the W+1-dimensional
/// exact scan and the bounds-assisted variant the index uses.
fn bench_can_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("can_fit");
    for windows in [1usize, 6, 24] {
        let mut state = ServerState::new(
            ServerId::new(0),
            HardwareConfig::general_purpose_gen4().capacity,
            windows,
        );
        for i in 0..12u64 {
            let _ = state.place(demand(i, windows));
        }
        let probe = demand(999, windows);
        let peak = probe.window_peak();
        let trough = probe.window_trough();
        group.bench_with_input(
            BenchmarkId::new("exact", format!("{windows}w")),
            &windows,
            |b, _| b.iter(|| std::hint::black_box(state.can_fit(&probe))),
        );
        group.bench_with_input(
            BenchmarkId::new("bounds", format!("{windows}w")),
            &windows,
            |b, _| {
                b.iter(|| std::hint::black_box(state.can_fit_with_bounds(&probe, &peak, &trough)))
            },
        );
    }
    group.finish();
}

fn bench_formula4_ablation(c: &mut Criterion) {
    // Multiplexed (Formula 4) vs. summed VA pool accounting.
    let mut state = coach_sched::ServerState::new(
        ServerId::new(0),
        HardwareConfig::general_purpose_gen4().capacity,
        6,
    );
    for i in 0..20u64 {
        let _ = state.place(demand(i, 6));
    }
    c.bench_function("pool_multiplexed_formula4", |b| {
        b.iter(|| std::hint::black_box(state.oversub_pool_memory()))
    });
    c.bench_function("pool_summed_baseline", |b| {
        b.iter(|| std::hint::black_box(state.oversub_pool_memory_summed()))
    });
}

criterion_group!(
    benches,
    bench_placement,
    bench_index_scaling,
    bench_can_fit,
    bench_formula4_ablation
);
criterion_main!(benches);

//! Prediction-stack benchmarks: forest training/inference and the local
//! predictor's 0.86 ms train/inference cycle (§4.5).

use coach_predict::{Ewma, ForestParams, LocalPredictor, Lstm, LstmParams, RandomForest};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(1);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..12).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (x[0] * 0.4 + x[3] * 0.3).min(1.0))
        .collect();
    (xs, ys)
}

fn bench_forest(c: &mut Criterion) {
    let (xs, ys) = training_data(2000);
    c.bench_function("forest_train_2000rows", |b| {
        b.iter(|| {
            RandomForest::fit(
                &xs,
                &ys,
                ForestParams {
                    n_trees: 24,
                    ..ForestParams::default()
                },
            )
        })
    });
    let forest = RandomForest::fit(&xs, &ys, ForestParams::default());
    c.bench_function("forest_predict", |b| {
        b.iter(|| std::hint::black_box(forest.predict_bucketed(&xs[17])))
    });
}

fn bench_local_predictor(c: &mut Criterion) {
    c.bench_function("lstm_train_step", |b| {
        let mut net = Lstm::new(LstmParams::default());
        let window = [[0.4, 0.3]; 5];
        b.iter(|| net.train_step(&window, 0.5))
    });
    c.bench_function("ewma_observe", |b| {
        let mut e = Ewma::paper_default();
        b.iter(|| e.observe(0.4))
    });
    c.bench_function("local_predictor_5min_cycle", |b| {
        // One 5-minute window = 15 observations + 1 LSTM update.
        let mut lp = LocalPredictor::new(3);
        b.iter(|| {
            for _ in 0..15 {
                lp.observe(0.42);
            }
            std::hint::black_box(lp.predict_next_5min())
        })
    });
}

criterion_group!(benches, bench_forest, bench_local_predictor);
criterion_main!(benches);

//! Memory-substrate benchmarks: step cost, trim, extend (§4.5 bandwidths
//! are model parameters; these measure the simulator's own overhead).

use coach_node::memory::{MemoryParams, MemoryServer, VmMemoryConfig};
use coach_types::VmId;
use criterion::{criterion_group, criterion_main, Criterion};

fn loaded_server(vms: u64) -> MemoryServer {
    let mut s = MemoryServer::new(512.0, 4.0, MemoryParams::default());
    s.set_pool_backing(128.0).unwrap();
    for i in 0..vms {
        s.add_vm(VmId::new(i), VmMemoryConfig::split(8.0, 2.0))
            .unwrap();
        s.set_working_set(VmId::new(i), 5.0);
    }
    s
}

fn bench_memory(c: &mut Criterion) {
    c.bench_function("memory_step_40vms", |b| {
        let mut s = loaded_server(40);
        b.iter(|| std::hint::black_box(s.step(1.0)))
    });
    c.bench_function("memory_trim", |b| {
        let mut s = loaded_server(8);
        for _ in 0..5 {
            s.step(1.0);
        }
        for i in 0..8 {
            s.set_working_set(VmId::new(i), 1.0); // everything goes cold
        }
        s.step(1.0);
        b.iter(|| std::hint::black_box(s.trim(VmId::new(0), 0.001, 1.0)))
    });
    c.bench_function("memory_extend_pool", |b| {
        let mut s = loaded_server(8);
        b.iter(|| std::hint::black_box(s.extend_pool(0.0001, 1.0)))
    });
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);

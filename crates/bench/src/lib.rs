//! Shared helpers for the figure-reproduction binaries and Criterion
//! benches.
//!
//! Each paper figure/table has a binary under `src/bin/` that prints the
//! same rows/series the paper plots (see `EXPERIMENTS.md` at the workspace
//! root for the index and paper-vs-measured records). Absolute numbers
//! differ from the paper (our substrate is a simulator, the trace is
//! synthetic); shapes and orderings are the reproduction target.

pub mod alloc;
pub mod trend;

use coach_trace::{generate, Trace, TraceConfig};

/// The standard evaluation trace used by the figure binaries: 10 clusters,
/// two weeks, deterministic seed.
pub fn eval_trace() -> Trace {
    generate(&TraceConfig {
        vm_count: 4000,
        ..TraceConfig::paper_scale(2024)
    })
}

/// A smaller trace for the heavier experiments.
pub fn small_eval_trace() -> Trace {
    generate(&TraceConfig {
        vm_count: 1200,
        subscription_count: 120,
        ..TraceConfig::paper_scale(2024)
    })
}

/// Print a figure header in a consistent format.
pub fn figure_header(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", 100.0 * f)
}

//! The bench-trend regression gate: diff a freshly produced bench JSON
//! against the committed copy and fail if any floor metric dropped below
//! its committed floor.
//!
//! The committed `BENCH_packing.json` / `BENCH_serve.json` at the repo root
//! are full-mode runs on the reference container; CI produces quick-mode
//! runs on shared runners. Two classes of checks bridge that gap:
//!
//! * **Mode-independent metrics** (speedup ratios, identity booleans, the
//!   `regression` flag) gate every run: the fresh value must clear the
//!   committed floor. When the fresh mode differs from the committed mode,
//!   the committed file's `*_floor_quick` companion field is the floor —
//!   full-mode files deliberately embed the quick constants for exactly
//!   this purpose.
//! * **Floor integrity**: the fresh file's own floor fields must not be
//!   below the committed ones (same mode) or the committed quick ones
//!   (cross mode) — so a PR cannot silently lower a floor constant in the
//!   bench binary without also regenerating the committed JSON in review.
//!
//! **Ceiling metrics** are the mirror image, for quantities that must not
//! *grow* (the streaming-ingestion memory high-water mark): the fresh
//! value must stay at or under the committed ceiling, and the fresh
//! ceiling field must not be silently *raised*.
//!
//! The vendored `serde` shim has no JSON support, so this module carries a
//! small recursive-descent JSON parser sufficient for the bench schemas.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Look up a dotted path (`"serve_floor.placed_per_s_floor"`).
    pub fn get(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            let Json::Obj(fields) = cur else { return None };
            cur = fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)?;
        }
        Some(cur)
    }

    /// The value at `path` as a number.
    pub fn num(&self, path: &str) -> Option<f64> {
        match self.get(path)? {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value at `path` as a bool.
    pub fn bool(&self, path: &str) -> Option<bool> {
        match self.get(path)? {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value at `path` as a string.
    pub fn str(&self, path: &str) -> Option<&str> {
        match self.get(path)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    out.push(match escaped {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => {
                            return Err(format!("unsupported escape \\{}", other as char));
                        }
                    });
                }
                Some(&b) => {
                    self.pos += 1;
                    out.push(b as char);
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which file/metric failed.
    pub what: String,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "REGRESSION: {}: {}", self.what, self.detail)
    }
}

/// A floor-gated metric: `value_path` in the fresh file must be at least
/// the committed floor, and the fresh floor field must not have dropped.
struct FloorMetric {
    value_path: &'static str,
    floor_path: &'static str,
    /// The committed file's quick-mode companion floor, used when the
    /// fresh and committed modes differ.
    quick_floor_path: &'static str,
    /// When set, the value check only applies if this boolean is `true`
    /// in the *fresh* file — for metrics that are meaningless on some
    /// machines (e.g. lane or scaling ratios on a single core, where the
    /// bench records the number but disarms its own gate). Floor
    /// integrity is still enforced unconditionally.
    gate_path: Option<&'static str>,
}

/// Booleans that must be `true` in the fresh file.
fn required_flags(schema: &str) -> &'static [&'static str] {
    if schema.starts_with("coach/bench_serve/") {
        &[
            "identity.online_equals_batch",
            "identity.sharded_equals_single",
            "serve_floor.met",
            "probes.estimator_matches_exhaustive",
            "probes.floor_met",
            "serve_cold_derive.batched.matches_per_item",
            "serve_cold_derive.met",
            "sharded.matches_single_shard",
            "lanes.met",
            "scaling.matches_single_shard",
            "scaling.met",
            "snapshot.roundtrip_identical",
            "telemetry.decisions_identical",
            "telemetry.met",
            "stream.matches_materialized",
            "stream.ceiling_met",
        ]
    } else if schema.starts_with("coach/bench_pipeline/") {
        &[
            "phases.derive.demands_identical",
            "phases.pack.decisions_identical",
        ]
    } else if schema.starts_with("coach/bench_scenarios/") {
        &["identity.all_match", "serve_floor.met"]
    } else {
        &[]
    }
}

fn floor_metrics(schema: &str) -> Vec<FloorMetric> {
    if schema.starts_with("coach/bench_serve/") {
        vec![
            FloorMetric {
                value_path: "serve.placed_per_s",
                floor_path: "serve_floor.placed_per_s_floor",
                quick_floor_path: "serve_floor.placed_per_s_floor_quick",
                gate_path: None,
            },
            FloorMetric {
                value_path: "probes.estimator_speedup",
                floor_path: "probes.estimator_speedup_floor",
                quick_floor_path: "probes.estimator_speedup_floor_quick",
                gate_path: None,
            },
            FloorMetric {
                value_path: "serve_cold_derive.batched.placed_per_s",
                floor_path: "serve_cold_derive.placed_per_s_floor",
                quick_floor_path: "serve_cold_derive.placed_per_s_floor_quick",
                gate_path: None,
            },
            FloorMetric {
                value_path: "lanes.ring_over_mutex",
                floor_path: "lanes.ring_over_mutex_floor",
                quick_floor_path: "lanes.ring_over_mutex_floor_quick",
                gate_path: Some("lanes.gate_active"),
            },
            FloorMetric {
                value_path: "scaling.efficiency_4x",
                floor_path: "scaling.efficiency_4x_floor",
                quick_floor_path: "scaling.efficiency_4x_floor",
                gate_path: Some("scaling.gate_active"),
            },
            FloorMetric {
                value_path: "telemetry.full_over_off",
                floor_path: "telemetry.full_over_off_floor",
                quick_floor_path: "telemetry.full_over_off_floor_quick",
                gate_path: Some("telemetry.gate_active"),
            },
        ]
    } else if schema.starts_with("coach/bench_pipeline/") {
        vec![
            FloorMetric {
                value_path: "phases.derive.speedup",
                floor_path: "phases.derive.speedup_floor",
                quick_floor_path: "phases.derive.speedup_floor_quick",
                gate_path: None,
            },
            FloorMetric {
                value_path: "phases.pack.speedup",
                floor_path: "phases.pack.speedup_floor",
                quick_floor_path: "phases.pack.speedup_floor_quick",
                gate_path: None,
            },
        ]
    } else if schema.starts_with("coach/bench_scenarios/") {
        vec![FloorMetric {
            value_path: "min_placed_per_s",
            floor_path: "serve_floor.placed_per_s_floor",
            quick_floor_path: "serve_floor.placed_per_s_floor_quick",
            gate_path: None,
        }]
    } else {
        Vec::new()
    }
}

/// A ceiling-gated metric: `value_path` in the fresh file must be at most
/// the committed ceiling, and the fresh ceiling field must not have been
/// silently raised.
struct CeilingMetric {
    value_path: &'static str,
    ceiling_path: &'static str,
    /// The committed file's quick-mode companion ceiling, used when the
    /// fresh and committed modes differ (a quick trace has fewer VMs to
    /// amortize the stream's fixed buffers over, so its per-VM ceiling
    /// sits higher).
    quick_ceiling_path: &'static str,
}

fn ceiling_metrics(schema: &str) -> Vec<CeilingMetric> {
    if schema.starts_with("coach/bench_serve/") {
        vec![CeilingMetric {
            value_path: "stream.peak_bytes_per_vm",
            ceiling_path: "stream.peak_bytes_per_vm_ceiling",
            quick_ceiling_path: "stream.peak_bytes_per_vm_ceiling_quick",
        }]
    } else {
        Vec::new()
    }
}

/// Gate a fresh bench JSON against the committed copy, returning every
/// violation (empty = pass).
pub fn gate(committed: &Json, fresh: &Json) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut fail = |what: &str, detail: String| {
        violations.push(Violation {
            what: what.to_string(),
            detail,
        });
    };

    let (Some(committed_schema), Some(fresh_schema)) =
        (committed.str("schema"), fresh.str("schema"))
    else {
        fail("schema", "missing schema field".to_string());
        return violations;
    };
    let family = |s: &str| s.rsplit_once('/').map(|(f, _)| f.to_string());
    if family(committed_schema) != family(fresh_schema) {
        fail(
            "schema",
            format!("committed {committed_schema:?} vs fresh {fresh_schema:?}"),
        );
        return violations;
    }

    match fresh.bool("regression") {
        Some(false) => {}
        Some(true) => fail(
            "regression",
            "fresh run flagged itself regressed".to_string(),
        ),
        None => fail("regression", "missing regression flag".to_string()),
    }

    for flag in required_flags(fresh_schema) {
        match fresh.bool(flag) {
            Some(true) => {}
            Some(false) => fail(flag, "expected true".to_string()),
            None => fail(flag, "missing boolean".to_string()),
        }
    }

    let same_mode = committed.str("mode") == fresh.str("mode");
    for metric in floor_metrics(fresh_schema) {
        let floor_path = if same_mode {
            metric.floor_path
        } else {
            metric.quick_floor_path
        };
        let Some(committed_floor) = committed.num(floor_path) else {
            fail(floor_path, "missing in committed file".to_string());
            continue;
        };
        // A disarmed gate (recorded by the fresh run itself) skips the
        // value check but not the floor-integrity check below.
        let gated_off = metric
            .gate_path
            .is_some_and(|g| fresh.bool(g) == Some(false));
        match fresh.num(metric.value_path) {
            _ if gated_off => {}
            Some(value) if value >= committed_floor => {}
            Some(value) => fail(
                metric.value_path,
                format!("{value:.2} below committed floor {committed_floor:.2}"),
            ),
            None => fail(metric.value_path, "missing in fresh file".to_string()),
        }
        // Floor integrity: the bench binary's own floor must not have been
        // quietly lowered relative to what the repo has reviewed.
        match fresh.num(floor_path) {
            Some(fresh_floor) if fresh_floor >= committed_floor => {}
            Some(fresh_floor) => fail(
                floor_path,
                format!("fresh floor {fresh_floor:.2} below committed {committed_floor:.2}"),
            ),
            None => fail(floor_path, "missing in fresh file".to_string()),
        }
    }

    for metric in ceiling_metrics(fresh_schema) {
        let ceiling_path = if same_mode {
            metric.ceiling_path
        } else {
            metric.quick_ceiling_path
        };
        let Some(committed_ceiling) = committed.num(ceiling_path) else {
            fail(ceiling_path, "missing in committed file".to_string());
            continue;
        };
        match fresh.num(metric.value_path) {
            Some(value) if value <= committed_ceiling => {}
            Some(value) => fail(
                metric.value_path,
                format!("{value:.2} above committed ceiling {committed_ceiling:.2}"),
            ),
            None => fail(metric.value_path, "missing in fresh file".to_string()),
        }
        // Ceiling integrity: the binary's own ceiling must not have been
        // quietly raised relative to what the repo has reviewed.
        match fresh.num(ceiling_path) {
            Some(fresh_ceiling) if fresh_ceiling <= committed_ceiling => {}
            Some(fresh_ceiling) => fail(
                ceiling_path,
                format!("fresh ceiling {fresh_ceiling:.2} above committed {committed_ceiling:.2}"),
            ),
            None => fail(ceiling_path, "missing in fresh file".to_string()),
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_json() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2.5, -3e2]}, "s": "x\ny", "t": true, "n": null}"#)
            .unwrap();
        assert!(doc.num("a.b").is_none(), "an array is not a number");
        assert_eq!(
            doc.get("a.b"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0),
            ]))
        );
        assert_eq!(doc.str("s"), Some("x\ny"));
        assert_eq!(doc.bool("t"), Some(true));
        assert_eq!(doc.get("n"), Some(&Json::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a": }"#).is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    fn serve_doc(placed: f64, floor: f64, speedup: f64, regression: bool) -> Json {
        Json::parse(&format!(
            r#"{{
              "schema": "coach/bench_serve/v6", "mode": "full",
              "identity": {{"online_equals_batch": true, "sharded_equals_single": true}},
              "serve": {{"placed_per_s": {placed}}},
              "serve_floor": {{"placed_per_s_floor": {floor}, "placed_per_s_floor_quick": 30000, "met": true}},
              "probes": {{"estimator_matches_exhaustive": true, "estimator_speedup": {speedup},
                          "estimator_speedup_floor": 4.0, "estimator_speedup_floor_quick": 2.0,
                          "floor_met": true}},
              "serve_cold_derive": {{"batched": {{"placed_per_s": {placed}, "matches_per_item": true}},
                                    "placed_per_s_floor": {floor}, "placed_per_s_floor_quick": 20000,
                                    "met": true}},
              "sharded": {{"matches_single_shard": true}},
              "lanes": {{"ring_over_mutex": 0.15, "ring_over_mutex_floor": 1.0,
                        "ring_over_mutex_floor_quick": 0.7, "gate_active": false, "met": true}},
              "scaling": {{"matches_single_shard": true, "efficiency_4x": 1.1,
                          "efficiency_4x_floor": 2.5, "gate_active": false, "met": true}},
              "snapshot": {{"bytes": 1000000, "roundtrip_identical": true}},
              "telemetry": {{"full_over_off": 0.99, "full_over_off_floor": 0.95,
                            "full_over_off_floor_quick": 0.70, "gate_active": true,
                            "met": true, "decisions_identical": true}},
              "stream": {{"matches_materialized": true, "peak_bytes_per_vm": 120.0,
                         "peak_bytes_per_vm_ceiling": 256.0,
                         "peak_bytes_per_vm_ceiling_quick": 512.0, "ceiling_met": true}},
              "regression": {regression}
            }}"#
        ))
        .unwrap()
    }

    /// Flip a boolean or number at a dotted path inside a fixture doc.
    fn set(doc: &mut Json, path: &str, value: Json) {
        let Json::Obj(fields) = doc else {
            panic!("not an object")
        };
        let (head, rest) = path
            .split_once('.')
            .map_or((path, None), |(h, r)| (h, Some(r)));
        let slot = fields
            .iter_mut()
            .find(|(k, _)| k == head)
            .map(|(_, v)| v)
            .expect("path exists in fixture");
        match rest {
            None => *slot = value,
            Some(rest) => set(slot, rest, value),
        }
    }

    #[test]
    fn gate_passes_matching_run() {
        let committed = serve_doc(300_000.0, 100_000.0, 8.0, false);
        let fresh = serve_doc(250_000.0, 100_000.0, 6.0, false);
        assert_eq!(gate(&committed, &fresh), Vec::new());
    }

    #[test]
    fn gate_flags_floor_miss_and_self_regression() {
        let committed = serve_doc(300_000.0, 100_000.0, 8.0, false);
        let fresh = serve_doc(80_000.0, 100_000.0, 3.0, true);
        let violations = gate(&committed, &fresh);
        let whats: Vec<&str> = violations.iter().map(|v| v.what.as_str()).collect();
        assert!(whats.contains(&"regression"));
        assert!(whats.contains(&"serve.placed_per_s"));
        assert!(whats.contains(&"probes.estimator_speedup"));
    }

    #[test]
    fn gate_flags_lowered_floor() {
        let committed = serve_doc(300_000.0, 100_000.0, 8.0, false);
        // Value clears the committed floor, but the binary's floor constant
        // was dropped to 50k without regenerating the committed JSON.
        let fresh = serve_doc(250_000.0, 50_000.0, 8.0, false);
        let violations = gate(&committed, &fresh);
        assert!(violations
            .iter()
            .any(|v| v.what == "serve_floor.placed_per_s_floor"));
    }

    #[test]
    fn gate_uses_quick_floor_across_modes() {
        let committed = serve_doc(300_000.0, 100_000.0, 8.0, false);
        let mut fresh = serve_doc(40_000.0, 30_000.0, 2.5, false);
        // Make the fresh run quick-mode: 40k/s clears the 30k quick floor
        // even though it is far below the full floor.
        if let Json::Obj(fields) = &mut fresh {
            for (k, v) in fields.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("quick".to_string());
                }
            }
        }
        assert_eq!(gate(&committed, &fresh), Vec::new());
    }

    #[test]
    fn gated_metrics_skip_value_check_when_disarmed() {
        // Committed file has a disarmed lane gate (single-core reference
        // container): a fresh run whose own gate is also off passes even
        // though 0.15 is far below the 1.0 floor...
        let committed = serve_doc(300_000.0, 100_000.0, 8.0, false);
        let fresh = serve_doc(250_000.0, 100_000.0, 6.0, false);
        assert_eq!(gate(&committed, &fresh), Vec::new());

        // ...an armed fresh gate enforces the committed floor...
        let mut armed = serve_doc(250_000.0, 100_000.0, 6.0, false);
        set(&mut armed, "lanes.gate_active", Json::Bool(true));
        let violations = gate(&committed, &armed);
        assert!(violations.iter().any(|v| v.what == "lanes.ring_over_mutex"));

        // ...and clearing the floor while armed passes.
        let mut armed_fast = serve_doc(250_000.0, 100_000.0, 6.0, false);
        set(&mut armed_fast, "lanes.gate_active", Json::Bool(true));
        set(&mut armed_fast, "lanes.ring_over_mutex", Json::Num(1.4));
        assert_eq!(gate(&committed, &armed_fast), Vec::new());

        // Floor integrity stays unconditional: a lowered lane floor fails
        // even with the gate off.
        let mut lowered = serve_doc(250_000.0, 100_000.0, 6.0, false);
        set(&mut lowered, "lanes.ring_over_mutex_floor", Json::Num(0.5));
        assert!(gate(&committed, &lowered)
            .iter()
            .any(|v| v.what == "lanes.ring_over_mutex_floor"));

        // The met flags themselves are required: a fresh run that flags a
        // lane or scaling miss fails regardless of gating.
        let mut missed = serve_doc(250_000.0, 100_000.0, 6.0, false);
        set(&mut missed, "scaling.met", Json::Bool(false));
        assert!(gate(&committed, &missed)
            .iter()
            .any(|v| v.what == "scaling.met"));
    }

    #[test]
    fn gate_flags_telemetry_overhead_miss() {
        let committed = serve_doc(300_000.0, 100_000.0, 8.0, false);
        // Full-mode telemetry slipped to 0.80x of Off throughput: below
        // the committed 0.95 floor while the gate is armed.
        let mut fresh = serve_doc(250_000.0, 100_000.0, 6.0, false);
        set(&mut fresh, "telemetry.full_over_off", Json::Num(0.80));
        assert!(gate(&committed, &fresh)
            .iter()
            .any(|v| v.what == "telemetry.full_over_off"));

        // A run that flags non-identical decisions fails outright.
        let mut diverged = serve_doc(250_000.0, 100_000.0, 6.0, false);
        set(
            &mut diverged,
            "telemetry.decisions_identical",
            Json::Bool(false),
        );
        assert!(gate(&committed, &diverged)
            .iter()
            .any(|v| v.what == "telemetry.decisions_identical"));
    }

    #[test]
    fn gate_flags_memory_ceiling_breach_and_raised_ceiling() {
        let committed = serve_doc(300_000.0, 100_000.0, 8.0, false);

        // Ingestion memory grew past the committed per-VM ceiling.
        let mut bloated = serve_doc(250_000.0, 100_000.0, 6.0, false);
        set(&mut bloated, "stream.peak_bytes_per_vm", Json::Num(300.0));
        assert!(gate(&committed, &bloated)
            .iter()
            .any(|v| v.what == "stream.peak_bytes_per_vm"));

        // The binary's ceiling constant was raised without regenerating the
        // committed JSON — the mirror of a silently lowered floor.
        let mut raised = serve_doc(250_000.0, 100_000.0, 6.0, false);
        set(
            &mut raised,
            "stream.peak_bytes_per_vm_ceiling",
            Json::Num(4096.0),
        );
        assert!(gate(&committed, &raised)
            .iter()
            .any(|v| v.what == "stream.peak_bytes_per_vm_ceiling"));

        // A fresh run that flags its own ceiling miss fails outright, and a
        // stream/materialized divergence is a required flag.
        let mut missed = serve_doc(250_000.0, 100_000.0, 6.0, false);
        set(&mut missed, "stream.ceiling_met", Json::Bool(false));
        assert!(gate(&committed, &missed)
            .iter()
            .any(|v| v.what == "stream.ceiling_met"));
        let mut diverged = serve_doc(250_000.0, 100_000.0, 6.0, false);
        set(
            &mut diverged,
            "stream.matches_materialized",
            Json::Bool(false),
        );
        assert!(gate(&committed, &diverged)
            .iter()
            .any(|v| v.what == "stream.matches_materialized"));
    }

    #[test]
    fn gate_uses_quick_ceiling_across_modes() {
        let committed = serve_doc(300_000.0, 100_000.0, 8.0, false);
        // Quick traces amortize the stream's fixed buffers over fewer VMs:
        // 400 B/VM breaches the 256 B full ceiling but clears the 512 B
        // quick companion.
        let mut fresh = serve_doc(40_000.0, 30_000.0, 2.5, false);
        if let Json::Obj(fields) = &mut fresh {
            for (k, v) in fields.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("quick".to_string());
                }
            }
        }
        set(&mut fresh, "stream.peak_bytes_per_vm", Json::Num(400.0));
        assert_eq!(gate(&committed, &fresh), Vec::new());
    }

    fn scenarios_doc(mode: &str, min: f64, floor: f64, all_match: bool) -> Json {
        Json::parse(&format!(
            r#"{{
              "schema": "coach/bench_scenarios/v1", "mode": "{mode}",
              "identity": {{"all_match": {all_match}}},
              "min_placed_per_s": {min},
              "serve_floor": {{"placed_per_s_floor": {floor},
                              "placed_per_s_floor_quick": 8000, "met": true}},
              "regression": false
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn gate_covers_scenarios_family() {
        let committed = scenarios_doc("full", 40_000.0, 20_000.0, true);

        // A same-mode run holding the floor passes.
        let fresh = scenarios_doc("full", 30_000.0, 20_000.0, true);
        assert_eq!(gate(&committed, &fresh), Vec::new());

        // A quick CI run is held to the committed quick companion floor.
        let quick = scenarios_doc("quick", 9_000.0, 8_000.0, true);
        assert_eq!(gate(&committed, &quick), Vec::new());
        let slow_quick = scenarios_doc("quick", 5_000.0, 8_000.0, true);
        assert!(gate(&committed, &slow_quick)
            .iter()
            .any(|v| v.what == "min_placed_per_s"));

        // Any scenario diverging from its materialized replay fails.
        let diverged = scenarios_doc("full", 30_000.0, 20_000.0, false);
        assert!(gate(&committed, &diverged)
            .iter()
            .any(|v| v.what == "identity.all_match"));
    }

    #[test]
    fn gate_rejects_schema_family_mismatch() {
        let committed = serve_doc(300_000.0, 100_000.0, 8.0, false);
        let fresh = Json::parse(
            r#"{"schema": "coach/bench_pipeline/v3", "mode": "full", "regression": false}"#,
        )
        .unwrap();
        assert!(gate(&committed, &fresh).iter().any(|v| v.what == "schema"));
    }
}

//! Figure 12: group history size vs. utilization range per grouping.

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_trace::analytics::{grouping_analysis, GroupingKind};
use coach_types::prelude::*;

fn main() {
    figure_header(
        "Figure 12",
        "prior VMs per group and their peak-utilization range",
    );
    let trace = small_eval_trace();
    let split = Timestamp::from_days(7);
    for resource in [ResourceKind::Cpu, ResourceKind::Memory] {
        println!("\n-- {resource} --");
        println!(
            "{:<30} {:>10} {:>12} {:>12} {:>12}",
            "grouping", "median n", "median rng", "<=10% gap", "<=20% gap"
        );
        for g in GroupingKind::ALL {
            let r = grouping_analysis(&trace, resource, g, split);
            println!(
                "{:<30} {:>10} {:>12} {:>12} {:>12}",
                g.to_string(),
                r.median_prior_vms,
                pct(r.median_peak_range),
                pct(r.predictable_within_10),
                pct(r.predictable_within_20)
            );
        }
    }
    println!("\npaper: config-only groups are large but wide; subscription+config");
    println!("groups are smallest and tightest (memory: >70% of VMs within 10%).");
}

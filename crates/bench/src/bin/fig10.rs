//! Figure 10: weekly savings series for multiple window lengths (one
//! cluster).

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_trace::analytics::window_savings;
use coach_types::prelude::*;

fn main() {
    figure_header(
        "Figure 10",
        "% of cores/memory saved per week slot, one cluster",
    );
    let trace = small_eval_trace();
    let cluster = trace.clusters[0].id;
    for wpd in [1u32, 4, 6, 24] {
        let tw = TimeWindows::new(wpd);
        let s = window_savings(&trace, Some(cluster), tw);
        // Print one value per day (window values averaged) to keep rows sane.
        let per_day: Vec<String> = s
            .cpu_series
            .chunks(tw.count())
            .map(|c| pct(c.iter().sum::<f64>() / c.len() as f64))
            .collect();
        println!(
            "{:>8} cpu  avg {:>6}: {:?}",
            tw.label(),
            pct(s.cpu_avg),
            per_day
        );
        let per_day_mem: Vec<String> = s
            .mem_series
            .chunks(tw.count())
            .map(|c| pct(c.iter().sum::<f64>() / c.len() as f64))
            .collect();
        println!(
            "{:>8} mem  avg {:>6}: {:?}",
            tw.label(),
            pct(s.mem_avg),
            per_day_mem
        );
    }
    let ideal = window_savings(&trace, Some(cluster), TimeWindows::ideal());
    println!("{:>8} cpu  avg {:>6}", "ideal", pct(ideal.cpu_avg));
    println!("{:>8} mem  avg {:>6}", "ideal", pct(ideal.mem_avg));
    println!("\npaper: 1x24h saves ~8%/8%; 4x6h ~20% CPU / 15% memory; the ideal");
    println!("5-minute multiplexing ~34% CPU / 18% memory.");
}

//! Figure 17: oversubscribed accesses vs. prediction percentile and window
//! length.

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_trace::analytics::oversub_access;
use coach_types::prelude::*;

fn main() {
    figure_header(
        "Figure 17",
        "packing vs. performance: accesses to oversub memory",
    );
    let trace = small_eval_trace();
    let percentiles = [65.0, 70.0, 75.0, 80.0, 85.0, 90.0, 95.0];
    let windows = [24u32, 12, 6, 4, 2, 1];

    println!("(a) mean % of accesses to oversubscribed memory");
    print!("{:>8}", "window");
    for p in percentiles {
        print!(" {:>7}", format!("P{p:.0}"));
    }
    println!();
    for wpd in windows {
        let tw = TimeWindows::new(wpd);
        print!("{:>8}", tw.label());
        for p in percentiles {
            let r = oversub_access(&trace, Percentile::new(p), tw);
            print!(" {:>7}", pct(r.mean_oversub_access));
        }
        println!();
    }
    print!("{:>8}", "Worst");
    for p in percentiles {
        print!(" {:>7}", pct(1.0 - p / 100.0));
    }
    println!();

    println!("\n(b) CDF of per-VM oversub access share at 6x4h windows");
    print!("{:>6}", "below");
    for th in [0.01, 0.02, 0.05, 0.10, 0.20] {
        print!(" {:>8}", pct(th));
    }
    println!();
    for p in [65.0, 80.0, 95.0] {
        let r = oversub_access(&trace, Percentile::new(p), TimeWindows::paper_default());
        print!("P{p:<5.0}");
        for th in [0.01, 0.02, 0.05, 0.10, 0.20] {
            print!(" {:>8}", pct(r.fraction_below(th)));
        }
        println!();
    }
    println!("\npaper: measured accesses are far below the (100-PX)% worst case;");
    println!("finer windows risk more oversub accesses at low percentiles; at P80,");
    println!("99% of VMs have <5% oversubscribed accesses.");
}

//! Figure 9: consecutive-day consistency of window maxima.

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_trace::analytics::{consistency, CONSISTENCY_THRESHOLDS};
use coach_types::prelude::*;

fn main() {
    figure_header(
        "Figure 9",
        "CDF of |window max difference| between consecutive days",
    );
    let trace = small_eval_trace();
    let partitions: Vec<TimeWindows> = [24u32, 12, 8, 6, 4, 2, 1]
        .iter()
        .map(|w| TimeWindows::new(*w))
        .collect();
    for resource in [ResourceKind::Cpu, ResourceKind::Memory] {
        let r = consistency(&trace, resource, &partitions);
        println!("\n-- {resource} --");
        print!("{:>10}", "window");
        for th in CONSISTENCY_THRESHOLDS {
            print!(" {:>6.0}%", th * 100.0);
        }
        println!();
        for (tw, cdf) in &r.cdf_per_window {
            print!("{:>10}", tw.label());
            for v in cdf {
                print!(" {:>7}", pct(*v));
            }
            println!();
        }
    }
    println!("\npaper: with 4x6h windows, 80% of VMs differ by at most 20% CPU and");
    println!("5% memory between consecutive days.");
}

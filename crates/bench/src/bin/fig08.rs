//! Figure 8: peak/valley placement across six 4-hour windows.

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_trace::analytics::peaks_valleys;
use coach_types::prelude::*;

fn main() {
    figure_header("Figure 8", "VMs with a peak/valley in each 4-hour window");
    let trace = small_eval_trace();
    for resource in [ResourceKind::Cpu, ResourceKind::Memory] {
        let r = peaks_valleys(&trace, resource, TimeWindows::paper_default());
        println!("\n-- {resource} peaks (share of peak-having VMs per window) --");
        println!(
            "{:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "day", "0-4h", "4-8h", "8-12h", "12-16h", "16-20h", "20-24h", "none"
        );
        for d in &r.per_day {
            print!("{:>5}", d.weekday.to_string());
            for w in 0..6 {
                print!(" {:>8}", pct(d.peak_share[w]));
            }
            println!(" {:>8}", pct(d.none_share));
        }
    }
    println!("\npaper: CPU peaks/valleys spread evenly; <10% of VMs have no CPU");
    println!("pattern; ~70% of VMs have memory peaks.");
}

//! Figure 5: bottleneck resource per cluster.

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_trace::analytics::{stranding, OversubMode};
use coach_types::prelude::*;

fn main() {
    figure_header(
        "Figure 5",
        "% of time each resource bottlenecks new allocations",
    );
    let trace = small_eval_trace();
    for mode in OversubMode::ALL {
        let r = stranding(&trace, mode, SimDuration::from_hours(12));
        println!("\n-- {mode} --");
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8}",
            "cluster", "CPU", "Mem", "Net", "SSD"
        );
        let mut clusters: Vec<_> = r.bottleneck_share.iter().collect();
        clusters.sort_by_key(|(id, _)| id.raw());
        for (id, share) in clusters {
            println!(
                "{:<12} {:>8} {:>8} {:>8} {:>8}",
                id.to_string(),
                pct(share[ResourceKind::Cpu]),
                pct(share[ResourceKind::Memory]),
                pct(share[ResourceKind::Network]),
                pct(share[ResourceKind::Ssd]),
            );
        }
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8}",
            "ALL",
            pct(r.bottleneck_share_all[ResourceKind::Cpu]),
            pct(r.bottleneck_share_all[ResourceKind::Memory]),
            pct(r.bottleneck_share_all[ResourceKind::Network]),
            pct(r.bottleneck_share_all[ResourceKind::Ssd]),
        );
    }
    println!("\npaper: bottleneck shifts CPU (69%->33%) to memory/network as CPU and");
    println!("then memory are oversubscribed; clusters differ with their hardware.");
}

//! Figure 3: resource-hours and VM count vs. VM size.

use coach_bench::{eval_trace, figure_header, pct};
use coach_trace::analytics::size_profile;

fn main() {
    figure_header(
        "Figure 3",
        "resource-hours and number of VMs larger than a size",
    );
    let p = size_profile(&eval_trace());
    println!("-- by cores --");
    println!("{:>8} {:>12} {:>10}", ">= cores", "CPU-hours", "VMs");
    for r in &p.by_cores {
        println!(
            "{:>8} {:>12} {:>10}",
            r.at_least,
            pct(r.hours_share),
            pct(r.vm_share)
        );
    }
    println!("\n-- by memory --");
    println!("{:>8} {:>12} {:>10}", ">= GB", "GB-hours", "VMs");
    for r in &p.by_memory {
        println!(
            "{:>8} {:>12} {:>10}",
            r.at_least,
            pct(r.hours_share),
            pct(r.vm_share)
        );
    }
    println!("\npaper: VMs >= 32 GB hold >60% of GB-hours while being ~20% of VMs.");
}

//! Table 2: the evaluated cloud workloads.

use coach_bench::figure_header;
use coach_workloads::Workload;

fn main() {
    figure_header("Table 2", "evaluated cloud workloads");
    println!(
        "{:<14} {:<34} {:<18} {:>8} {:>8}",
        "workload", "description", "key metric", "WSS GB", "VM GB"
    );
    for w in Workload::catalog() {
        println!(
            "{:<14} {:<34} {:<18} {:>8.0} {:>8.0}",
            w.name,
            w.description,
            w.metric.to_string(),
            w.working_set_gb,
            w.vm_size_gb
        );
    }
}

//! Figure 6: CPU vs. memory utilization correlation (mean and range).

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_trace::analytics::util_correlation;
use coach_types::prelude::*;

fn main() {
    figure_header("Figure 6", "correlation between CPU and memory utilization");
    let c = util_correlation(&small_eval_trace());
    println!("long-running VMs analysed: {}", c.points.len());
    println!("pearson(mean cpu, mean mem)  = {:+.2}", c.mean_cpu_mem_corr);
    println!(
        "pearson(range cpu, range mem) = {:+.2}",
        c.range_cpu_mem_corr
    );
    println!(
        "median P95-P5 range: CPU {} / memory {}",
        pct(c.median_range[ResourceKind::Cpu]),
        pct(c.median_range[ResourceKind::Memory])
    );
    // Distribution buckets for the scatter panels.
    let mut mean_hist = [0usize; 5];
    let mut range_hist = [0usize; 5];
    for p in &c.points {
        mean_hist[((p.mean[ResourceKind::Cpu] * 5.0) as usize).min(4)] += 1;
        range_hist[((p.range[ResourceKind::Cpu] * 5.0) as usize).min(4)] += 1;
    }
    println!("\nmean CPU util distribution (20% buckets): {mean_hist:?}");
    println!("CPU range distribution (20% buckets):     {range_hist:?}");
    println!("\npaper: most VMs < 50% mean CPU; CPU ranges reach 60% while memory");
    println!("stays within 30% (half of VMs < 10%).");
}

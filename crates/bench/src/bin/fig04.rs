//! Figure 4: average stranding per resource under hypothetical
//! oversubscription levels.

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_trace::analytics::{stranding, OversubMode};
use coach_types::prelude::*;

fn main() {
    figure_header(
        "Figure 4",
        "average stranded resources vs. oversubscription level",
    );
    let trace = small_eval_trace();
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "mode", "CPU", "Memory", "Network", "SSD"
    );
    for mode in OversubMode::ALL {
        let r = stranding(&trace, mode, SimDuration::from_hours(12));
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8}",
            mode.to_string(),
            pct(r.avg_stranded[ResourceKind::Cpu]),
            pct(r.avg_stranded[ResourceKind::Memory]),
            pct(r.avg_stranded[ResourceKind::Network]),
            pct(r.avg_stranded[ResourceKind::Ssd]),
        );
    }
    println!("\npaper: CPU least stranded (8%), SSD most (54%); oversubscribing CPU");
    println!("increases CPU stranding and decreases the rest.");
}

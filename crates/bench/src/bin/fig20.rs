//! Figure 20: additional capacity and performance violations per policy.
//!
//! Uses the trained random-forest model (not the oracle) so that honest
//! prediction error can produce violations, as in the paper.

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_predict::{ForestParams, ModelConfig, UtilizationModel};
use coach_sim::{packing_experiment, Model, PolicyConfig};
use coach_types::prelude::*;

fn main() {
    figure_header(
        "Figure 20",
        "capacity and violations per oversubscription policy",
    );
    let trace = small_eval_trace();
    let (history, _) = trace.split_by_arrival(Timestamp::from_days(7));

    let train = |percentile: Percentile| {
        UtilizationModel::train(
            &history,
            ModelConfig {
                tw: TimeWindows::paper_default(),
                percentile,
                forest: ForestParams {
                    n_trees: 24,
                    ..ForestParams::default()
                },
            },
        )
    };
    let model_p95 = train(Percentile::P95);
    let model_p50 = train(Percentile::P50);

    let mut results = Vec::new();
    for config in PolicyConfig::paper_set() {
        let model = if config.percentile < Percentile::new(90.0) {
            &model_p50
        } else {
            &model_p95
        };
        let preds = Model::new(model);
        results.push(packing_experiment(&trace, &preds, config, 1.0));
    }
    let baseline = results[0].clone();

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "policy", "capacity", "additional", "servers", "CPU viol", "Mem viol"
    );
    for r in &results {
        println!(
            "{:<12} {:>10.0} {:>12} {:>12} {:>10} {:>10}",
            r.label,
            r.probe_capacity,
            pct(r.additional_capacity_vs(&baseline)),
            r.peak_servers_in_use,
            pct(r.cpu_violation_rate),
            pct(r.mem_violation_rate),
        );
    }
    println!("\npaper: Single +22% over None; Coach +16% over Single; AggrCoach +9%");
    println!("more; violations: Single 2% CPU, Coach +1% CPU / <1% memory, AggrCoach");
    println!("+2% memory.");
}

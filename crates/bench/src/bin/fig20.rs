//! Figure 20: additional capacity and performance violations per policy.
//!
//! Uses the trained random-forest model (not the oracle) so that honest
//! prediction error can produce violations, as in the paper.
//!
//! Produced by the **sharded online controller**: each policy's replay
//! streams through [`coach_serve::ShardedController`], and the figure's
//! columns come from the merged [`coach_serve::StatsReport`] (via its
//! `to_packing_result` view) rather than the batch `packing_experiment` —
//! and every policy's online result is asserted against a batch replay
//! with the same trained model at runtime, so the figure doubles as a
//! differential check on the serving path.
//!
//! Every replay runs with full telemetry armed, and a per-policy summary
//! line from the merged registry (admits, p99 admission latency, span
//! volume, worker restarts) follows the figure — the observable face of
//! the same run the columns came from.

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_predict::{ForestParams, ModelConfig, UtilizationModel};
use coach_serve::{RequestSource, ServeConfig, ShardedController, TelemetryConfig};
use coach_sim::{packing_experiment, Model, PackingResult, PolicyConfig};
use coach_telemetry::{Histogram, MetricValue};
use coach_types::prelude::*;

/// The online sharded replay must reproduce the batch experiment: every
/// integer decision field exactly, the floating-point capacity sums to
/// within accumulation-order ulps (shards sum their slices independently).
fn assert_matches_batch(label: &str, online: &PackingResult, batch: &PackingResult) {
    assert_eq!(online.accepted, batch.accepted, "{label}: accepted");
    assert_eq!(online.rejected, batch.rejected, "{label}: rejected");
    assert_eq!(
        online.probe_capacity, batch.probe_capacity,
        "{label}: probe capacity"
    );
    assert_eq!(
        online.peak_servers_in_use, batch.peak_servers_in_use,
        "{label}: peak servers"
    );
    assert_eq!(
        online.cpu_violation_rate, batch.cpu_violation_rate,
        "{label}: CPU violations"
    );
    assert_eq!(
        online.mem_violation_rate, batch.mem_violation_rate,
        "{label}: memory violations"
    );
    let rel = (online.accepted_core_hours - batch.accepted_core_hours).abs()
        / batch.accepted_core_hours.max(1.0);
    assert!(rel < 1e-9, "{label}: core-hours rel err {rel}");
    let rel = (online.accepted_gb_hours - batch.accepted_gb_hours).abs()
        / batch.accepted_gb_hours.max(1.0);
    assert!(rel < 1e-9, "{label}: gb-hours rel err {rel}");
}

/// One policy's observability summary from the merged registry: counters
/// summed across shard labels, the admission histograms merged for a true
/// cross-shard p99, span volume from the rings, and the first-class
/// `coach_serve_worker_restarts_total` counter (always zero under the
/// thread backend — its presence is the point: the same series a process
/// deployment alerts on).
fn telemetry_summary(label: &str, controller: &ShardedController<'_>) -> String {
    let registry = controller
        .telemetry_registry()
        .expect("fig20 replays run with full telemetry");
    let snapshot = registry.snapshot();
    let sum = |name: &str| -> u64 {
        snapshot
            .counters_with_prefix(name)
            .into_iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, _, v)| v)
            .sum()
    };
    let mut admission = Histogram::default();
    for entry in &snapshot.entries {
        if entry.name == "coach_serve_admission_latency_ns" {
            if let MetricValue::Histogram(h) = &entry.value {
                admission.merge(h);
            }
        }
    }
    let rings = controller.telemetry_span_rings();
    let spans: usize = rings.iter().map(|r| r.events().len()).sum();
    let dropped: u64 = rings.iter().map(|r| r.dropped()).sum();
    format!(
        "{:<12} {:>7} admits {:>6} rejects | p99 admit {:>7.2}us | {:>6} spans \
         ({} dropped) | {} worker restarts",
        label,
        sum("coach_serve_accepted_total"),
        sum("coach_serve_rejected_total"),
        admission.quantile_us(0.99),
        spans,
        dropped,
        sum("coach_serve_worker_restarts_total"),
    )
}

fn main() {
    figure_header(
        "Figure 20",
        "capacity and violations per oversubscription policy (online, sharded)",
    );
    let trace = small_eval_trace();
    let (history, _) = trace.split_by_arrival(Timestamp::from_days(7));

    let train = |percentile: Percentile| {
        UtilizationModel::train(
            &history,
            ModelConfig {
                tw: TimeWindows::paper_default(),
                percentile,
                forest: ForestParams {
                    n_trees: 24,
                    ..ForestParams::default()
                },
            },
        )
    };
    let model_p95 = train(Percentile::P95);
    let model_p50 = train(Percentile::P50);
    let shards = available_threads().clamp(1, 4);

    let mut results = Vec::new();
    let mut telemetry_lines = Vec::new();
    for config in PolicyConfig::paper_set() {
        let model = if config.percentile < Percentile::new(90.0) {
            &model_p50
        } else {
            &model_p95
        };
        let preds = Model::new(model);
        let serve_config = ServeConfig {
            telemetry: TelemetryConfig::Full,
            ..ServeConfig::replaying(config, 1.0, trace.horizon)
        };
        let mut controller = ShardedController::new(&trace.clusters, &preds, serve_config, shards);
        let online = controller.run(RequestSource::replaying(&trace));
        let batch = packing_experiment(&trace, &preds, config, 1.0);
        assert_matches_batch(config.label, &online, &batch);
        telemetry_lines.push(telemetry_summary(config.label, &controller));
        results.push(online);
    }
    let baseline = results[0].clone();

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "policy", "capacity", "additional", "servers", "CPU viol", "Mem viol"
    );
    for r in &results {
        println!(
            "{:<12} {:>10.0} {:>12} {:>12} {:>10} {:>10}",
            r.label,
            r.probe_capacity,
            pct(r.additional_capacity_vs(&baseline)),
            r.peak_servers_in_use,
            pct(r.cpu_violation_rate),
            pct(r.mem_violation_rate),
        );
    }
    // Admit p99 is wall-clock (log2-bucket histogram), so it legitimately
    // varies run to run; every other column is decision-derived and exact.
    println!("\ntelemetry (merged registry, per policy; admit p99 is wall-clock):");
    for line in &telemetry_lines {
        println!("  {line}");
    }

    println!("\npaper: Single +22% over None; Coach +16% over Single; AggrCoach +9%");
    println!("more; violations: Single 2% CPU, Coach +1% CPU / <1% memory, AggrCoach");
    println!("+2% memory.");
}

//! Figure 20: additional capacity and performance violations per policy.
//!
//! Uses the trained random-forest model (not the oracle) so that honest
//! prediction error can produce violations, as in the paper.
//!
//! Produced by the **sharded online controller**: each policy's replay
//! streams through [`coach_serve::ShardedController`], and the figure's
//! columns come from the merged [`coach_serve::StatsReport`] (via its
//! `to_packing_result` view) rather than the batch `packing_experiment` —
//! the online path is differentially pinned to the batch one, so the
//! numbers are identical.

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_predict::{ForestParams, ModelConfig, UtilizationModel};
use coach_serve::{RequestSource, ShardedController};
use coach_sim::{Model, PolicyConfig};
use coach_types::prelude::*;

fn main() {
    figure_header(
        "Figure 20",
        "capacity and violations per oversubscription policy (online, sharded)",
    );
    let trace = small_eval_trace();
    let (history, _) = trace.split_by_arrival(Timestamp::from_days(7));

    let train = |percentile: Percentile| {
        UtilizationModel::train(
            &history,
            ModelConfig {
                tw: TimeWindows::paper_default(),
                percentile,
                forest: ForestParams {
                    n_trees: 24,
                    ..ForestParams::default()
                },
            },
        )
    };
    let model_p95 = train(Percentile::P95);
    let model_p50 = train(Percentile::P50);
    let shards = available_threads().clamp(1, 4);

    let mut results = Vec::new();
    for config in PolicyConfig::paper_set() {
        let model = if config.percentile < Percentile::new(90.0) {
            &model_p50
        } else {
            &model_p95
        };
        let preds = Model::new(model);
        let mut controller = ShardedController::replaying(&trace, &preds, config, 1.0, shards);
        results.push(controller.run(RequestSource::replaying(&trace)));
    }
    let baseline = results[0].clone();

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "policy", "capacity", "additional", "servers", "CPU viol", "Mem viol"
    );
    for r in &results {
        println!(
            "{:<12} {:>10.0} {:>12} {:>12} {:>10} {:>10}",
            r.label,
            r.probe_capacity,
            pct(r.additional_capacity_vs(&baseline)),
            r.peak_servers_in_use,
            pct(r.cpu_violation_rate),
            pct(r.mem_violation_rate),
        );
    }
    println!("\npaper: Single +22% over None; Coach +16% over Single; AggrCoach +9%");
    println!("more; violations: Single 2% CPU, Coach +1% CPU / <1% memory, AggrCoach");
    println!("+2% memory.");
}

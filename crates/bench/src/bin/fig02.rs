//! Figure 2: resource-hours and VM count vs. VM duration.

use coach_bench::{eval_trace, figure_header, pct};
use coach_trace::analytics::duration_profile;

fn main() {
    figure_header(
        "Figure 2",
        "% of resource-hours consumed by VMs lasting longer than a duration",
    );
    let profile = duration_profile(&eval_trace());
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "duration", "CPU-hours", "GB-hours", "VMs"
    );
    for row in &profile.rows {
        println!(
            "{:>10} {:>12} {:>12} {:>10}",
            row.at_least.to_string(),
            pct(row.cpu_hours_share),
            pct(row.mem_hours_share),
            pct(row.vm_share)
        );
    }
    println!("\npaper: VMs > 1 day hold ~96% of core-hours while being ~28% of VMs.");
}

//! Ablation: Formula 4's multiplexed oversubscribed pool vs. the naive
//! sum-of-peaks pool, measured on a packed trace.
//!
//! Coach sizes each server's oversubscribed memory pool as
//! `max over windows of Σ VA_demand` (multiplexing complementary patterns)
//! instead of `Σ over VMs of max VA_demand`. This binary quantifies the
//! memory that multiplexing saves across a replayed trace.

use coach_bench::{figure_header, pct, small_eval_trace};
use coach_sched::{ClusterScheduler, PlacementHeuristic, Policy, VmDemand};
use coach_sim::{Oracle, Predictor};
use coach_types::prelude::*;

fn main() {
    figure_header(
        "Ablation",
        "Formula 4: multiplexed vs. summed oversubscribed memory pools",
    );
    let trace = small_eval_trace();
    let preds = Oracle::new(TimeWindows::paper_default());

    // Pack the week-1 resident population under the Coach policy.
    let probe = Timestamp::from_days(7);
    let mut schedulers = Vec::new();
    for cluster in &trace.clusters {
        schedulers.push((
            cluster.id,
            ClusterScheduler::new(
                &cluster.servers,
                cluster.hardware.capacity,
                6,
                PlacementHeuristic::BestFit,
            ),
        ));
    }
    let mut placed = 0u64;
    for vm in trace.alive_at(probe) {
        let prediction = preds.predict(vm, Percentile::P95);
        let demand =
            VmDemand::from_prediction(vm.id, vm.demand(), Policy::Coach, prediction.as_ref());
        let sched = schedulers
            .iter_mut()
            .find(|(id, _)| *id == vm.cluster)
            .map(|(_, s)| s)
            .expect("cluster exists");
        if matches!(
            sched.place(demand),
            coach_sched::PlacementOutcome::Placed(_)
        ) {
            placed += 1;
        }
    }

    let mut guaranteed = 0.0;
    let mut multiplexed = 0.0;
    let mut summed = 0.0;
    let mut servers_with_pool = 0usize;
    for (_, sched) in &schedulers {
        for s in sched.servers() {
            if s.vm_count() == 0 {
                continue;
            }
            guaranteed += s.guaranteed_memory();
            let m = s.oversub_pool_memory();
            let n = s.oversub_pool_memory_summed();
            multiplexed += m;
            summed += n;
            if n > 0.0 {
                servers_with_pool += 1;
            }
        }
    }

    println!("resident VMs placed:            {placed}");
    println!("servers with an oversub pool:   {servers_with_pool}");
    println!("guaranteed memory (Formula 3):  {guaranteed:.0} GB");
    println!("oversub pool, summed baseline:  {summed:.0} GB");
    println!("oversub pool, multiplexed (F4): {multiplexed:.0} GB");
    if summed > 0.0 {
        println!(
            "memory saved by multiplexing:   {:.0} GB ({} of the summed pool)",
            summed - multiplexed,
            pct(1.0 - multiplexed / summed)
        );
    }
    println!("\nThe saving is exactly the complementarity of the VMs' temporal");
    println!("patterns: peaks in different windows share the same pool pages.");
}

//! Figure 21: mitigation policies during two memory contentions.

use coach_bench::figure_header;
use coach_node::mitigation::MitigationPolicy;
use coach_workloads::mitigation_experiment;

fn main() {
    figure_header("Figure 21", "mitigation policy comparison under contention");
    let policies = [
        MitigationPolicy::none(),
        MitigationPolicy::trim_only(false),
        MitigationPolicy::trim_only(true),
        MitigationPolicy::extend(false),
        MitigationPolicy::extend(true),
        MitigationPolicy::migrate(false),
        MitigationPolicy::migrate(true),
    ];

    println!("(a) available oversubscribed memory (GB) at key times");
    println!(
        "{:<18} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "policy", "t=100", "t=150", "t=200", "t=270", "t=300", "t=339"
    );
    let mut runs = Vec::new();
    for p in policies {
        let run = mitigation_experiment(p, 340);
        println!(
            "{:<18} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            run.policy,
            run.pool_free_gb[100],
            run.pool_free_gb[150],
            run.pool_free_gb[200],
            run.pool_free_gb[270],
            run.pool_free_gb[300],
            run.pool_free_gb[339],
        );
        runs.push(run);
    }

    for (label, series) in [("(b) Cache", 0usize), ("(c) KV-Store", 1)] {
        println!("\n{label} normalized slowdown at key times");
        println!(
            "{:<18} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "policy", "t=120", "t=150", "t=200", "t=270", "t=320"
        );
        for run in &runs {
            let s = if series == 0 {
                &run.cache_slowdown
            } else {
                &run.kv_slowdown
            };
            println!(
                "{:<18} {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x",
                run.policy, s[120], s[150], s[200], s[270], s[320],
            );
        }
    }
    println!("\npaper: contentions at 135 s and 255 s; trimming resolves the first,");
    println!("extend/migrate the second; None thrashes up to 4.3x; proactive policies");
    println!("cut the worst case to ~1.3x.");
}
